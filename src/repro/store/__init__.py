"""Durable on-disk BDD store with crash-safe checkpoints.

The persistence layer of ROADMAP item 3: a content-addressed object
store for BDDs (level-ordered streaming encode per Hansen/Rao/
Tiedemann's "Compressing Binary Decision Diagrams") with an sqlite
index mapping names and tags to roots, plus the reachability
checkpointer built on top of it.

Durability contract (see ``docs/persistence.md``):

* every object write is atomic — encode to a temporary file, fsync,
  ``os.replace`` into place, fsync the directory;
* every load verifies per-segment CRC32 frames, the whole-object
  sha256 content address, and the structural invariants of the decoded
  graph (backward references, strictly increasing levels, no redundant
  nodes);
* any interrupted or corrupted write is therefore either *invisible*
  (the rename never happened) or *detected* as a structured
  :class:`StoreCorruptError` — never a silently wrong BDD.
"""

from .checkpoint import ReachCheckpointer
from .errors import StoreCorruptError, StoreError
from .format import FORMAT_VERSION, decode_roots, encode_roots
from .store import BDDStore

__all__ = [
    "BDDStore",
    "ReachCheckpointer",
    "StoreError",
    "StoreCorruptError",
    "FORMAT_VERSION",
    "encode_roots",
    "decode_roots",
]
