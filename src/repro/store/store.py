"""The on-disk store: content-addressed objects + an sqlite index.

Layout of a store directory::

    <root>/
      index.sqlite          names/tags -> object hashes (schema below)
      objects/<h2>/<hash>   immutable encoded objects (format.py),
                            named by their sha256 content address

Objects are immutable and content-addressed, so saving the same
function twice — in one run or across runs — writes one file, and a
multi-root object (a reachability checkpoint's reached set plus
frontier) shares its interior nodes by construction.

Durability: object writes go to a temporary file in the target
directory, fsync, ``os.replace`` into place, fsync the directory — a
crash at any point leaves either no visible object or a complete one
(leftover ``.tmp-*`` files are invisible to every read path and
reclaimed by :meth:`BDDStore.sweep_tmp`).  Index updates are sqlite
transactions.  Reads verify the sha256 content address against the
file name and every CRC frame inside; any mismatch raises
:class:`~repro.store.errors.StoreCorruptError`.
"""

from __future__ import annotations

import json
import os
import sqlite3
from contextlib import closing
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Iterable, Iterator, TYPE_CHECKING

from ..bdd.function import Function
from .errors import StoreCorruptError, StoreError
from .format import content_address, decode_roots, encode_roots

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..bdd.manager import Manager

__all__ = ["BDDStore", "SCHEMA_VERSION"]

#: Bumped on incompatible index-schema changes; stores written by a
#: newer schema are refused instead of being misread.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS functions (
    name    TEXT PRIMARY KEY,
    hash    TEXT NOT NULL,
    root    TEXT NOT NULL,
    nodes   INTEGER NOT NULL,
    vars    INTEGER NOT NULL,
    created TEXT NOT NULL,
    tags    TEXT NOT NULL DEFAULT '',
    extra   TEXT NOT NULL DEFAULT '{}'
);
"""


def _fsync_dir(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, data: bytes) -> None:
    """Write ``data`` so that ``path`` is either absent or complete."""
    tmp = path.with_name(f".tmp-{os.getpid()}-{path.name}")
    fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


class BDDStore:
    """One persistent store directory (see the module docstring).

    Thread- and process-safe at the operation level: every method
    opens a short-lived sqlite connection (sqlite serializes writers),
    and object files are immutable once visible.
    """

    def __init__(self, path: str | Path, *, create: bool = True) -> None:
        self.root = Path(path)
        self.objects = self.root / "objects"
        self.index_path = self.root / "index.sqlite"
        if create:
            self.objects.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise StoreError(f"no store at {self.root}")
        try:
            with closing(self._connect()) as conn, conn:
                conn.executescript(_SCHEMA)
                row = conn.execute(
                    "SELECT value FROM meta WHERE key = "
                    "'schema_version'").fetchone()
                if row is None:
                    conn.execute(
                        "INSERT INTO meta (key, value) VALUES "
                        "('schema_version', ?)", (str(SCHEMA_VERSION),))
                    return
        except sqlite3.DatabaseError as exc:
            raise StoreCorruptError(
                f"{self.index_path}: cannot read index: {exc}")
        if not row[0].isdigit() or int(row[0]) != SCHEMA_VERSION:
            raise StoreError(
                f"{self.index_path}: index schema {row[0]!r} is not "
                f"supported (this build reads {SCHEMA_VERSION})")

    # ------------------------------------------------------------------
    # Index plumbing
    # ------------------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        try:
            conn = sqlite3.connect(self.index_path, timeout=30.0)
            conn.execute("PRAGMA busy_timeout = 30000")
            return conn
        except sqlite3.DatabaseError as exc:  # pragma: no cover
            raise StoreCorruptError(
                f"{self.index_path}: cannot open index: {exc}")

    def __enter__(self) -> "BDDStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    # ------------------------------------------------------------------
    # Object layer
    # ------------------------------------------------------------------

    def _object_path(self, digest: str) -> Path:
        return self.objects / digest[:2] / digest

    def put_object(self, manager: "Manager",
                   roots: dict[str, Function]) -> str:
        """Encode named roots into one object; returns its address.

        Content addressing makes this idempotent: an object that is
        already present (same functions, same order — this run or any
        previous one) is not rewritten.
        """
        data = encode_roots(manager, roots)
        digest = content_address(data)
        path = self._object_path(digest)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write(path, data)
        return digest

    def get_object(self, manager: "Manager", digest: str, *,
                   declare: bool = True) -> dict[str, Function]:
        """Load an object's named roots into ``manager``, verified."""
        path = self._object_path(digest)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise StoreError(f"missing object {digest}")
        except OSError as exc:
            raise StoreCorruptError(f"unreadable object {digest}: "
                                    f"{exc}")
        if content_address(data) != digest:
            raise StoreCorruptError(
                f"object {digest} fails its content address "
                f"(bit flip or torn write)")
        return decode_roots(manager, data, declare=declare)

    def sweep_tmp(self) -> int:
        """Remove leftover temporary files of interrupted writes."""
        removed = 0
        for tmp in self.objects.glob("*/.tmp-*"):
            try:
                tmp.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent sweep
                pass
        return removed

    # ------------------------------------------------------------------
    # Named functions
    # ------------------------------------------------------------------

    def save(self, name: str, function: Function, *,
             tags: Iterable[str] = (),
             extra: dict[str, Any] | None = None) -> str:
        """Persist one function under ``name``; returns the address."""
        return self.save_roots(name, function.manager,
                               {"f": function}, root="f", tags=tags,
                               extra=extra)

    def save_roots(self, name: str, manager: "Manager",
                   roots: dict[str, Function], *, root: str = "",
                   tags: Iterable[str] = (),
                   extra: dict[str, Any] | None = None) -> str:
        """Persist a multi-root object under one index name.

        ``root`` selects which root :meth:`load` returns (may be empty
        for checkpoint-style objects that are only read through
        :meth:`load_roots`).  Re-using an existing name atomically
        repoints it — the previous object stays on disk (other names
        may share it).
        """
        if not name:
            raise StoreError("function name must be non-empty")
        if root and root not in roots:
            raise StoreError(f"root {root!r} is not one of the object "
                             f"roots {sorted(roots)}")
        digest = self.put_object(manager, roots)
        nodes = sum(len(f) for f in roots.values())
        created = datetime.now(timezone.utc).isoformat(
            timespec="seconds")
        try:
            with closing(self._connect()) as conn, conn:
                conn.execute(
                    "INSERT INTO functions (name, hash, root, nodes, "
                    "vars, created, tags, extra) VALUES "
                    "(?, ?, ?, ?, ?, ?, ?, ?) ON CONFLICT(name) DO "
                    "UPDATE SET hash=excluded.hash, "
                    "root=excluded.root, nodes=excluded.nodes, "
                    "vars=excluded.vars, created=excluded.created, "
                    "tags=excluded.tags, extra=excluded.extra",
                    (name, digest, root, nodes, manager.num_vars,
                     created, ",".join(tags),
                     json.dumps(extra or {}, sort_keys=True)))
        except sqlite3.DatabaseError as exc:
            raise StoreCorruptError(f"{self.index_path}: {exc}")
        return digest

    def _row(self, name: str) -> tuple[Any, ...] | None:
        try:
            with closing(self._connect()) as conn:
                return conn.execute(
                    "SELECT name, hash, root, nodes, vars, created, "
                    "tags, extra FROM functions WHERE name = ?",
                    (name,)).fetchone()
        except sqlite3.DatabaseError as exc:
            raise StoreCorruptError(f"{self.index_path}: {exc}")

    def load(self, manager: "Manager", name: str, *,
             declare: bool = True) -> Function:
        """Load the named function into ``manager``."""
        row = self._row(name)
        if row is None:
            raise StoreError(f"unknown function {name!r}")
        if not row[2]:
            raise StoreError(f"{name!r} is a multi-root object; use "
                             f"load_roots")
        roots = self.get_object(manager, row[1], declare=declare)
        if row[2] not in roots:
            raise StoreCorruptError(
                f"object {row[1]} has no root {row[2]!r} "
                f"(index/object disagree)")
        return roots[row[2]]

    def load_roots(self, manager: "Manager", name: str, *,
                   declare: bool = True
                   ) -> tuple[dict[str, Function], dict[str, Any]]:
        """Load a multi-root object; returns ``(roots, extra)``."""
        row = self._row(name)
        if row is None:
            raise StoreError(f"unknown function {name!r}")
        try:
            extra = json.loads(row[7])
        except json.JSONDecodeError as exc:
            raise StoreCorruptError(f"{name!r}: malformed extra "
                                    f"metadata: {exc}")
        return self.get_object(manager, row[1], declare=declare), extra

    def __contains__(self, name: str) -> bool:
        return self._row(name) is not None

    def delete(self, name: str) -> bool:
        """Drop an index entry (its object may be shared; it stays)."""
        try:
            with closing(self._connect()) as conn, conn:
                cursor = conn.execute(
                    "DELETE FROM functions WHERE name = ?", (name,))
                return cursor.rowcount > 0
        except sqlite3.DatabaseError as exc:
            raise StoreCorruptError(f"{self.index_path}: {exc}")

    def entries(self, *, prefix: str = "") -> list[dict[str, Any]]:
        """Index rows (name-sorted), optionally under a name prefix."""
        try:
            with closing(self._connect()) as conn:
                rows = conn.execute(
                    "SELECT name, hash, root, nodes, vars, created, "
                    "tags, extra FROM functions ORDER BY name"
                ).fetchall()
        except sqlite3.DatabaseError as exc:
            raise StoreCorruptError(f"{self.index_path}: {exc}")
        out = []
        for row in rows:
            if not row[0].startswith(prefix):
                continue
            out.append({"name": row[0], "hash": row[1],
                        "root": row[2], "nodes": row[3],
                        "vars": row[4], "created": row[5],
                        "tags": [t for t in row[6].split(",") if t]})
        return out

    def __iter__(self) -> Iterator[str]:
        return iter(entry["name"] for entry in self.entries())

    def __len__(self) -> int:
        return len(self.entries())
