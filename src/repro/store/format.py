"""Binary object format: level-ordered, CRC-framed, content-addressed.

One *object* serializes one or more named roots over a shared node
set, streamed bottom-up one level per segment (per Hansen/Rao/
Tiedemann's "Compressing Binary Decision Diagrams"): every edge points
at an already-decoded node, so the decoder builds the graph in one
forward pass with no fixups and the representation is canonical — two
managers holding the same boolean functions under the same variable
order produce byte-identical objects regardless of backend or node
insertion history, which is what makes content addressing dedupe
identical subgraphs across functions and across runs.

Layout::

    MAGIC
    frame(header JSON)              {"format", "order", "segments",
                                     "roots", "nodes"}
    frame(level segment) ...        one per used level, deepest first;
                                    count * (hi_ref, lo_ref) as <II

where ``frame(p)`` is ``<II`` ``(len(p), crc32(p))`` followed by the
payload.  References: 0 is the FALSE terminal, 1 is TRUE, and ``k+2``
is the k-th node of the stream.  Within a level, nodes are sorted by
``(hi_ref, lo_ref)`` — children live in deeper (earlier) segments, so
the order is well-defined and canonical.

Every structural violation (bad magic, CRC mismatch, forward or
out-of-range reference, redundant ``hi == lo`` node, trailing bytes)
raises :class:`~repro.store.errors.StoreCorruptError`.
"""

from __future__ import annotations

import hashlib
import json
import struct
import zlib
from typing import Any, TYPE_CHECKING

from ..bdd.function import Function
from ..bdd.operations import ite_node
from ..bdd.traversal import collect_nodes
from .errors import StoreCorruptError, StoreError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..bdd.manager import Manager

__all__ = ["FORMAT_VERSION", "MAGIC", "content_address",
           "encode_roots", "decode_roots"]

#: Bumped on incompatible changes to the object layout.
FORMAT_VERSION = 1

MAGIC = b"repro-store:1\n"

_FRAME = struct.Struct("<II")
_PAIR = struct.Struct("<II")

#: Refuse absurd frame lengths before allocating (an object holding
#: 2^28 bytes of one segment is corruption, not a workload).
_MAX_FRAME = 1 << 28


def content_address(data: bytes) -> str:
    """The object's name: sha256 over its full encoded bytes."""
    return hashlib.sha256(data).hexdigest()


def _frame(payload: bytes) -> bytes:
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def _read_frame(data: bytes, offset: int, what: str) -> tuple[bytes, int]:
    end = offset + _FRAME.size
    if end > len(data):
        raise StoreCorruptError(f"truncated {what} frame header")
    length, crc = _FRAME.unpack_from(data, offset)
    if length > _MAX_FRAME:
        raise StoreCorruptError(
            f"{what} frame length {length} exceeds {_MAX_FRAME}")
    payload = data[end:end + length]
    if len(payload) != length:
        raise StoreCorruptError(
            f"short read: {what} frame wants {length} bytes, "
            f"{len(payload)} present")
    if zlib.crc32(payload) != crc:
        raise StoreCorruptError(f"CRC32 mismatch in {what} frame")
    return payload, end + length


# ----------------------------------------------------------------------
# Encode
# ----------------------------------------------------------------------

def encode_roots(manager: "Manager",
                 roots: dict[str, Function]) -> bytes:
    """Serialize named functions of one manager into object bytes."""
    if not roots:
        raise StoreError("an object needs at least one root")
    store = manager.store
    key_of, level_of = store.key_of, store.level_of
    hi_of, lo_of = store.hi_of, store.lo_of
    by_level: dict[int, list[Any]] = {}
    seen: set[Any] = set()
    for name, function in roots.items():
        if function.manager is not manager:
            raise StoreError(
                f"root {name!r} belongs to a different manager")
        for node in collect_nodes(store, function.node):
            key = key_of(node)
            if key not in seen:
                seen.add(key)
                by_level.setdefault(level_of(node), []).append(node)
    ref: dict[Any, int] = {key_of(store.zero): 0, key_of(store.one): 1}
    segments: list[tuple[str, bytes]] = []
    next_ref = 2
    for level in sorted(by_level, reverse=True):
        group = sorted(by_level[level],
                       key=lambda n: (ref[key_of(hi_of(n))],
                                      ref[key_of(lo_of(n))]))
        flat: list[int] = []
        for node in group:
            flat.append(ref[key_of(hi_of(node))])
            flat.append(ref[key_of(lo_of(node))])
            ref[key_of(node)] = next_ref
            next_ref += 1
        segments.append((manager.var_at_level(level),
                         struct.pack(f"<{len(flat)}I", *flat)))
    header = {
        "format": FORMAT_VERSION,
        "order": [name for _, name in
                  sorted((level, manager.var_at_level(level))
                         for level in by_level)],
        "segments": [{"var": var, "count": len(payload) // _PAIR.size}
                     for var, payload in segments],
        "roots": {name: ref[key_of(function.node)]
                  for name, function in sorted(roots.items())},
        "nodes": next_ref - 2,
    }
    out = [MAGIC,
           _frame(json.dumps(header, sort_keys=True,
                             separators=(",", ":")).encode("utf-8"))]
    out.extend(_frame(payload) for _, payload in segments)
    return b"".join(out)


# ----------------------------------------------------------------------
# Decode
# ----------------------------------------------------------------------

def _parse(data: bytes) -> tuple[dict[str, Any],
                                 list[tuple[str, list[tuple[int, int]]]]]:
    """Split object bytes into a validated header and level segments.

    Pure structural validation — no manager involved: frames verify by
    CRC, every reference must point strictly backward in the stream,
    and redundant ``hi == lo`` nodes are rejected (the encoder never
    emits them, so their presence proves corruption).
    """
    if not data.startswith(MAGIC):
        raise StoreCorruptError("bad magic: not a repro store object")
    payload, offset = _read_frame(data, len(MAGIC), "header")
    try:
        header = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreCorruptError(f"malformed header JSON: {exc}")
    if not isinstance(header, dict):
        raise StoreCorruptError("header is not a JSON object")
    if header.get("format") != FORMAT_VERSION:
        raise StoreError(
            f"unsupported object format {header.get('format')!r} "
            f"(this build reads {FORMAT_VERSION})")
    order = header.get("order")
    specs = header.get("segments")
    root_map = header.get("roots")
    nodes = header.get("nodes")
    if not (isinstance(order, list)
            and all(isinstance(v, str) for v in order)
            and isinstance(specs, list) and isinstance(root_map, dict)
            and isinstance(nodes, int)):
        raise StoreCorruptError("header fields have the wrong shape")
    segments: list[tuple[str, list[tuple[int, int]]]] = []
    next_ref = 2
    for spec in specs:
        if not (isinstance(spec, dict) and isinstance(spec.get("var"),
                                                      str)
                and isinstance(spec.get("count"), int)
                and spec["count"] >= 0):
            raise StoreCorruptError("malformed segment descriptor")
        if spec["var"] not in order:
            raise StoreCorruptError(
                f"segment variable {spec['var']!r} missing from the "
                f"declared order")
        payload, offset = _read_frame(data, offset,
                                      f"segment {spec['var']!r}")
        if len(payload) != spec["count"] * _PAIR.size:
            raise StoreCorruptError(
                f"segment {spec['var']!r} holds {len(payload)} bytes, "
                f"descriptor promises {spec['count']} nodes")
        pairs: list[tuple[int, int]] = []
        flat = struct.unpack(f"<{2 * spec['count']}I", payload)
        for i in range(spec["count"]):
            hi, lo = flat[2 * i], flat[2 * i + 1]
            if hi >= next_ref or lo >= next_ref:
                raise StoreCorruptError(
                    f"node {next_ref} references a node not yet "
                    f"decoded (hi={hi}, lo={lo})")
            if hi == lo:
                raise StoreCorruptError(
                    f"node {next_ref} is redundant (hi == lo == {hi})")
            pairs.append((hi, lo))
            next_ref += 1
        segments.append((spec["var"], pairs))
    if offset != len(data):
        raise StoreCorruptError(
            f"{len(data) - offset} trailing bytes after the last "
            f"segment")
    if next_ref - 2 != nodes:
        raise StoreCorruptError(
            f"header promises {nodes} nodes, segments hold "
            f"{next_ref - 2}")
    for name, root in root_map.items():
        if not (isinstance(name, str) and isinstance(root, int)
                and 0 <= root < next_ref):
            raise StoreCorruptError(f"root {name!r} -> {root!r} is "
                                    f"out of range")
    return header, segments


def _build(manager: "Manager",
           segments: list[tuple[str, list[tuple[int, int]]]],
           direct: bool) -> list[Any] | None:
    """One pass building the node stream inside ``manager``.

    With ``direct`` True nodes go straight into the unique table via
    ``store.mk`` — valid only while every edge's child sits strictly
    deeper than its parent in the *target* order; the pass returns
    None on the first incompatible edge (mirroring ``io.load``), and
    the caller falls back to the order-independent ITE rebuild.
    """
    store = manager.store
    is_terminal, level_of = store.is_terminal, store.level_of
    handles: list[Any] = [store.zero, store.one]
    for var, pairs in segments:
        level = manager.level_of_var(var)
        for hi_ref, lo_ref in pairs:
            hi, lo = handles[hi_ref], handles[lo_ref]
            if direct:
                if (not is_terminal(hi) and level_of(hi) <= level) or \
                        (not is_terminal(lo) and level_of(lo) <= level):
                    return None
                handles.append(store.mk(level, hi, lo))
            else:
                handles.append(ite_node(manager,
                                        manager.var_handle(var),
                                        hi, lo))
    return handles


def decode_roots(manager: "Manager", data: bytes, *,
                 declare: bool = True) -> dict[str, Function]:
    """Rebuild an object's named roots inside ``manager``.

    Unknown variables are declared in the object's recorded top-to-
    bottom order (bottom of the manager's order) unless ``declare`` is
    False.  When the resulting order is edge-compatible the nodes are
    inserted directly (the stream is already a canonical ROBDD in that
    order); otherwise the functions are rebuilt with ITE, which is
    correct under any order.
    """
    header, segments = _parse(data)
    for name in header["order"]:
        if name not in manager._var_to_level:
            if not declare:
                raise StoreError(f"unknown variable {name!r} "
                                 f"(declare=False)")
            manager.add_var(name)
    handles = _build(manager, segments, direct=True)
    if handles is None:
        handles = _build(manager, segments, direct=False)
    return {name: Function(manager, handles[root])
            for name, root in header["roots"].items()}
