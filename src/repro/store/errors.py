"""Structured errors of the persistent BDD store."""

from __future__ import annotations

__all__ = ["StoreError", "StoreCorruptError"]


class StoreError(RuntimeError):
    """Any store failure a caller can act on (missing name, spec
    mismatch, schema version from the future, ...)."""


class StoreCorruptError(StoreError):
    """On-disk bytes fail an integrity or structural check.

    Raised — never a silently wrong BDD — when an object's magic,
    CRC32 frame, sha256 content address, reference structure, or the
    sqlite index itself does not verify.  The store that raised it is
    still usable for other names; the corrupt object is unreadable
    until replaced.
    """
