"""Reachability checkpoints: periodic frontier persistence + resume.

A :class:`ReachCheckpointer` rides along a traversal loop
(:func:`~repro.reach.bfs.bfs_reachability` /
:func:`~repro.reach.highdensity.high_density_reachability`): every
``every`` iterations it persists the loop state — the reached set and
the frontier as one multi-root object (their shared interior nodes are
stored once), plus the scalar loop metadata — under one store name.
Because every save is an atomic object write followed by an atomic
index repoint, a ``kill -9`` at any instant leaves the previous
checkpoint intact; resuming replays the loop from the last saved
iteration, and ROBDD canonicity makes the resumed reached set
byte-identical to an uninterrupted run's.

The ``spec`` digest guards against resuming a checkpoint of a
*different* problem (another circuit, method, or threshold): a
mismatch raises :class:`~repro.store.errors.StoreError` instead of
silently blending two traversals.
"""

from __future__ import annotations

import hashlib
from typing import Any, TYPE_CHECKING

from ..bdd.function import Function
from .errors import StoreError
from .store import BDDStore

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..bdd.manager import Manager

__all__ = ["ReachCheckpointer", "reach_spec"]


def reach_spec(*parts: object) -> str:
    """Stable digest identifying one traversal problem.

    Callers hash whatever pins the traversal down — circuit bytes,
    method, threshold — so a checkpoint can refuse to resume into a
    different problem.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()[:16]


class ReachCheckpointer:
    """Persist/restore the state of one traversal loop.

    Parameters
    ----------
    store:
        The :class:`~repro.store.store.BDDStore` holding checkpoints.
    name:
        Index name of this traversal's checkpoint (one name, atomically
        repointed on every save).
    every:
        Save cadence in iterations (default 1: every iteration).
    spec:
        Optional problem digest (:func:`reach_spec`); verified on
        resume.
    resume:
        When False (default) :meth:`load` returns None and the
        traversal starts fresh, overwriting any previous checkpoint of
        the same name on its first save.
    """

    def __init__(self, store: BDDStore, name: str, *, every: int = 1,
                 spec: str | None = None, resume: bool = False) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.store = store
        self.name = name
        self.every = every
        self.spec = spec
        self.resume = resume
        #: checkpoints written by this checkpointer
        self.saves = 0

    def load(self, manager: "Manager"
             ) -> tuple[dict[str, Function], dict[str, Any]] | None:
        """Restore ``(roots, meta)`` from the last save, or None.

        None means "start fresh": resuming was not requested, or no
        checkpoint exists yet under this name.
        """
        if not self.resume or self.name not in self.store:
            return None
        roots, extra = self.store.load_roots(manager, self.name)
        if self.spec is not None and extra.get("spec") != self.spec:
            raise StoreError(
                f"checkpoint {self.name!r} was written for a "
                f"different problem (spec {extra.get('spec')!r}, "
                f"expected {self.spec!r}); refusing to resume")
        meta = extra.get("meta")
        if not isinstance(meta, dict):
            raise StoreError(f"checkpoint {self.name!r} carries no "
                             f"loop metadata")
        return roots, meta

    def step(self, roots: dict[str, Function],
             meta: dict[str, Any]) -> None:
        """Per-iteration hook: save when the cadence comes due."""
        if int(meta.get("iterations", 0)) % self.every == 0:
            self._save(roots, meta)

    def finish(self, roots: dict[str, Function],
               meta: dict[str, Any]) -> None:
        """Fixpoint hook: always persist the final, complete state."""
        self._save(roots, dict(meta, complete=True))

    def _save(self, roots: dict[str, Function],
              meta: dict[str, Any]) -> None:
        manager = next(iter(roots.values())).manager
        self.store.save_roots(
            self.name, manager, roots, tags=("checkpoint",),
            extra={"spec": self.spec, "meta": meta})
        self.saves += 1
