"""Sequential equivalence checking via product-machine reachability.

Two circuits with the same primary inputs are equivalent when, from
their reset states, no reachable state of the product machine
distinguishes their outputs.  This is the other classic client of the
reachability engines (besides invariant checking), and large product
machines are exactly where the paper's approximation-based traversal
pays off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..fsm.circuit import Circuit, CircuitBuilder, Net
from ..fsm.encode import encode
from ..reach.bfs import bfs_reachability
from ..reach.transition import TransitionRelation


@dataclass
class EquivalenceResult:
    """Outcome of a sequential equivalence check."""

    equivalent: bool
    iterations: int
    #: name of a distinguishing output (when not equivalent)
    failing_output: str | None = None
    #: a product state witnessing the difference
    witness: dict[str, bool] = field(default_factory=dict)


def product_machine(left: Circuit, right: Circuit,
                    prefix_left: str = "L_",
                    prefix_right: str = "R_") -> Circuit:
    """The synchronous product of two circuits over shared inputs.

    Latch and output names are prefixed to avoid collisions; outputs of
    the product are ``eq_<name>`` signals, true when the two circuits'
    outputs agree.
    """
    if sorted(left.inputs) != sorted(right.inputs):
        raise ValueError("circuits must share the same primary inputs")
    if set(left.outputs) != set(right.outputs):
        raise ValueError("circuits must declare the same outputs")
    builder = CircuitBuilder(f"product_{left.name}_{right.name}")
    inputs = {name: builder.input(name) for name in left.inputs}

    def import_circuit(circuit: Circuit, prefix: str) -> dict[str, Net]:
        mapping: dict[Net, Net] = {}
        latch_nets = {}
        for latch in circuit.latches:
            net = builder.latch(prefix + latch.name, init=latch.init)
            mapping[latch.output] = net
            latch_nets[latch.name] = net

        def done(net: Net) -> Net | None:
            """The imported copy of ``net`` if derivable, else None."""
            if net.op == "const0":
                return builder.const0
            if net.op == "const1":
                return builder.const1
            if net.op == "var":
                if net.name in inputs:
                    return inputs[net.name]
                return mapping[net]
            return mapping.get(net)

        def convert(root: Net) -> Net:
            # Two-phase explicit stack over the acyclic net DAG:
            # expand until every argument is mapped, then rebuild.
            stack: list[tuple[Net, bool]] = [(root, False)]
            while stack:
                net, expanded = stack.pop()
                if not expanded:
                    if done(net) is not None:
                        continue
                    stack.append((net, True))
                    stack.extend((arg, False) for arg in net.args)
                else:
                    args = tuple(done(a) for a in net.args)
                    mapping[net] = builder.gate(net.op, *args)
            converted = done(root)
            assert converted is not None
            return converted

        for latch in circuit.latches:
            builder.set_next(latch_nets[latch.name],
                             convert(latch.next_state))
        return {name: convert(net)
                for name, net in circuit.outputs.items()}

    left_outputs = import_circuit(left, prefix_left)
    right_outputs = import_circuit(right, prefix_right)
    for name in left.outputs:
        builder.output(f"eq_{name}",
                       ~(left_outputs[name] ^ right_outputs[name]))
    return builder.build()


def check_equivalence(left: Circuit, right: Circuit,
                      max_iterations: int | None = None
                      ) -> EquivalenceResult:
    """Exact sequential equivalence check of two circuits."""
    product = product_machine(left, right)
    encoded = encode(product)
    tr = TransitionRelation(encoded)
    result = bfs_reachability(tr, encoded.initial_states(),
                              max_iterations=max_iterations)
    manager = encoded.manager
    quantify_inputs = set(encoded.input_vars)
    for name, eq_function in encoded.output_functions.items():
        # States (for some input) where the outputs differ:
        differ = (~eq_function).exists(quantify_inputs &
                                       eq_function.support())
        bad = result.reached & differ
        if not bad.is_false:
            partial = bad.pick_one() or {}
            witness = {v: partial.get(v, False)
                       for v in encoded.state_vars}
            return EquivalenceResult(equivalent=False,
                                     iterations=result.iterations,
                                     failing_output=name,
                                     witness=witness)
    return EquivalenceResult(equivalent=True,
                             iterations=result.iterations)
