"""Formal verification on top of the reachability engines."""

from .equivalence import (EquivalenceResult, check_equivalence,
                          product_machine)
from .invariants import (CheckResult, check_invariant,
                         hunt_invariant_violation,
                         prove_by_over_approximation)

__all__ = [
    "CheckResult",
    "check_invariant",
    "hunt_invariant_violation",
    "prove_by_over_approximation",
    "EquivalenceResult",
    "check_equivalence",
    "product_machine",
]
