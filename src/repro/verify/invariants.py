"""Invariant checking on top of the reachability engines.

The application the paper's introduction motivates: symbolic state
exploration for formal verification.  ``check_invariant`` proves or
refutes ``AG property`` by forward reachability, returning a concrete
counterexample trace (reset state to violating state) on failure —
extracted by the classic onion-ring walk over the saved BFS frontiers.

``hunt_invariant_violation`` is the high-density variant: dense
subsets find deep bugs without exact frontiers (no trace ring
structure, so it returns only a violating state), and an
over-approximation of the reached set can prove the invariant
*without* exact reachability when the over-approximation stays inside
the property.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bdd.function import Function
from ..core.approx import remap_over_approx
from ..fsm.encode import EncodedCircuit
from ..reach.highdensity import Subsetter, high_density_reachability
from ..reach.transition import TransitionRelation


@dataclass
class CheckResult:
    """Outcome of an invariant check."""

    holds: bool
    iterations: int
    #: reset-to-violation states (empty when the invariant holds)
    trace: list[dict[str, bool]] = field(default_factory=list)
    #: reached states explored (exact for check_invariant)
    reached: Function | None = None


def check_invariant(encoded: EncodedCircuit, tr: TransitionRelation,
                    invariant: Function,
                    max_iterations: int | None = None) -> CheckResult:
    """Exact BFS model check of ``AG invariant`` with trace extraction."""
    init = encoded.initial_states()
    bad = ~invariant
    rings = [init]
    reached = init
    iteration = 0
    violation = init & bad
    while violation.is_false:
        if max_iterations is not None and iteration >= max_iterations:
            return CheckResult(holds=True, iterations=iteration,
                               reached=reached)
        frontier = tr.image(rings[-1]) - reached
        if frontier.is_false:
            return CheckResult(holds=True, iterations=iteration,
                               reached=reached)
        reached = reached | frontier
        rings.append(frontier)
        iteration += 1
        violation = frontier & bad
    trace = _extract_trace(encoded, tr, rings, violation)
    return CheckResult(holds=False, iterations=iteration, trace=trace,
                       reached=reached)


def _extract_trace(encoded: EncodedCircuit, tr: TransitionRelation,
                   rings: list[Function],
                   violation: Function) -> list[dict[str, bool]]:
    """Onion-ring counterexample: walk backwards through the frontiers."""
    manager = encoded.manager
    state_vars = encoded.state_vars
    current = _pick_state(manager, violation, state_vars)
    trace = [current]
    for ring in reversed(rings[:-1]):
        cube = manager.cube(trace[0])
        predecessors = tr.preimage(cube) & ring
        assert not predecessors.is_false, "broken onion ring"
        trace.insert(0, _pick_state(manager, predecessors, state_vars))
    return trace


def _pick_state(manager, states: Function,
                state_vars: list[str]) -> dict[str, bool]:
    partial = states.pick_one() or {}
    return {name: partial.get(name, False) for name in state_vars}


def hunt_invariant_violation(encoded: EncodedCircuit,
                             tr: TransitionRelation,
                             invariant: Function, subset: Subsetter,
                             threshold: int = 0,
                             max_iterations: int | None = None
                             ) -> CheckResult:
    """High-density bug hunt for ``AG invariant``.

    Explores with dense frontier subsets; on violation returns one
    violating reached state (no ring structure, hence no full trace).
    Completes with an exact verdict if the traversal converges.
    """
    init = encoded.initial_states()
    bad = ~invariant
    state_vars = encoded.state_vars
    manager = encoded.manager

    result = high_density_reachability(
        tr, init, subset, threshold=threshold,
        max_iterations=max_iterations)
    violation = result.reached & bad
    if violation.is_false:
        return CheckResult(holds=result.complete,
                           iterations=result.iterations,
                           reached=result.reached)
    return CheckResult(holds=False, iterations=result.iterations,
                       trace=[_pick_state(manager, violation,
                                          state_vars)],
                       reached=result.reached)


def prove_by_over_approximation(encoded: EncodedCircuit,
                                tr: TransitionRelation,
                                invariant: Function,
                                threshold: int = 0,
                                max_iterations: int = 50
                                ) -> CheckResult | None:
    """Try to prove ``AG invariant`` with an over-approximate fixpoint.

    Each image is widened with ``remap_over_approx``; if the widened
    fixpoint stays inside the invariant, the invariant holds for the
    real system too.  Returns None when inconclusive (the
    over-approximation left the property — which does *not* refute it).
    """
    init = encoded.initial_states()
    reached = remap_over_approx(init, threshold=threshold)
    for iteration in range(max_iterations):
        if not (reached & ~invariant).is_false:
            return None  # inconclusive
        new = tr.image(reached) - reached
        if new.is_false:
            return CheckResult(holds=True, iterations=iteration,
                               reached=reached)
        reached = remap_over_approx(reached | new,
                                    threshold=threshold)
    return None
