"""Reproduction of Ravi, McMillan, Shiple, Somenzi,
"Approximation and Decomposition of Binary Decision Diagrams", DAC 1998.

Subpackages
-----------
``repro.bdd``
    Pure-Python ROBDD manager (the CUDD-role substrate).
``repro.core``
    The paper's contributions: approximation (Section 2) and
    decomposition (Section 3) algorithms.
``repro.fsm``
    Sequential-circuit substrate: netlists, BLIF, benchmark generators.
``repro.reach``
    Symbolic reachability: BFS and high-density traversal (Section 4).
``repro.harness``
    Experiment harness regenerating the paper's tables.
``repro.serve``
    Long-lived BDD service daemon (``repro serve``): per-session
    managers behind a newline-delimited JSON protocol with governor
    budgets and fair scheduling.
"""

# The BDD kernels are iterative (explicit stacks; see
# docs/algorithms.md, "Iterative kernels"), so importing this package
# must never touch sys.setrecursionlimit — deep BDDs work at CPython's
# default limit, and tests/test_recursion_limit.py guards against the
# old hack returning.

__version__ = "1.0.0"
