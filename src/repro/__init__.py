"""Reproduction of Ravi, McMillan, Shiple, Somenzi,
"Approximation and Decomposition of Binary Decision Diagrams", DAC 1998.

Subpackages
-----------
``repro.bdd``
    Pure-Python ROBDD manager (the CUDD-role substrate).
``repro.core``
    The paper's contributions: approximation (Section 2) and
    decomposition (Section 3) algorithms.
``repro.fsm``
    Sequential-circuit substrate: netlists, BLIF, benchmark generators.
``repro.reach``
    Symbolic reachability: BFS and high-density traversal (Section 4).
``repro.harness``
    Experiment harness regenerating the paper's tables.
"""

import sys

# BDD recursions descend one level per call; deep orders plus the
# recursive experiment drivers need more head-room than CPython's
# default 1000 frames.
if sys.getrecursionlimit() < 20000:
    sys.setrecursionlimit(20000)

__version__ = "1.0.0"
