"""The degradation ladder: turn kernel aborts into smaller images.

This is the policy layer on top of :mod:`repro.bdd.governor` that the
paper prescribes (Section 4): when an exact image computation blows its
resource budget, don't fail the traversal — substitute a dense
under-approximation of the frontier and keep going.  Dropped states are
recovered later by an exact image of the reached set, so the traversal
still terminates with the exact reachable set.

:func:`governed_image` wraps :meth:`TransitionRelation.image` with an
escalation ladder, climbed one rung per abort:

1. **gc** — collect garbage (an abort leaves rootless partial nodes
   behind; reclaiming them may alone bring the manager back under its
   node budget) and retry the exact image.
2. **subset** — replace the frontier with a dense under-approximation
   (``remap_under_approx`` by default, or the traversal's configured
   subsetter) and image that instead; on repeated aborts the size
   target halves each rung.
3. **reorder** — with ``on_blowup="retry-reorder"``, run sifting to
   shrink the operands globally and retry the exact image.
4. **exact** — compute the exact image with the governor suspended.
   This bottom rung cannot abort, so the ladder always terminates and
   ``on_blowup="subset"`` callers never see a resource exception.

Every rung taken is recorded on the manager
(:meth:`Manager.record_degradation`) and surfaces in
:attr:`ManagerStats.degradations` and benchmark trajectory rows.

The recovery sweeps of the traversals pass ``allow_subset=False``:
an image used to *detect the fixpoint* must not be under-approximated,
or a traversal could falsely conclude it converged.
"""

from __future__ import annotations

from contextlib import nullcontext
from typing import Callable, ContextManager

from ..bdd.function import Function
from ..bdd.governor import ResourceError
from .transition import PartialImagePolicy, TransitionRelation

#: Valid ``on_blowup`` policies of the traversals and the CLI.
ON_BLOWUP_MODES = ("raise", "subset", "retry-reorder")

#: An under-approximation procedure ``fn(f, *, threshold=0)`` (the
#: uniform UNDER_APPROXIMATORS signature).
Subsetter = Callable[..., Function]

#: Subset-ladder rungs tried before reorder/exact (the size target
#: halves on each, so more rungs rarely help).
MAX_SUBSET_RUNGS = 3


def validate_on_blowup(mode: str) -> str:
    """Check an ``on_blowup`` value, returning it for chaining."""
    if mode not in ON_BLOWUP_MODES:
        raise ValueError(
            f"on_blowup must be one of {ON_BLOWUP_MODES}, got {mode!r}")
    return mode


def shield(states: Function, on_blowup: str) -> ContextManager[object]:
    """Context for traversal bookkeeping ops (union, difference, ...).

    Under a degradation policy, only the *image* is governed — the
    cheap set algebra around it runs with the governor suspended, so a
    tiny budget cannot wedge the traversal in operations the ladder has
    no recovery for.  With ``on_blowup="raise"`` this is a no-op and
    every kernel stays budgeted.
    """
    if on_blowup == "raise":
        return nullcontext()
    return states.manager.governor.suspended()


def _default_subsetter() -> Subsetter:
    from ..core.approx.remap import remap_under_approx

    return remap_under_approx


def governed_image(tr: TransitionRelation, states: Function, *,
                   on_blowup: str = "subset",
                   subset: Subsetter | None = None,
                   threshold: int = 0,
                   partial: PartialImagePolicy | None = None,
                   allow_subset: bool = True) -> tuple[Function, bool]:
    """One image computation under the escalation ladder.

    Returns ``(image, exact)``: ``exact`` is False when a subset rung
    was taken, i.e. the result is the image of a *dense subset* of
    ``states`` rather than of all of them — the caller must schedule a
    recovery sweep before trusting a fixpoint.

    With ``on_blowup="raise"`` the ladder is bypassed entirely and any
    governor abort propagates to the caller.
    """
    validate_on_blowup(on_blowup)
    if on_blowup == "raise":
        return tr.image(states, partial=partial), True
    manager = states.manager
    governor = manager.governor
    try:
        return tr.image(states, partial=partial), True
    except ResourceError:
        pass

    # Rung 1: reclaim the aborted attempt's rootless nodes and retry.
    manager.collect_garbage()
    manager.record_degradation("gc")
    try:
        return tr.image(states, partial=partial), True
    except ResourceError:
        pass

    if allow_subset:
        if subset is None:
            subset = _default_subsetter()
        target = threshold if threshold > 0 else max(1, len(states) // 2)
        frontier = states
        for _ in range(MAX_SUBSET_RUNGS):
            with governor.suspended():
                shrunk = subset(frontier, threshold=target)
            if shrunk.is_false:
                # Degenerate subset (everything dropped): subsetting
                # cannot make progress here, fall through the ladder.
                break
            manager.record_degradation("subset")
            try:
                return tr.image(shrunk, partial=partial), False
            except ResourceError:
                frontier = shrunk
                target = max(1, target // 2)

    if on_blowup == "retry-reorder":
        with governor.suspended():
            manager.reorder()
        manager.record_degradation("reorder")
        try:
            return tr.image(states, partial=partial), True
        except ResourceError:
            pass

    # Bottom rung: exact image with the governor suspended.  Cannot
    # abort, so the ladder guarantees progress under any budget.
    manager.record_degradation("exact")
    with governor.suspended():
        return tr.image(states, partial=partial), True
