"""Backward reachability: states that can reach a target set.

The dual traversal to :mod:`repro.reach.bfs`, built on
:meth:`TransitionRelation.preimage`.  Used for invariant proofs from
the bad states backwards ("the reset state cannot reach bad") and for
computing controllable predecessors; combined with forward
reachability it yields the *reachable-and-relevant* core
``forward & backward`` that several of the paper's successors use to
confine approximation.
"""

from __future__ import annotations

import time

from ..bdd.function import Function
from .bfs import ReachResult, TraversalLimit
from .transition import TransitionRelation


def backward_reachability(tr: TransitionRelation, target: Function,
                          max_iterations: int | None = None,
                          node_limit: int | None = None,
                          deadline: float | None = None) -> ReachResult:
    """All states with a path into ``target`` (including ``target``)."""
    start = time.perf_counter()
    reached = target
    frontier = target
    iterations = 0
    size_trace = [len(reached)]
    frontier_trace = [len(frontier)]
    while not frontier.is_false:
        if max_iterations is not None and iterations >= max_iterations:
            return ReachResult(reached=reached, iterations=iterations,
                               size_trace=size_trace,
                               frontier_trace=frontier_trace,
                               seconds=time.perf_counter() - start,
                               complete=False)
        preimage = tr.preimage(frontier)
        frontier = preimage - reached
        reached = reached | frontier
        iterations += 1
        size_trace.append(len(reached))
        frontier_trace.append(len(frontier))
        if node_limit is not None and \
                max(len(reached), len(frontier)) > node_limit:
            raise TraversalLimit(
                f"node limit {node_limit} exceeded at iteration "
                f"{iterations}")
        if deadline is not None and \
                time.perf_counter() - start > deadline:
            raise TraversalLimit(
                f"deadline {deadline}s exceeded at iteration "
                f"{iterations}")
    return ReachResult(reached=reached, iterations=iterations,
                       size_trace=size_trace,
                       frontier_trace=frontier_trace,
                       seconds=time.perf_counter() - start)


def can_reach(tr: TransitionRelation, source: Function,
              target: Function,
              max_iterations: int | None = None) -> bool:
    """Whether some state in ``source`` has a path into ``target``."""
    result = backward_reachability(tr, target,
                                   max_iterations=max_iterations)
    return not (result.reached & source).is_false
