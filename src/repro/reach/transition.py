"""Partitioned transition relations and image computation.

The transition relation is kept in conjunctively partitioned form
(Burch–Clarke–Long / Touati et al., as the paper's Section 1 surveys):
one partition ``T_j(x, w, y_j) = (y_j XNOR delta_j(x, w))`` per latch,
greedily clustered up to a node limit, with an early-quantification
schedule so that a variable is abstracted as soon as no later cluster
mentions it.

Image computation supports the *partial-image subsetting* hook of
Section 4: when an intermediate product exceeds a trigger size, an
approximation procedure is applied to it (the paper's "PImg" columns).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..bdd.function import Function
from ..fsm.encode import EncodedCircuit


@dataclass
class ImageStats:
    """Bookkeeping accumulated across image computations."""

    images: int = 0
    peak_product_nodes: int = 0
    subset_calls: int = 0


@dataclass
class PartialImagePolicy:
    """Subset intermediate image products (the paper's PImg setting).

    ``trigger``: apply the subsetting procedure only to products larger
    than this many nodes.  ``threshold``: size target handed to the
    procedure.  ``subset``: the approximation procedure itself,
    ``fn(f, *, threshold=0) -> Function`` with ``fn(f) <= f`` (the
    uniform ``UNDER_APPROXIMATORS`` signature).
    """

    subset: Callable[..., Function]
    trigger: int
    threshold: int


class TransitionRelation:
    """Clustered conjunctive transition relation of an encoded circuit."""

    def __init__(self, encoded: EncodedCircuit,
                 cluster_limit: int = 2500) -> None:
        self.encoded = encoded
        self.manager = encoded.manager
        self.cluster_limit = cluster_limit
        self.stats = ImageStats()
        manager = self.manager
        # One partition per latch: y_j <-> delta_j.
        partitions = [manager.var(y).equiv(delta)
                      for y, delta in zip(encoded.next_vars,
                                          encoded.next_functions)]
        self.clusters = _cluster(partitions, cluster_limit)
        # Rename pairs are fixed for the relation's lifetime; building
        # them per image/preimage call showed up in traversal profiles.
        self._rename_to_present = dict(zip(encoded.next_vars,
                                           encoded.state_vars))
        self._rename_to_next = dict(zip(encoded.state_vars,
                                        encoded.next_vars))
        self._schedule()

    def _schedule(self) -> None:
        """Order clusters and precompute quantification points.

        Clusters are ordered by the highest level of any quantifiable
        variable in their support (a light-weight IWLS-95-style
        heuristic); each cluster is tagged with the set of variables
        that can be quantified right after it is conjoined, i.e. those
        appearing in no later cluster.
        """
        forward_vars = set(self.encoded.state_vars) \
            | set(self.encoded.input_vars)
        backward_vars = set(self.encoded.next_vars) \
            | set(self.encoded.input_vars)
        manager = self.manager
        supports = [cluster.support() for cluster in self.clusters]

        def order_key(index: int) -> tuple:
            support = supports[index] & forward_vars
            if not support:
                return (-1, index)
            return (max(manager.level_of_var(v) for v in support), index)

        order = sorted(range(len(self.clusters)), key=order_key)
        self.clusters = [self.clusters[i] for i in order]
        supports = [supports[i] for i in order]
        self.quantify_forward = _quantification_schedule(
            supports, forward_vars)
        self.quantify_backward = _quantification_schedule(
            supports, backward_vars)
        mentioned: set[str] = set().union(*supports) if supports else set()
        #: forward-quantifiable variables no cluster mentions
        self.free_vars = forward_vars - mentioned
        #: backward-quantifiable variables no cluster mentions
        self.free_vars_backward = backward_vars - mentioned

    # ------------------------------------------------------------------

    def image(self, states: Function,
              partial: PartialImagePolicy | None = None) -> Function:
        """Forward image: states reachable in one step, over x variables.

        With ``partial`` set, intermediate products are subsetted, so the
        result is a *subset* of the exact image.
        """
        product = states
        for cluster, quantify in zip(self.clusters, self.quantify_forward):
            product = product.and_exists(cluster, quantify)
            size = len(product)
            if size > self.stats.peak_product_nodes:
                self.stats.peak_product_nodes = size
            if partial is not None and size > partial.trigger:
                product = partial.subset(product,
                                         threshold=partial.threshold)
                self.stats.subset_calls += 1
        # Quantify variables no cluster mentioned (e.g. unused inputs).
        remaining = self.free_vars & product.support()
        if remaining:
            product = product.exists(remaining)
        self.stats.images += 1
        # Rename next-state variables back to present-state.
        support = product.support()
        rename = {old: new for old, new in self._rename_to_present.items()
                  if old in support}
        return product.rename(rename) if rename else product

    def preimage(self, states: Function) -> Function:
        """Backward image: states that can reach ``states`` in one step."""
        support = states.support()
        rename = {x: y for x, y in self._rename_to_next.items()
                  if x in support}
        product = states.rename(rename) if rename else states
        for cluster, quantify in zip(self.clusters,
                                     self.quantify_backward):
            product = product.and_exists(cluster, quantify)
        remaining = self.free_vars_backward & product.support()
        if remaining:
            product = product.exists(remaining)
        self.stats.images += 1
        return product

    def constrain(self, assignment: dict[str, bool]
                  ) -> "TransitionRelation":
        """A copy of the relation cofactored by a variable assignment.

        Shannon expansion on a quantified variable distributes the
        image over the assignment's cube space::

            image(f)  =  OR over cubes c  of  T|c . image of f|c

        so a disjunctive shard worker (:mod:`repro.reach.shard`) holds
        ``constrain(cube)`` and computes images of cofactored frontier
        pieces: the cube constraint is paid once here, at construction,
        instead of being re-propagated through the cluster conjunction
        on every step.  Constrained variables vanish from the cluster
        supports, so the quantification schedule drops them; if a
        states argument still mentions one, the free-variable sweep of
        :meth:`image` quantifies it away.
        """
        clone = object.__new__(TransitionRelation)
        clone.encoded = self.encoded
        clone.manager = self.manager
        clone.cluster_limit = self.cluster_limit
        clone.stats = ImageStats()
        clone.clusters = [cluster.cofactor(assignment)
                          for cluster in self.clusters]
        clone._rename_to_present = self._rename_to_present
        clone._rename_to_next = self._rename_to_next
        clone._schedule()
        return clone

    def monolithic(self) -> Function:
        """The full relation (for tests on small circuits)."""
        result = self.manager.true
        for cluster in self.clusters:
            result = result & cluster
        return result


def _quantification_schedule(supports: list[set[str]],
                             quantifiable: set[str]) -> list[set[str]]:
    """Early-quantification points: after cluster i, quantify the
    variables of interest that no later cluster mentions."""
    seen_later: set[str] = set()
    schedule: list[set[str]] = []
    for support in reversed(supports):
        schedule.append((support & quantifiable) - seen_later)
        seen_later |= support
    schedule.reverse()
    return schedule


def _cluster(partitions: list[Function], limit: int) -> list[Function]:
    """Greedy clustering: conjoin consecutive partitions up to a limit."""
    clusters: list[Function] = []
    current: Function | None = None
    for partition in partitions:
        if current is None:
            current = partition
            continue
        combined = current & partition
        if len(combined) <= limit:
            current = combined
        else:
            clusters.append(current)
            current = partition
    if current is not None:
        clusters.append(current)
    return clusters
