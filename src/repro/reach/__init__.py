"""Symbolic reachability analysis (the paper's application domain).

* :class:`TransitionRelation` — clustered conjunctive relations with
  early quantification and partial-image subsetting hooks.
* :func:`bfs_reachability` — the exact breadth-first baseline.
* :func:`high_density_reachability` — the traversal the paper
  accelerates with RUA (Table 1).
* :func:`governed_image` — the degrade-to-approximation escalation
  ladder both traversals use under resource budgets
  (``on_blowup="subset"|"retry-reorder"``).
* :class:`FrontierSharder` — disjunctive frontier partitioning across
  the persistent worker pool (``--shards``), byte-identical to the
  sequential traversal.
"""

from .backward import backward_reachability, can_reach
from .bfs import ReachResult, TraversalLimit, bfs_reachability, count_states
from .degrade import ON_BLOWUP_MODES, governed_image, validate_on_blowup
from .highdensity import (HighDensityResult, Subsetter,
                          high_density_reachability)
from .shard import (SELECTORS, FrontierSharder, ShardConfig, ShardStats,
                    choose_split_vars)
from .transition import (ImageStats, PartialImagePolicy,
                         TransitionRelation)

__all__ = [
    "FrontierSharder",
    "ShardConfig",
    "ShardStats",
    "SELECTORS",
    "choose_split_vars",
    "TransitionRelation",
    "PartialImagePolicy",
    "ImageStats",
    "bfs_reachability",
    "backward_reachability",
    "can_reach",
    "high_density_reachability",
    "count_states",
    "ReachResult",
    "HighDensityResult",
    "TraversalLimit",
    "Subsetter",
    "ON_BLOWUP_MODES",
    "governed_image",
    "validate_on_blowup",
]
