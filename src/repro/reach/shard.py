"""Sharded reachability: disjunctive frontier partitioning.

ROADMAP item 4.  The PR 3 engine parallelizes across *independent*
experiment rows; this module goes wide on a single expensive traversal
instead.  Each BFS image is split disjunctively::

    image(f)  =  OR over cubes c  of  image_{T|c}(f|c)

where the cube variables are chosen by the paper's decomposition-point
machinery (:mod:`repro.core.decomp.points`) or by the relation-shrinkage
selector below, and each cube's image runs in a persistent worker
process (:class:`~repro.harness.engine.WorkerPool`) that holds the
transition relation *pre-cofactored* by its cube
(:meth:`TransitionRelation.constrain`).  Because existential
quantification distributes over disjunction, the OR-merge of the piece
images is exactly the monolithic image — a sharded traversal is
byte-identical to the sequential one (same reached set, same per-step
frontier trace), which is how the suite gates it.

Where the speed comes from (single-box reality check)
-----------------------------------------------------
Shannon-splitting a BDD image does **not** reduce total kernel work on
most circuits — on this codebase's suite the pieces together cost about
as much as the whole (the cluster side, not the frontier size,
dominates).  The measured wins of ``BENCH_table1_sharded.json`` come
from three sharding-specific effects:

* the cube constraint is folded into each worker's clusters **once**
  (``constrain``), not re-derived per step;
* kernel bursts run in worker processes whose heaps are small and
  frozen (``gc.freeze`` after the relation is built), so CPython's
  cyclic collector stops rescanning millions of permanently-live node
  and cache objects on the hot path — on long traversals that tax is
  20-30% of the wall clock in the monolithic process;
* frontiers travel as dumps over the direct unique-table insert path of
  :func:`repro.bdd.io.load` (both sides encode the same circuit, so
  orders always agree).

Shards beyond 2 pay a full frontier transfer per worker per step and
rarely reduce kernel work further; ``--shards 2`` is the sweet spot on
one box.  The split/merge machinery is shard-count agnostic — wider
pools make sense once workers land on separate machines.

Fault containment
-----------------
Workers reuse the engine's isolation wholesale: per-task timeouts,
crash capture, and governor budgets (armed *inside* the worker via
:meth:`Manager.with_budget`, surfacing as ``budget`` outcomes).  Any
failed piece is recomputed sequentially by the coordinator through the
:func:`~repro.reach.degrade.governed_image` ladder, so a sharded
traversal under faults still returns the exact reached set.
"""

from __future__ import annotations

import time
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..bdd import io as bdd_io
from ..bdd.function import Function
from ..core.decomp.points import band_points, disjoint_points
from .degrade import Subsetter, governed_image
from .transition import TransitionRelation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..harness.engine import WorkerPool

# repro.harness imports repro.reach (population builds relations); the
# engine itself has no such dependency, so it is imported lazily where
# the pool is built rather than at module scope.

__all__ = [
    "SELECTORS",
    "ShardConfig",
    "ShardStats",
    "FrontierSharder",
    "build_spec_circuit",
    "choose_split_vars",
    "shard_image_worker",
]

#: Split-variable selectors: ``relation`` ranks candidates by how much
#: cofactoring shrinks the clusters; ``band``/``disjoint`` derive them
#: from the paper's decomposition points of the frontier.
SELECTORS = ("relation", "band", "disjoint")


@dataclass(frozen=True)
class ShardConfig:
    """Policy knobs of a sharded traversal (all deterministic)."""

    #: worker processes; < 2 disables sharding entirely
    shards: int = 2
    #: split-variable selector (see :data:`SELECTORS`)
    selector: str = "relation"
    #: frontiers below this node count stay sequential (collapse)
    min_frontier: int = 2000
    #: a worker whose cofactored piece exceeds this refuses the task and
    #: the coordinator re-splits it one variable deeper (0: disabled)
    resplit_threshold: int = 0
    #: bound on split depth (variables) a re-split cascade may reach
    max_split_depth: int = 6
    #: per-piece wall-clock timeout enforced by the pool (None: off)
    timeout: float | None = None
    #: governor budgets armed inside each worker (0: unbounded)
    node_budget: int = 0
    step_budget: int = 0
    deadline: float = 0.0

    def __post_init__(self) -> None:
        if self.selector not in SELECTORS:
            raise ValueError(
                f"selector must be one of {SELECTORS}, "
                f"got {self.selector!r}")
        if self.shards > 64:
            raise ValueError("shards must be <= 64")


@dataclass
class ShardStats:
    """Coordinator-side counters of one sharded traversal.

    Everything here is deterministic for a given configuration and
    circuit except the ``*_seconds`` fields, which are wall-clock and
    informational (the trajectory comparator ignores floats).
    """

    #: images computed by splitting across the pool
    shard_images: int = 0
    #: images computed sequentially (collapse: small frontier, no
    #: split variables, or sharding disabled)
    sequential_images: int = 0
    #: frontier pieces dispatched to workers, total
    pieces: int = 0
    #: pieces split one variable deeper after a worker refused
    resplits: int = 0
    #: pieces recomputed sequentially after a worker failure
    #: (budget abort, timeout, crash, error)
    fallbacks: int = 0
    #: widest split of any single step
    max_shards: int = 0
    #: wall-clock spent OR-merging piece images back together
    merge_seconds: float = 0.0
    #: wall-clock spent dumping/loading frontiers and images
    transfer_seconds: float = 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "shard_images": self.shard_images,
            "sequential_images": self.sequential_images,
            "pieces": self.pieces,
            "resplits": self.resplits,
            "fallbacks": self.fallbacks,
            "max_shards": self.max_shards,
            "merge_seconds": self.merge_seconds,
            "transfer_seconds": self.transfer_seconds,
        }


# ----------------------------------------------------------------------
# Circuit specs: picklable recipes the workers rebuild relations from
# ----------------------------------------------------------------------

def build_spec_circuit(spec: tuple) -> Any:
    """Rebuild a circuit from a picklable spec tuple.

    Specs name their source: ``("factory", name, args)`` for the
    benchmark population factories, ``("blif-text", text)`` for an
    in-memory netlist (the serve daemon), ``("blif-path", path)`` for a
    netlist file (the CLI).
    """
    kind = spec[0]
    if kind == "factory":
        from ..harness.population import make_circuit

        return make_circuit(spec[1], tuple(spec[2]))
    if kind == "blif-text":
        from ..fsm.blif import parse_blif

        return parse_blif(spec[1])
    if kind == "blif-path":
        from ..fsm.blif import read_blif

        return read_blif(spec[1])
    raise ValueError(f"unknown circuit spec kind {kind!r}")


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-process relation cache.  In the coordinator it is *pre-seeded*
#: with the live transition relation before the pool forks, so workers
#: inherit a warm base for free; a worker on a spawn platform (or a
#: replacement worker handed an unknown key) rebuilds from the spec.
_RELATIONS: dict[tuple, tuple[Any, TransitionRelation]] = {}


def _base_relation(payload: dict) -> tuple[Any, TransitionRelation]:
    key = tuple(payload["base"])
    entry = _RELATIONS.get(key)
    if entry is not None:
        return entry
    spec = payload.get("spec")
    if spec is None:
        raise RuntimeError(
            "shard worker has no relation for this traversal and no "
            "spec to rebuild one (spawn start method without a spec?)")
    from ..fsm.encode import encode

    circuit = build_spec_circuit(tuple(spec))
    encoded = encode(circuit, backend=payload.get("backend"))
    relation = TransitionRelation(
        encoded, cluster_limit=payload.get("cluster_limit", 2500))
    entry = (encoded, relation)
    _RELATIONS[key] = entry
    return entry


def _constrained_relation(payload: dict
                          ) -> tuple[Any, TransitionRelation]:
    assignment = tuple(payload["assignment"])
    key = tuple(payload["base"]) + ("cube",) + assignment
    entry = _RELATIONS.get(key)
    if entry is None:
        encoded, base = _base_relation(payload)
        entry = (encoded, base.constrain(dict(assignment)))
        _RELATIONS[key] = entry
    return entry


def shard_image_worker(payload: dict) -> dict:
    """One piece image, computed inside a pool worker process.

    Returns ``{"kind": "image", "text": <dump>, ...}`` normally, or
    ``{"kind": "resplit", ...}`` when the cofactored piece exceeds the
    payload's re-split threshold (the coordinator then splits the cube
    one variable deeper instead).  Governor budgets are armed around
    the whole load/cofactor/image window; a
    :class:`~repro.bdd.governor.ResourceError` unwinds cleanly and
    reaches the engine as a ``budget`` outcome.
    """
    import gc
    import multiprocessing

    encoded, relation = _constrained_relation(payload)
    manager = encoded.manager
    budget = payload.get("budget")
    node_budget, step_budget, deadline = budget or (0, 0, 0.0)
    with manager.with_budget(
            node_budget=node_budget or None,
            step_budget=step_budget or None,
            deadline=deadline or None):
        frontier = bdd_io.load(manager, payload["frontier"],
                               declare=False)
        assignment = {name: value
                      for name, value in payload["assignment"]
                      if name in frontier.support()}
        piece = frontier.cofactor(assignment) if assignment \
            else frontier
        threshold = payload.get("resplit_threshold", 0)
        if threshold and len(piece) > threshold:
            return {"kind": "resplit", "piece_nodes": len(piece)}
        image = relation.image(piece)
        text = bdd_io.dump(image)
    # The relation, its manager, and the accumulated caches are live
    # for the worker's whole life: move them to the permanent
    # generation so the cyclic collector stops rescanning them — on
    # long traversals that rescan tax is 20-30% of monolithic wall
    # clock.  A worker owns its process, so mutating global GC state
    # is fine there; guard on having a parent so in-process callers
    # (unit tests) leave the host interpreter's GC alone.
    if multiprocessing.parent_process() is not None:
        gc.freeze()
    return {"kind": "image", "text": text, "piece_nodes": len(piece),
            "image_nodes": len(image)}


# ----------------------------------------------------------------------
# Split-variable selection
# ----------------------------------------------------------------------

def _vars_from_points(manager: Any, points: set,
                      frontier: Function, count: int) -> list[str]:
    """Decomposition points -> split variables, by level frequency.

    Points are nodes of the frontier; each contributes its variable.
    Ranked by how many points share the level (descending), then by
    level (ascending) for determinism, padded from the frontier support
    in order when the points name fewer than ``count`` variables.
    """
    level_of = manager.store.level_of
    frequency = Counter(level_of(point) for point in points)
    ranked = sorted(frequency, key=lambda lv: (-frequency[lv], lv))
    names = [manager.var_at_level(level) for level in ranked]
    if len(names) < count:
        seen = set(names)
        support = sorted(frontier.support(),
                         key=manager.level_of_var)
        names.extend(name for name in support if name not in seen)
    return names[:count]


def _relation_ranking(tr: TransitionRelation) -> list[str]:
    """Candidate split variables by cofactor shrinkage of the clusters.

    For every input and present-state variable, score the summed size
    of both cofactors of every cluster: the variable whose constants
    simplify the relation most (an instruction bit, a mode select)
    splits the image work most evenly and is scored lowest.  The
    ranking is a property of the relation alone, so it is computed once
    per traversal and is independent of the frontier.
    """
    candidates = list(tr.encoded.input_vars) \
        + list(tr.encoded.state_vars)
    scores = []
    for name in candidates:
        total = sum(
            len(cluster.cofactor({name: True}))
            + len(cluster.cofactor({name: False}))
            for cluster in tr.clusters)
        scores.append((total, tr.manager.level_of_var(name), name))
    scores.sort()
    return [name for _, _, name in scores]


def choose_split_vars(tr: TransitionRelation, frontier: Function,
                      count: int, selector: str = "relation",
                      _ranking: list[str] | None = None) -> list[str]:
    """Pick up to ``count`` split variables for one frontier.

    May return fewer than ``count`` names (or none, e.g. for a
    constant frontier under the point selectors) — the caller splits
    as deep as the list allows and computes sequentially when it is
    empty.
    """
    if selector == "relation":
        ranking = _ranking if _ranking is not None \
            else _relation_ranking(tr)
        return ranking[:count]
    manager = frontier.manager
    if selector == "band":
        points = band_points(frontier)
    elif selector == "disjoint":
        points = disjoint_points(frontier)
    else:
        raise ValueError(
            f"selector must be one of {SELECTORS}, got {selector!r}")
    return _vars_from_points(manager, points, frontier, count)


# ----------------------------------------------------------------------
# Coordinator
# ----------------------------------------------------------------------

def _assignments(names: list[str]) -> list[tuple[tuple[str, bool], ...]]:
    """All cube assignments over the given variables, in mask order."""
    cubes = []
    for mask in range(1 << len(names)):
        cubes.append(tuple((name, bool(mask >> bit & 1))
                           for bit, name in enumerate(names)))
    return cubes


class FrontierSharder:
    """Coordinator of one sharded traversal.

    Drop-in companion to :func:`~repro.reach.degrade.governed_image`:
    :meth:`image` has the same ``(image, exact)`` contract, so
    :func:`~repro.reach.bfs.bfs_reachability` routes every image
    through it when ``sharder`` is given.  The pool and the worker
    relations are built lazily on the first frontier large enough to
    shard; :meth:`close` (or use as a context manager) shuts the
    workers down.

    ``spec`` is the picklable circuit recipe workers rebuild from when
    fork inheritance is unavailable; with the default ``fork`` start
    method it is optional — the coordinator seeds the worker-side
    relation cache with the live relation before the pool starts, and
    forked workers (including crash replacements) inherit it.
    """

    def __init__(self, tr: TransitionRelation,
                 config: ShardConfig | None = None, *,
                 spec: tuple | None = None) -> None:
        self.tr = tr
        self.config = config or ShardConfig()
        self.spec = spec
        self.stats = ShardStats()
        self._pool: WorkerPool | None = None
        self._ranking: list[str] | None = None
        self._base_key: tuple | None = None
        self._disabled = False

    # -- pool plumbing -------------------------------------------------

    def _ensure_pool(self) -> "WorkerPool":
        from ..harness.engine import WorkerPool

        if self._pool is None:
            # Retries are off: a failed piece is recomputed exactly by
            # the coordinator, which is cheaper than re-shipping it to
            # a worker that will deterministically fail again.
            self._pool = WorkerPool(shard_image_worker,
                                    jobs=self.config.shards,
                                    timeout=self.config.timeout,
                                    retries=0)
            if self._pool.start_method == "fork":
                # Seed the worker-side cache: forked workers inherit
                # the live relation instead of rebuilding it.
                self._base_key = ("prewarm", id(self))
                _RELATIONS[self._base_key] = (self.tr.encoded, self.tr)
            elif self.spec is not None:
                self._base_key = ("spec", tuple(self.spec),
                                  self.tr.manager.backend,
                                  self.tr.cluster_limit)
            else:
                self._pool.close()
                self._pool = None
                self._disabled = True
        if self._disabled or self._pool is None:
            raise RuntimeError(
                "sharding unavailable: no fork start method and no "
                "circuit spec to rebuild worker relations from")
        return self._pool

    def close(self) -> None:
        """Stop the worker pool and drop the pre-seeded relation."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        if self._base_key is not None:
            _RELATIONS.pop(self._base_key, None)
            self._base_key = None

    def __enter__(self) -> "FrontierSharder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- the image -----------------------------------------------------

    def image(self, frontier: Function, *, on_blowup: str = "raise",
              subset: Subsetter | None = None, threshold: int = 0,
              allow_subset: bool = True) -> tuple[Function, bool]:
        """One image, sharded when the policy says it pays.

        Same contract as :func:`governed_image`; the sharded path is
        always exact (worker failures fall back to exact sequential
        recomputation of the piece), so ``exact`` can only be False
        when the policy collapsed to the sequential ladder *and* the
        ladder took a subset rung.
        """
        config = self.config
        if (self._disabled or config.shards < 2
                or len(frontier) < config.min_frontier):
            return self._sequential(frontier, on_blowup=on_blowup,
                                    subset=subset, threshold=threshold,
                                    allow_subset=allow_subset)
        depth = max(1, (config.shards - 1).bit_length())
        names = choose_split_vars(self.tr, frontier, depth,
                                  config.selector,
                                  _ranking=self._cached_ranking())
        if not names:
            return self._sequential(frontier, on_blowup=on_blowup,
                                    subset=subset, threshold=threshold,
                                    allow_subset=allow_subset)
        try:
            pool = self._ensure_pool()
        except RuntimeError:
            return self._sequential(frontier, on_blowup=on_blowup,
                                    subset=subset, threshold=threshold,
                                    allow_subset=allow_subset)
        return self._sharded(pool, frontier, names,
                             on_blowup=on_blowup), True

    def _cached_ranking(self) -> list[str] | None:
        if self.config.selector != "relation":
            return None
        if self._ranking is None:
            self._ranking = _relation_ranking(
                self.tr)[:self.config.max_split_depth]
        return self._ranking

    def _sequential(self, frontier: Function, *, on_blowup: str,
                    subset: Subsetter | None, threshold: int,
                    allow_subset: bool) -> tuple[Function, bool]:
        self.stats.sequential_images += 1
        return governed_image(self.tr, frontier, on_blowup=on_blowup,
                              subset=subset, threshold=threshold,
                              allow_subset=allow_subset)

    def _payload(self, text: str,
                 assignment: tuple[tuple[str, bool], ...],
                 resplit_threshold: int) -> dict:
        config = self.config
        payload = {
            "base": self._base_key,
            "assignment": assignment,
            "frontier": text,
            "resplit_threshold": resplit_threshold,
            "cluster_limit": self.tr.cluster_limit,
            "backend": self.tr.manager.backend,
        }
        if self.spec is not None:
            payload["spec"] = tuple(self.spec)
        if config.node_budget or config.step_budget or config.deadline:
            payload["budget"] = (config.node_budget,
                                 config.step_budget, config.deadline)
        return payload

    def _sharded(self, pool: "WorkerPool", frontier: Function,
                 names: list[str], *, on_blowup: str) -> Function:
        from ..harness.engine import OK, Task

        config = self.config
        stats = self.stats
        manager = frontier.manager
        began = time.perf_counter()
        text = bdd_io.dump(frontier)
        stats.transfer_seconds += time.perf_counter() - began

        assignments = _assignments(names)
        step_pieces = 0
        failed: list[tuple[tuple[str, bool], ...]] = []
        merged = manager.false
        while assignments:
            deeper_ok = any(len(a) < config.max_split_depth
                            for a in assignments)
            tasks = [Task(key=f"cube{i}",
                          payload=self._payload(
                              text, assignment,
                              config.resplit_threshold
                              if deeper_ok else 0))
                     for i, assignment in enumerate(assignments)]
            run = pool.run(tasks)
            step_pieces += len(assignments)
            resplit: list[tuple[tuple[str, bool], ...]] = []
            for assignment, outcome in zip(assignments, run.outcomes):
                if outcome.status == OK \
                        and outcome.result["kind"] == "image":
                    began = time.perf_counter()
                    piece_image = bdd_io.load(manager,
                                              outcome.result["text"],
                                              declare=False)
                    stats.transfer_seconds += \
                        time.perf_counter() - began
                    began = time.perf_counter()
                    merged = merged | piece_image
                    stats.merge_seconds += time.perf_counter() - began
                elif outcome.status == OK:
                    resplit.append(assignment)
                else:
                    failed.append(assignment)
            next_round: list[tuple[tuple[str, bool], ...]] = []
            for assignment in resplit:
                depth = len(assignment)
                deeper = choose_split_vars(
                    self.tr, frontier, depth + 1, config.selector,
                    _ranking=self._cached_ranking())
                used = {name for name, _ in assignment}
                fresh = [n for n in deeper if n not in used]
                if depth >= config.max_split_depth or not fresh:
                    # No deeper variable: force the piece through.
                    failed.append(assignment)
                    continue
                stats.resplits += 1
                next_round.append(assignment + ((fresh[0], False),))
                next_round.append(assignment + ((fresh[0], True),))
            assignments = next_round

        for assignment in failed:
            # Exact coordinator-side recomputation of the piece: keeps
            # the merged image byte-identical to the sequential run no
            # matter how the worker failed.
            stats.fallbacks += 1
            cube = manager.true
            for name, value in assignment:
                var = manager.var(name)
                cube = cube & (var if value else ~var)
            piece_image, _ = governed_image(
                self.tr, frontier & cube, on_blowup=on_blowup,
                allow_subset=False)
            began = time.perf_counter()
            merged = merged | piece_image
            stats.merge_seconds += time.perf_counter() - began

        stats.shard_images += 1
        stats.pieces += step_pieces
        stats.max_shards = max(stats.max_shards, step_pieces)
        return merged
