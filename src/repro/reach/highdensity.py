"""High-density reachability analysis (Ravi–Somenzi, ICCAD 95).

The traversal the paper accelerates with RUA (Section 4): a mixed
depth-first/breadth-first exploration where every image computation is
fed a *dense subset* extracted from the newly found states instead of
the full frontier.  Frontier BDDs stay small (high density) at the
price of more iterations.

States dropped by the subsetting are usually rediscovered by later
images; stragglers are recovered when the dense frontier dries out by
one exact image of the reached set (cheap near the fixpoint, where the
reached-set BDD is smooth), so the traversal terminates with the
**exact** reachable set — as in the completed runs of Table 1.

Optionally, intermediate image products are subsetted as well (the
paper's partial-image "PImg" mechanism).
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from ..bdd.counting import density
from ..bdd.function import Function
from .bfs import ReachResult, TraversalLimit
from .degrade import governed_image, shield, validate_on_blowup
from .transition import PartialImagePolicy, TransitionRelation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..store.checkpoint import ReachCheckpointer
    from .shard import FrontierSharder

#: An under-approximation procedure fn(f, *, threshold=0) -> subset of
#: f, the uniform signature of the UNDER_APPROXIMATORS registry.
Subsetter = Callable[..., Function]


@dataclass
class HighDensityResult(ReachResult):
    """Reachability result with high-density-specific statistics."""

    #: density of each dense subset handed to image computation
    subset_densities: list[float] = field(default_factory=list)
    #: number of exact-image recovery sweeps at frontier dry-out
    recoveries: int = 0


def high_density_reachability(
        tr: TransitionRelation, init: Function, subset: Subsetter,
        threshold: int = 0,
        partial: PartialImagePolicy | None = None,
        max_iterations: int | None = None,
        node_limit: int | None = None,
        deadline: float | None = None,
        on_blowup: str = "raise",
        sharder: "FrontierSharder | None" = None,
        checkpointer: "ReachCheckpointer | None" = None
        ) -> HighDensityResult:
    """High-density traversal computing the exact reachable set.

    Parameters
    ----------
    subset:
        The approximation procedure extracting a dense subset from the
        new states — any ``UNDER_APPROXIMATORS`` entry or callable with
        the registry's ``fn(f, *, threshold=0)`` signature.
    threshold:
        Size threshold handed to ``subset`` (the paper's "Th" column).
    partial:
        Optional partial-image subsetting policy (the "PImg" column).
    on_blowup:
        Reaction to governor aborts (budgets armed via
        :meth:`Manager.with_budget`): ``"raise"`` propagates them;
        ``"subset"``/``"retry-reorder"`` degrade blowing-up images
        through the :mod:`repro.reach.degrade` escalation ladder using
        this traversal's own ``subset``/``threshold``.  Recovery images
        never subset, so the final reached set stays exact.
    sharder:
        Optional :class:`~repro.reach.shard.FrontierSharder` computing
        the images disjunctively across a worker pool.  Images under a
        ``partial`` policy stay sequential (partial-image subsetting is
        a *deliberate* under-approximation; shard workers always image
        exactly).  The caller owns the sharder's lifetime.
    checkpointer:
        Optional :class:`~repro.store.checkpoint.ReachCheckpointer`
        persisting the loop state every few iterations; resumed runs
        produce a byte-identical reached set (see
        :func:`~repro.reach.bfs.bfs_reachability` and
        ``docs/persistence.md``).
    """
    validate_on_blowup(on_blowup)

    def step_image(states: Function, **kwargs: object) -> Function:
        if sharder is not None and kwargs.get("partial") is None:
            kwargs.pop("partial", None)
            return sharder.image(states, on_blowup=on_blowup, **kwargs)
        return governed_image(tr, states, on_blowup=on_blowup, **kwargs)

    start = time.perf_counter()
    reached = init
    new = init
    iterations = 0
    recoveries = 0
    size_trace = [len(reached)]
    frontier_trace: list[int] = []
    densities: list[float] = []

    if checkpointer is not None:
        loaded = checkpointer.load(init.manager)
        if loaded is not None:
            roots, meta = loaded
            if meta.get("method") != "hd":
                from ..store.errors import StoreError
                raise StoreError(
                    f"checkpoint {checkpointer.name!r} belongs to "
                    f"method {meta.get('method')!r}, not hd")
            reached = roots["reached"]
            new = roots["new"]
            iterations = int(meta["iterations"])
            recoveries = int(meta["recoveries"])
            size_trace = [int(n) for n in meta["size_trace"]]
            frontier_trace = [int(n) for n in meta["frontier_trace"]]
            densities = [float(d) for d in meta["densities"]]
            if meta.get("complete"):
                return _result(reached, iterations, size_trace,
                               frontier_trace, densities, recoveries,
                               start, complete=True, sharder=sharder)

    def save_state(save: "Callable[..., None]") -> None:
        save({"reached": reached, "new": new},
             {"method": "hd", "iterations": iterations,
              "recoveries": recoveries, "size_trace": size_trace,
              "frontier_trace": frontier_trace,
              "densities": densities})

    while True:
        if new.is_false:
            # Dense frontiers dried out: recover dropped states with one
            # exact image of the reached set (never subsetted — an
            # approximate recovery image could falsely conclude the
            # fixpoint was reached).
            image, _ = step_image(reached, allow_subset=False)
            with shield(reached, on_blowup):
                new = image - reached
                if new.is_false:
                    break
                recoveries += 1
                reached = reached | new
        if max_iterations is not None and iterations >= max_iterations:
            return _result(reached, iterations, size_trace,
                           frontier_trace, densities, recoveries,
                           start, complete=False, sharder=sharder)
        with shield(new, on_blowup):
            frontier = subset(new, threshold=threshold)
        if frontier.is_false:
            # Degenerate subset: fall back to the full new set so the
            # traversal always makes progress.
            frontier = new
        frontier_trace.append(len(frontier))
        densities.append(density(frontier))
        image, _exact = step_image(frontier, subset=subset,
                                   threshold=threshold, partial=partial)
        with shield(frontier, on_blowup):
            new = image - reached
            reached = reached | new
        iterations += 1
        size_trace.append(len(reached))
        if checkpointer is not None:
            save_state(checkpointer.step)
        if node_limit is not None and \
                max(len(reached), len(new)) > node_limit:
            raise TraversalLimit(
                f"node limit {node_limit} exceeded at iteration "
                f"{iterations}")
        if deadline is not None and \
                time.perf_counter() - start > deadline:
            raise TraversalLimit(
                f"deadline {deadline}s exceeded at iteration "
                f"{iterations}")
    if checkpointer is not None:
        save_state(checkpointer.finish)
    return _result(reached, iterations, size_trace, frontier_trace,
                   densities, recoveries, start, complete=True,
                   sharder=sharder)


def _result(reached: Function, iterations: int, size_trace: list[int],
            frontier_trace: list[int], densities: list[float],
            recoveries: int, start: float, complete: bool,
            sharder: "FrontierSharder | None" = None
            ) -> HighDensityResult:
    return HighDensityResult(
        reached=reached, iterations=iterations, size_trace=size_trace,
        frontier_trace=frontier_trace,
        seconds=time.perf_counter() - start, complete=complete,
        subset_densities=densities, recoveries=recoveries,
        manager_stats=reached.manager.stats,
        shard_stats=sharder.stats.as_dict()
        if sharder is not None else None)
