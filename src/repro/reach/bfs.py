"""Exact breadth-first symbolic reachability (the paper's baseline)."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from typing import TYPE_CHECKING

from ..bdd.function import Function
from ..bdd.manager import ManagerStats
from .degrade import Subsetter, governed_image, shield, validate_on_blowup
from .transition import TransitionRelation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..store.checkpoint import ReachCheckpointer
    from .shard import FrontierSharder


class TraversalLimit(Exception):
    """Raised when a traversal exceeds its node or time budget."""


@dataclass
class ReachResult:
    """Outcome of a reachability run."""

    reached: Function
    iterations: int
    #: |reached| per iteration
    size_trace: list[int] = field(default_factory=list)
    #: |frontier| per iteration
    frontier_trace: list[int] = field(default_factory=list)
    seconds: float = 0.0
    complete: bool = True
    #: manager runtime snapshot taken when the traversal returned
    #: (cache hit rates, GC pauses, peak nodes); None for legacy callers
    manager_stats: ManagerStats | None = None
    #: sharded-traversal counters (:meth:`ShardStats.as_dict`); None
    #: for sequential runs
    shard_stats: dict | None = None


def count_states(reached: Function, state_vars: list[str]) -> int:
    """Number of states in a reached set over the given state bits."""
    manager = reached.manager
    # sat_count over all manager variables, then divide by the free ones.
    total = reached.sat_count()
    free = manager.num_vars - len(state_vars)
    return total >> free


def bfs_reachability(tr: TransitionRelation, init: Function,
                     max_iterations: int | None = None,
                     node_limit: int | None = None,
                     deadline: float | None = None, *,
                     on_blowup: str = "raise",
                     subset: Subsetter | None = None,
                     subset_threshold: int = 0,
                     sharder: "FrontierSharder | None" = None,
                     checkpointer: "ReachCheckpointer | None" = None
                     ) -> ReachResult:
    """Classic breadth-first fixpoint: reached = lfp(init | image).

    Raises :class:`TraversalLimit` if a frontier or the reached set
    exceeds ``node_limit`` nodes or the wall-clock ``deadline`` (in
    seconds) passes — the stand-in for the paper's memory-exhausted and
    ">2 weeks" entries.

    ``on_blowup`` selects the reaction to a *governor* abort (armed via
    :meth:`Manager.with_budget`): ``"raise"`` (default) propagates it;
    ``"subset"``/``"retry-reorder"`` climb the escalation ladder of
    :mod:`repro.reach.degrade` — a budget-busting image retries on a
    dense under-approximation of the frontier (``subset``, default RUA,
    at ``subset_threshold``).  Frontiers degraded that way may miss
    successors, so before accepting a fixpoint the traversal runs exact
    recovery images of the reached set; the final reached set is exact
    either way.

    ``sharder`` routes every image through a
    :class:`~repro.reach.shard.FrontierSharder` (disjunctive frontier
    partitioning across a persistent worker pool) instead of directly
    through :func:`governed_image`; the reached set, the traces, and
    the iteration count are identical either way.  The caller owns the
    sharder's lifetime (use it as a context manager).

    ``checkpointer`` persists the loop state (reached set, frontier,
    traces) to an on-disk store every few iterations and, when its
    ``resume`` flag is set, restarts the loop from the last saved
    state; because every BDD operation is canonical, a resumed
    traversal produces a byte-identical reached set and identical
    traces (see ``docs/persistence.md``).
    """
    validate_on_blowup(on_blowup)

    def step_image(states: Function, **kwargs: object) -> Function:
        if sharder is not None:
            return sharder.image(states, on_blowup=on_blowup, **kwargs)
        return governed_image(tr, states, on_blowup=on_blowup, **kwargs)

    start = time.perf_counter()
    reached = init
    frontier = init
    iterations = 0
    degraded = False
    size_trace: list[int] = [len(reached)]
    frontier_trace: list[int] = [len(frontier)]
    if checkpointer is not None:
        loaded = checkpointer.load(init.manager)
        if loaded is not None:
            roots, meta = loaded
            if meta.get("method") != "bfs":
                from ..store.errors import StoreError
                raise StoreError(
                    f"checkpoint {checkpointer.name!r} belongs to "
                    f"method {meta.get('method')!r}, not bfs")
            reached = roots["reached"]
            frontier = roots["frontier"]
            iterations = int(meta["iterations"])
            degraded = bool(meta["degraded"])
            size_trace = [int(n) for n in meta["size_trace"]]
            frontier_trace = [int(n) for n in meta["frontier_trace"]]
            if meta.get("complete"):
                # The previous run already reached the fixpoint (it was
                # killed after its final save): return it verbatim.
                return ReachResult(
                    reached=reached, iterations=iterations,
                    size_trace=size_trace,
                    frontier_trace=frontier_trace,
                    seconds=time.perf_counter() - start,
                    manager_stats=reached.manager.stats,
                    shard_stats=sharder.stats.as_dict()
                    if sharder is not None else None)
    while True:
        if frontier.is_false:
            if not degraded:
                break
            # Subsetted frontiers may have missed successors: confirm
            # the fixpoint with an exact image of the reached set
            # (allow_subset=False — approximating the recovery image
            # could falsely conclude convergence).
            image, _ = step_image(reached, allow_subset=False)
            with shield(reached, on_blowup):
                frontier = image - reached
                if frontier.is_false:
                    break
                reached = reached | frontier
            degraded = False
            size_trace.append(len(reached))
            frontier_trace.append(len(frontier))
        if max_iterations is not None and iterations >= max_iterations:
            return ReachResult(reached=reached, iterations=iterations,
                               size_trace=size_trace,
                               frontier_trace=frontier_trace,
                               seconds=time.perf_counter() - start,
                               complete=False,
                               manager_stats=reached.manager.stats,
                               shard_stats=sharder.stats.as_dict()
                               if sharder is not None else None)
        image, exact = step_image(frontier, subset=subset,
                                  threshold=subset_threshold)
        if not exact:
            degraded = True
        with shield(frontier, on_blowup):
            frontier = image - reached
            reached = reached | frontier
        iterations += 1
        size_trace.append(len(reached))
        frontier_trace.append(len(frontier))
        if checkpointer is not None:
            checkpointer.step(
                {"reached": reached, "frontier": frontier},
                {"method": "bfs", "iterations": iterations,
                 "degraded": degraded, "size_trace": size_trace,
                 "frontier_trace": frontier_trace})
        if node_limit is not None and \
                max(len(reached), len(frontier)) > node_limit:
            raise TraversalLimit(
                f"node limit {node_limit} exceeded at iteration "
                f"{iterations}")
        if deadline is not None and \
                time.perf_counter() - start > deadline:
            raise TraversalLimit(
                f"deadline {deadline}s exceeded at iteration {iterations}")
    if checkpointer is not None:
        checkpointer.finish(
            {"reached": reached, "frontier": frontier},
            {"method": "bfs", "iterations": iterations,
             "degraded": degraded, "size_trace": size_trace,
             "frontier_trace": frontier_trace})
    return ReachResult(reached=reached, iterations=iterations,
                       size_trace=size_trace,
                       frontier_trace=frontier_trace,
                       seconds=time.perf_counter() - start,
                       manager_stats=reached.manager.stats,
                       shard_stats=sharder.stats.as_dict()
                       if sharder is not None else None)
