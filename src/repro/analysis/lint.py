"""The lint engine: rule registry, suppressions, reporting.

A *rule* is a callable taking a :class:`FileContext` and yielding
:class:`Violation` records; it is registered under a stable ``RPRxxx``
identifier with a default severity.  The engine owns everything rules
should not have to care about:

* parsing (one :func:`ast.parse` per file, shared by all rules),
* suppression comments — ``# repro-lint: disable=RPR001[,RPR002]`` on a
  line suppresses those rules for that line (bare ``disable`` suppresses
  every rule), and ``# repro-lint: disable-file=RPR001`` anywhere in the
  file suppresses a rule for the whole file,
* directory walking with default excludes (``lint_corpus`` fixture
  directories, caches); explicitly named files are always linted,
* text (``path:line:col: RPRxxx message``) and JSON output.

Severities are ``error`` and ``warning``.  Errors are meant to gate CI;
warnings surface debt without failing the build (``--strict`` promotes
them).
"""

from __future__ import annotations

import ast
import hashlib
import io
import json
import re
import tokenize
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, replace
from pathlib import Path, PurePath

#: Severity levels, weakest first.
SEVERITIES = ("warning", "error")

#: Directory names skipped while walking a directory argument.  Explicit
#: file arguments bypass this list.  ``lint_corpus`` holds the rule test
#: fixtures — snippets that *must* trigger rules (see tests/analysis).
DEFAULT_EXCLUDE_DIRS = frozenset({
    "__pycache__", ".git", ".hypothesis", ".pytest_cache", "lint_corpus",
})

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*(?:=\s*([A-Za-z0-9_,\s]+))?")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location, a message.

    ``fingerprint`` is a line-drift-stable identity used by the
    baseline workflow: a hash over the rule id, the trailing path
    components, the *text* of the flagged source line and an occurrence
    index — so re-ordering unrelated code does not churn the baseline.
    It is stamped by :func:`lint_source`; rules leave it empty.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    fingerprint: str = ""

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class Rule:
    """A registered lint rule."""

    id: str
    name: str
    severity: str
    description: str
    check: Callable[["FileContext"], Iterator[Violation]]


#: The rule registry, keyed by ``RPRxxx`` identifier.
RULES: dict[str, Rule] = {}


def register_rule(rule_id: str, name: str, severity: str,
                  description: str) -> Callable[
                      [Callable[["FileContext"], Iterator[Violation]]],
                      Callable[["FileContext"], Iterator[Violation]]]:
    """Register a rule check function under ``rule_id``.

    The decorated function receives a :class:`FileContext` and yields
    ``(line, col, message)`` triples via :meth:`FileContext.violation`
    (or full :class:`Violation` records).
    """
    if severity not in SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def decorator(check: Callable[["FileContext"], Iterator[Violation]]
                  ) -> Callable[["FileContext"], Iterator[Violation]]:
        if rule_id in RULES:
            raise ValueError(f"rule {rule_id} already registered")
        RULES[rule_id] = Rule(id=rule_id, name=name, severity=severity,
                              description=description, check=check)
        return check

    return decorator


class FileContext:
    """Everything a rule may want to know about one source file."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path
        self.source = source
        self.tree = ast.parse(source, filename=path)
        #: line -> rule ids disabled on that line ("*" disables all)
        self.line_disables: dict[int, set[str]] = {}
        #: rule ids disabled for the whole file
        self.file_disables: set[str] = set()
        self._scan_suppressions()

    def _scan_suppressions(self) -> None:
        try:
            tokens = tokenize.generate_tokens(
                io.StringIO(self.source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _SUPPRESS_RE.search(token.string)
                if match is None:
                    continue
                kind, spec = match.group(1), match.group(2)
                rules = ({r.strip() for r in spec.split(",") if r.strip()}
                         if spec else {"*"})
                if kind == "disable-file":
                    self.file_disables |= rules
                else:
                    self.line_disables.setdefault(
                        token.start[0], set()).update(rules)
        except tokenize.TokenError:
            # Unterminated string etc. — ast.parse already succeeded, so
            # just proceed without suppression info.
            pass

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_disables or "*" in self.file_disables:
            return True
        disabled = self.line_disables.get(line, ())
        return rule_id in disabled or "*" in disabled

    def violation(self, rule_id: str, node: ast.AST | tuple[int, int],
                  message: str,
                  severity: str | None = None) -> Violation:
        """Build a Violation located at an AST node (or (line, col))."""
        if isinstance(node, tuple):
            line, col = node
        else:
            line, col = node.lineno, node.col_offset
        rule = RULES[rule_id]
        return Violation(rule=rule_id,
                         severity=severity or rule.severity,
                         path=self.path, line=line, col=col,
                         message=message)


def _stamp_fingerprints(violations: list[Violation],
                        source: str) -> list[Violation]:
    """Attach line-drift-stable fingerprints (see :class:`Violation`)."""
    lines = source.splitlines()
    seen: dict[tuple[str, str, str], int] = {}
    out: list[Violation] = []
    for violation in violations:
        text = lines[violation.line - 1].strip() \
            if 0 < violation.line <= len(lines) else ""
        tail = "/".join(PurePath(violation.path).parts[-3:])
        key = (violation.rule, tail, text)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        digest = hashlib.sha1(
            f"{violation.rule}|{tail}|{text}|{occurrence}".encode(
                "utf-8")).hexdigest()[:20]
        out.append(replace(violation, fingerprint=digest))
    return out


def _unknown_suppressions(ctx: FileContext) -> Iterator[Violation]:
    """Engine diagnostic: ``disable=`` naming a rule id that does not
    exist silently suppresses nothing — surface it as a warning."""
    known = set(RULES) | {"*", "RPR000"}
    for line, ids in sorted(ctx.line_disables.items()):
        for rule_id in sorted(ids - known):
            yield Violation(
                rule="RPR000", severity="warning", path=ctx.path,
                line=line, col=0,
                message=f"unknown rule id {rule_id!r} in suppression "
                        f"comment (known: {', '.join(sorted(RULES))})")
    for rule_id in sorted(ctx.file_disables - known):
        yield Violation(
            rule="RPR000", severity="warning", path=ctx.path,
            line=1, col=0,
            message=f"unknown rule id {rule_id!r} in disable-file "
                    f"suppression (known: {', '.join(sorted(RULES))})")


def lint_source(source: str, path: str = "<string>",
                rules: Iterable[str] | None = None,
                ignore: Iterable[str] | None = None) -> list[Violation]:
    """Lint one source string; returns unsuppressed violations.

    ``rules`` selects a subset of the registry (default: all);
    ``ignore`` removes rules from whatever was selected.  Engine
    diagnostics (``RPR000`` syntax errors and unknown suppression ids)
    are always produced.
    """
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        return [Violation(rule="RPR000", severity="error", path=path,
                          line=exc.lineno or 1, col=exc.offset or 0,
                          message=f"syntax error: {exc.msg}")]
    selected = [RULES[r] for r in rules] if rules is not None \
        else list(RULES.values())
    if ignore is not None:
        ignored = set(ignore)
        selected = [rule for rule in selected
                    if rule.id not in ignored]
    out: list[Violation] = []
    for rule in selected:
        for violation in rule.check(ctx):
            if not ctx.is_suppressed(violation.rule, violation.line):
                out.append(violation)
    for violation in _unknown_suppressions(ctx):
        if not ctx.is_suppressed(violation.rule, violation.line):
            out.append(violation)
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return _stamp_fingerprints(out, source)


def iter_python_files(paths: Iterable[str | Path],
                      exclude_dirs: frozenset[str] = DEFAULT_EXCLUDE_DIRS
                      ) -> Iterator[Path]:
    """Expand path arguments into Python files.

    Directories are walked recursively, skipping ``exclude_dirs``;
    explicitly named files are yielded as-is (even inside an excluded
    directory — that is how the rule corpus tests lint their fixtures).
    """
    for item in paths:
        path = Path(item)
        if path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if exclude_dirs.isdisjoint(candidate.parts):
                    yield candidate
        else:
            yield path


def lint_paths(paths: Iterable[str | Path],
               rules: Iterable[str] | None = None,
               ignore: Iterable[str] | None = None) -> list[Violation]:
    """Lint files/directory trees; returns all unsuppressed violations."""
    out: list[Violation] = []
    for path in iter_python_files(paths):
        out.extend(lint_source(path.read_text(encoding="utf-8"),
                               str(path), rules=rules, ignore=ignore))
    return out


def render_text(violations: list[Violation]) -> str:
    """One ``path:line:col: severity RPRxxx message`` line per finding."""
    lines = [f"{v.path}:{v.line}:{v.col}: {v.severity} {v.rule} "
             f"{v.message}" for v in violations]
    errors = sum(1 for v in violations if v.severity == "error")
    warnings = len(violations) - errors
    lines.append(f"{errors} error(s), {warnings} warning(s)")
    return "\n".join(lines)


def render_json(violations: list[Violation], *,
                baselined: int = 0) -> str:
    """JSON document: violations plus per-rule and total counts.

    ``baselined`` reports how many findings were filtered out by the
    committed baseline before rendering (0 when no baseline is used).
    """
    errors = sum(1 for v in violations if v.severity == "error")
    per_rule: dict[str, int] = {}
    for violation in violations:
        per_rule[violation.rule] = per_rule.get(violation.rule, 0) + 1
    return json.dumps({
        "violations": [v.as_dict() for v in violations],
        "errors": errors,
        "warnings": len(violations) - errors,
        "per_rule": dict(sorted(per_rule.items())),
        "baselined": baselined,
    }, indent=2)


def exit_code(violations: list[Violation], strict: bool = False) -> int:
    """1 if any error (or, under ``strict``, any finding at all)."""
    if strict:
        return 1 if violations else 0
    return 1 if any(v.severity == "error" for v in violations) else 0
