"""A small forward-dataflow framework over :mod:`repro.analysis.cfg`.

Facts are ``frozenset[str]`` — a set-based gen/kill lattice.  A rule
supplies a *transfer* function mapping ``(leaf statement, fact before)``
to the fact after that statement; :class:`ForwardAnalysis` runs the
classic worklist algorithm to a fixpoint and can then replay each block
to recover per-statement facts.

Two joins are supported:

``"union"`` (default)
    May-analysis: a fact holds after the merge if it held on *any*
    incoming path.  Used by the fork-capture rule ("``gc.freeze`` may
    have run") and the ref-pairing rule ("this handle may still be
    pending").
``"intersection"``
    Must-analysis: a fact survives the merge only if it held on *every*
    incoming path.  Unvisited predecessors contribute top (no
    constraint) rather than the empty set.

The framework is intraprocedural and flow-sensitive but path- and
context-insensitive — exactly enough structure for lint-grade proofs,
nothing more.
"""

from __future__ import annotations

import ast
from collections import deque
from collections.abc import Callable, Iterator

from .cfg import CFG

__all__ = ["Fact", "Transfer", "ForwardAnalysis", "gen_kill"]

#: A dataflow fact: an immutable set of atoms.
Fact = frozenset[str]

#: Transfer function: fact after = transfer(statement, fact before).
Transfer = Callable[[ast.AST, Fact], Fact]

EMPTY: Fact = frozenset()


def gen_kill(gen: frozenset[str], kill: frozenset[str]) -> Transfer:
    """A constant gen/kill transfer: ``(fact - kill) | gen``."""
    def transfer(_stmt: ast.AST, fact: Fact) -> Fact:
        return (fact - kill) | gen
    return transfer


class ForwardAnalysis:
    """Worklist fixpoint of a forward dataflow problem on one CFG."""

    def __init__(self, cfg: CFG, transfer: Transfer,
                 entry_fact: Fact = EMPTY,
                 join: str = "union") -> None:
        if join not in ("union", "intersection"):
            raise ValueError(f"unknown join {join!r}")
        self.cfg = cfg
        self.transfer = transfer
        self.entry_fact = entry_fact
        self.join = join
        #: ``None`` means "not yet computed" (top for intersection).
        self._in: dict[int, Fact | None] = {
            bid: None for bid in cfg.blocks}
        self._out: dict[int, Fact | None] = {
            bid: None for bid in cfg.blocks}

    def _merge(self, facts: list[Fact]) -> Fact:
        if not facts:
            return EMPTY
        merged = facts[0]
        for fact in facts[1:]:
            merged = merged | fact if self.join == "union" \
                else merged & fact
        return merged

    def _flow(self, block_id: int, fact: Fact) -> Fact:
        for stmt in self.cfg.blocks[block_id].statements:
            fact = self.transfer(stmt, fact)
        return fact

    def run(self) -> "ForwardAnalysis":
        """Iterate to fixpoint; returns self for chaining."""
        preds = self.cfg.predecessors()
        worklist: deque[int] = deque(self.cfg.blocks)
        queued = set(worklist)
        while worklist:
            block_id = worklist.popleft()
            queued.discard(block_id)
            if block_id == self.cfg.entry:
                in_fact: Fact = self.entry_fact
            else:
                incoming = [self._out[p] for p in preds[block_id]]
                known = [fact for fact in incoming if fact is not None]
                if not known and incoming:
                    continue  # all predecessors still uncomputed
                in_fact = self._merge(known)
            out_fact = self._flow(block_id, in_fact)
            if self._in[block_id] == in_fact \
                    and self._out[block_id] == out_fact:
                continue
            self._in[block_id] = in_fact
            self._out[block_id] = out_fact
            for succ in self.cfg.blocks[block_id].successors:
                if succ not in queued:
                    worklist.append(succ)
                    queued.add(succ)
        return self

    def fact_in(self, block_id: int) -> Fact:
        """The fact at block entry (empty if the block is unreachable)."""
        fact = self._in[block_id]
        return fact if fact is not None else EMPTY

    def fact_out(self, block_id: int) -> Fact:
        """The fact at block exit (empty if the block is unreachable)."""
        fact = self._out[block_id]
        return fact if fact is not None else EMPTY

    def exit_fact(self) -> Fact:
        """The fact at the function's exit node."""
        return self.fact_in(self.cfg.exit)

    def statement_facts(self) -> Iterator[tuple[ast.AST, Fact, Fact]]:
        """Yield ``(statement, fact before, fact after)`` triples.

        Blocks are replayed from their fixpoint entry facts, so this is
        exact (not re-iterated) once :meth:`run` has converged.
        """
        for block_id in sorted(self.cfg.blocks):
            fact = self.fact_in(block_id)
            for stmt in self.cfg.blocks[block_id].statements:
                after = self.transfer(stmt, fact)
                yield stmt, fact, after
                fact = after
