"""SARIF 2.1.0 output for ``repro lint``.

The subset of the schema GitHub code scanning consumes: one run, a
tool driver carrying the full rule catalogue (so the UI can show rule
help without a finding), and one result per violation with a physical
location and a partial fingerprint.  Upload the document from CI with
``github/codeql-action/upload-sarif`` and findings annotate the PR
diff exactly like CodeQL's do.
"""

from __future__ import annotations

import json
from pathlib import PurePath

from .lint import RULES, Violation

__all__ = ["SARIF_SCHEMA", "render_sarif"]

SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")

#: repro-lint severity -> SARIF level.
_LEVELS = {"error": "error", "warning": "warning"}


def _rule_descriptor(rule_id: str) -> dict[str, object]:
    rule = RULES[rule_id]
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.name},
        "fullDescription": {"text": rule.description},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning")},
    }


def _result(violation: Violation) -> dict[str, object]:
    uri = PurePath(violation.path).as_posix()
    if uri.startswith("./"):
        uri = uri[2:]
    result: dict[str, object] = {
        "ruleId": violation.rule,
        "level": _LEVELS.get(violation.severity, "warning"),
        "message": {"text": violation.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": uri},
                "region": {
                    "startLine": violation.line,
                    "startColumn": violation.col + 1,
                },
            },
        }],
    }
    if violation.fingerprint:
        result["partialFingerprints"] = {
            "reproLint/v1": violation.fingerprint}
    return result


def render_sarif(violations: list[Violation]) -> str:
    """Render findings as a SARIF 2.1.0 document (JSON text)."""
    rule_ids = sorted(set(RULES))
    run = {
        "tool": {
            "driver": {
                "name": "repro-lint",
                "rules": [_rule_descriptor(rule_id)
                          for rule_id in rule_ids],
            },
        },
        "results": [_result(violation) for violation in violations],
    }
    return json.dumps({
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [run],
    }, indent=2)
