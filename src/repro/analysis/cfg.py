"""Intraprocedural control-flow graphs for the flow-aware lint rules.

:func:`build_cfg` lowers one ``def``/``async def`` body to a graph of
:class:`Block` records — straight-line runs of simple statements joined
by edges for ``if``/``while``/``for``/``try``/``match``/``break``/
``continue``/``return``/``raise``.  The graph is deliberately small and
conservative:

* Block *statements* are always leaf items: simple statements, branch
  conditions, loop iterables and loop targets.  Compound statements are
  never stored whole, so walking a block's statements never leaks into a
  nested body — a property the cycle rules (RPR010) depend on.
* Nested ``def``/``class`` statements become :class:`DefBinding`
  pseudo-statements: the binding executes here, the body does not.
* Exception edges are approximated: a ``try`` body may jump to each of
  its handlers from its entry and exit, and ``raise`` goes straight to
  the function exit.  This is sound for the may-analyses built on top
  (facts only ever *merge*), not a precise exception CFG.

Cycle detection (:meth:`CFG.cycles`) returns the non-trivial strongly
connected components, which is the granularity the governed-checkpoint
proof works at: a strided checkpoint under ``if not ticks & MASK:``
flows back into the loop and therefore *is* part of the component,
while a checkpoint on a ``break``/``return`` path leaves the component
and does not count.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

__all__ = ["Block", "CFG", "DefBinding", "build_cfg"]

#: Statement types handled by dedicated branches of the builder; every
#: other statement is appended to the current block verbatim.
_TRY_TYPES: tuple[type[ast.AST], ...] = (ast.Try,)
if hasattr(ast, "TryStar"):  # 3.11+
    _TRY_TYPES = (ast.Try, ast.TryStar)


class DefBinding(ast.AST):
    """Pseudo-statement: a nested ``def``/``class`` binding its name.

    Carries the bound ``name`` and the real ``node`` so rules can still
    reach the nested definition, without its body polluting walks over
    the enclosing block's statements.
    """

    _fields = ()

    def __init__(self, name: str, node: ast.stmt) -> None:
        super().__init__()
        self.name = name
        self.node = node
        self.lineno = node.lineno
        self.col_offset = node.col_offset


@dataclass
class Block:
    """One basic block: leaf statements plus successor edges."""

    id: int
    label: str = ""
    statements: list[ast.AST] = field(default_factory=list)
    successors: list[int] = field(default_factory=list)


class CFG:
    """A function's control-flow graph (see :func:`build_cfg`)."""

    def __init__(self) -> None:
        self.blocks: dict[int, Block] = {}
        self.entry = self._new("entry").id
        self.exit = self._new("exit").id

    def _new(self, label: str = "") -> Block:
        block = Block(id=len(self.blocks), label=label)
        self.blocks[block.id] = block
        return block

    def _edge(self, src: int, dst: int) -> None:
        successors = self.blocks[src].successors
        if dst not in successors:
            successors.append(dst)

    def predecessors(self) -> dict[int, list[int]]:
        """Map each block id to the ids of its predecessors."""
        preds: dict[int, list[int]] = {bid: [] for bid in self.blocks}
        for block in self.blocks.values():
            for succ in block.successors:
                preds[succ].append(block.id)
        return preds

    def statements(self, block_ids: Iterable[int]) -> Iterator[ast.AST]:
        """All leaf statements of the given blocks, in block order."""
        for bid in sorted(block_ids):
            yield from self.blocks[bid].statements

    def sccs(self) -> list[frozenset[int]]:
        """All strongly connected components (iterative Tarjan)."""
        index: dict[int, int] = {}
        lowlink: dict[int, int] = {}
        on_stack: set[int] = set()
        stack: list[int] = []
        out: list[frozenset[int]] = []
        counter = 0
        for root in self.blocks:
            if root in index:
                continue
            # (block, iterator over successors) work stack
            work: list[tuple[int, Iterator[int]]] = []
            index[root] = lowlink[root] = counter
            counter += 1
            stack.append(root)
            on_stack.add(root)
            work.append((root, iter(self.blocks[root].successors)))
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter
                        counter += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append(
                            (succ, iter(self.blocks[succ].successors)))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent],
                                          lowlink[node])
                if lowlink[node] == index[node]:
                    component: set[int] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    out.append(frozenset(component))
        return out

    def cycles(self) -> list[frozenset[int]]:
        """Non-trivial SCCs: every block that sits on some cycle."""
        out: list[frozenset[int]] = []
        for component in self.sccs():
            if len(component) > 1:
                out.append(component)
            else:
                (only,) = component
                if only in self.blocks[only].successors:
                    out.append(component)
        return out


class _Builder:
    """Recursive-descent statement lowering.

    The recursion over statement lists is bounded by the *syntactic
    nesting depth* of the source being analysed (a dozen levels in
    practice), never by data — which is why the RPR001 suppression
    below is sound.
    """

    def __init__(self) -> None:
        self.cfg = CFG()
        #: (loop head id, loop after id) stack for break/continue.
        self.loops: list[tuple[int, int]] = []

    def _append(self, block_id: int, item: ast.AST) -> None:
        self.cfg.blocks[block_id].statements.append(item)

    def _store_name(self, name: str, at: ast.AST) -> ast.Name:
        node = ast.Name(id=name, ctx=ast.Store())
        node.lineno = getattr(at, "lineno", 1)
        node.col_offset = getattr(at, "col_offset", 0)
        return node

    # Recursion bounded by source nesting depth, not data (see class
    # docstring) — an explicit stack would obscure the lowering.
    def _body(self, stmts: list[ast.stmt],  # repro-lint: disable=RPR001
              cur: int | None) -> int | None:
        for stmt in stmts:
            if cur is None:
                # Code after return/break/... — keep it in the graph as
                # an unreachable block so facts stay computable.
                cur = self.cfg._new("unreachable").id
            cur = self._stmt(stmt, cur)
        return cur

    def _stmt(self, stmt: ast.stmt,  # repro-lint: disable=RPR001
              cur: int) -> int | None:
        cfg = self.cfg
        if isinstance(stmt, ast.If):
            self._append(cur, stmt.test)
            then_start = cfg._new("then")
            cfg._edge(cur, then_start.id)
            then_end = self._body(stmt.body, then_start.id)
            if stmt.orelse:
                else_start = cfg._new("else")
                cfg._edge(cur, else_start.id)
                else_end = self._body(stmt.orelse, else_start.id)
            else:
                else_end = cur
            ends = [end for end in (then_end, else_end)
                    if end is not None]
            if not ends:
                return None
            join = cfg._new("join")
            for end in ends:
                cfg._edge(end, join.id)
            return join.id
        if isinstance(stmt, ast.While):
            head = cfg._new("loop-head")
            cfg._edge(cur, head.id)
            self._append(head.id, stmt.test)
            after = cfg._new("loop-after")
            always_true = isinstance(stmt.test, ast.Constant) \
                and bool(stmt.test.value)
            body_start = cfg._new("loop-body")
            cfg._edge(head.id, body_start.id)
            self.loops.append((head.id, after.id))
            body_end = self._body(stmt.body, body_start.id)
            self.loops.pop()
            if body_end is not None:
                cfg._edge(body_end, head.id)
            if stmt.orelse:
                else_start = cfg._new("loop-else")
                if not always_true:
                    cfg._edge(head.id, else_start.id)
                else_end = self._body(stmt.orelse, else_start.id)
                if else_end is not None:
                    cfg._edge(else_end, after.id)
            elif not always_true:
                cfg._edge(head.id, after.id)
            return after.id
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._append(cur, stmt.iter)
            head = cfg._new("loop-head")
            cfg._edge(cur, head.id)
            self._append(head.id, stmt.target)
            after = cfg._new("loop-after")
            body_start = cfg._new("loop-body")
            cfg._edge(head.id, body_start.id)
            self.loops.append((head.id, after.id))
            body_end = self._body(stmt.body, body_start.id)
            self.loops.pop()
            if body_end is not None:
                cfg._edge(body_end, head.id)
            if stmt.orelse:
                else_start = cfg._new("loop-else")
                cfg._edge(head.id, else_start.id)
                else_end = self._body(stmt.orelse, else_start.id)
                if else_end is not None:
                    cfg._edge(else_end, after.id)
            else:
                cfg._edge(head.id, after.id)
            return after.id
        if isinstance(stmt, _TRY_TYPES):
            return self._try(stmt, cur)  # type: ignore[arg-type]
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._append(cur, item.context_expr)
                if item.optional_vars is not None:
                    self._append(cur, item.optional_vars)
            return self._body(stmt.body, cur)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, cur)
        if isinstance(stmt, (ast.Break, ast.Continue)):
            self._append(cur, stmt)
            if self.loops:
                head, after = self.loops[-1]
                cfg._edge(cur,
                          after if isinstance(stmt, ast.Break) else head)
            return None
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._append(cur, stmt)
            cfg._edge(cur, cfg.exit)
            return None
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            self._append(cur, DefBinding(stmt.name, stmt))
            return cur
        self._append(cur, stmt)
        return cur

    def _try(self, stmt: ast.Try,  # repro-lint: disable=RPR001
             cur: int) -> int | None:
        cfg = self.cfg
        body_start = cfg._new("try")
        cfg._edge(cur, body_start.id)
        handler_blocks: list[Block] = []
        for _handler in stmt.handlers:
            handler_blocks.append(cfg._new("except"))
        for handler_block in handler_blocks:
            cfg._edge(body_start.id, handler_block.id)
        body_end = self._body(stmt.body, body_start.id)
        if body_end is not None and body_end != body_start.id:
            for handler_block in handler_blocks:
                cfg._edge(body_end, handler_block.id)
        ends: list[int | None] = []
        if stmt.orelse:
            if body_end is not None:
                else_start = cfg._new("try-else")
                cfg._edge(body_end, else_start.id)
                ends.append(self._body(stmt.orelse, else_start.id))
        else:
            ends.append(body_end)
        for handler, handler_block in zip(stmt.handlers, handler_blocks):
            if handler.type is not None:
                self._append(handler_block.id, handler.type)
            if handler.name:
                self._append(handler_block.id,
                             self._store_name(handler.name, handler))
            ends.append(self._body(handler.body, handler_block.id))
        live = [end for end in ends if end is not None]
        if stmt.finalbody:
            final_start = cfg._new("finally")
            for end in live:
                cfg._edge(end, final_start.id)
            if not live or not handler_blocks:
                # The finally clause also runs on the exceptional exit.
                cfg._edge(body_start.id, final_start.id)
            return self._body(stmt.finalbody, final_start.id)
        if not live:
            return None
        join = cfg._new("join")
        for end in live:
            cfg._edge(end, join.id)
        return join.id

    def _match(self, stmt: ast.Match,  # repro-lint: disable=RPR001
               cur: int) -> int | None:
        cfg = self.cfg
        self._append(cur, stmt.subject)
        join = cfg._new("join")
        for case in stmt.cases:
            case_block = cfg._new("case")
            cfg._edge(cur, case_block.id)
            self._append(case_block.id, case.pattern)
            if case.guard is not None:
                self._append(case_block.id, case.guard)
            case_end = self._body(case.body, case_block.id)
            if case_end is not None:
                cfg._edge(case_end, join.id)
        # Over-approximate: no case may match.
        cfg._edge(cur, join.id)
        return join.id


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the control-flow graph of one function body.

    Nested function/class bodies are *not* lowered — they appear as
    :class:`DefBinding` pseudo-statements; build their CFGs separately.
    """
    builder = _Builder()
    end = builder._body(func.body, builder.cfg.entry)
    if end is not None:
        builder.cfg._edge(end, builder.cfg.exit)
    return builder.cfg
