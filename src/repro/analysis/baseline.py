"""The committed lint baseline: accepted findings that do not gate CI.

The workflow mirrors ruff's ``--add-noqa`` / ESLint's bulk-suppression
files, tuned for landing *new* rules on an existing tree:

1. a new (typically warning-severity) rule lands together with
   ``repro lint --write-baseline`` output committed as
   ``.repro-lint-baseline.json``;
2. CI runs ``repro lint --strict --baseline .repro-lint-baseline.json``
   — baselined findings are filtered out before the exit-code gate, so
   only *new* findings fail the build;
3. debt is paid down by fixing a finding and deleting its entry (or
   re-running ``--write-baseline``); the file shrinks monotonically.

Entries are keyed by the :class:`~repro.analysis.lint.Violation`
fingerprint — rule id + trailing path + source-line *text* + occurrence
index — so unrelated edits that shift line numbers do not churn the
baseline, while editing the flagged line itself (presumably fixing it)
invalidates the entry.
"""

from __future__ import annotations

import json
from pathlib import Path

from .lint import Violation

__all__ = [
    "BASELINE_SCHEMA", "DEFAULT_BASELINE", "load_baseline",
    "write_baseline", "apply_baseline",
]

BASELINE_SCHEMA = 1

#: Conventional baseline location at the repository root.
DEFAULT_BASELINE = ".repro-lint-baseline.json"


def load_baseline(path: str | Path) -> dict[str, dict[str, object]]:
    """Load baseline entries (fingerprint -> metadata).

    A missing file is an empty baseline; a malformed one raises
    ``ValueError`` (a silently ignored baseline would un-gate CI).
    """
    file = Path(path)
    if not file.exists():
        return {}
    try:
        document = json.loads(file.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"malformed baseline {file}: {exc}") from exc
    if not isinstance(document, dict) \
            or document.get("schema") != BASELINE_SCHEMA \
            or not isinstance(document.get("entries"), dict):
        raise ValueError(
            f"malformed baseline {file}: expected "
            f"{{'schema': {BASELINE_SCHEMA}, 'entries': {{...}}}}")
    return dict(document["entries"])


def write_baseline(path: str | Path,
                   violations: list[Violation]) -> int:
    """Write every finding as an accepted baseline entry.

    Returns the number of entries written.  Entry metadata (rule,
    path, line, message) is for human review only; matching uses the
    fingerprint key alone.
    """
    entries = {
        violation.fingerprint: {
            "rule": violation.rule,
            "severity": violation.severity,
            "path": violation.path,
            "line": violation.line,
            "message": violation.message,
        }
        for violation in violations if violation.fingerprint
    }
    document = {"schema": BASELINE_SCHEMA,
                "entries": dict(sorted(entries.items()))}
    Path(path).write_text(json.dumps(document, indent=2) + "\n",
                          encoding="utf-8")
    return len(entries)


def apply_baseline(violations: list[Violation],
                   entries: dict[str, dict[str, object]]
                   ) -> tuple[list[Violation], int]:
    """Split findings into (new, number baselined)."""
    if not entries:
        return list(violations), 0
    fresh = [violation for violation in violations
             if violation.fingerprint not in entries]
    return fresh, len(violations) - len(fresh)
