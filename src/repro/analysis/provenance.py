"""Value provenance for lint rules: which names hold BDD runtime objects.

The concurrency rules need to know, inside one function, which local
names (probably) hold a ``Manager``, a ``Function``, a node store, a
serve ``Session`` or a sync ``Client`` — because those objects carry
thread-affinity and picklability constraints the rules enforce.

:class:`ScopeProvenance` is a deliberately simple, source-order-free
tripwire in the style of the RPR004 tracker: it scans a scope once,
records the *last* classification it can justify for each name, and
answers ``kind(name)`` queries.  Sources of provenance:

* parameter / variable annotations (``m: Manager``, ``fn: Function``),
* constructor calls (``Manager(...)``, ``Session(...)``, ``Client(...)``,
  ``create_store(...)``),
* well-known derivations (``session.manager``, ``manager.store``,
  Function-returning ``Manager`` methods like ``apply``/``ite``),
* straight aliasing (``m2 = m``),
* iteration/pop over containers whose name mentions ``session`` —
  the serve daemon's ``self._sessions`` registry idiom.

:func:`nested_captures` reports provenance-classified names that are
*captured* by functions nested inside a scope (closures), which is how
the fork-capture rule sees a ``Manager`` smuggled into a worker lambda.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

__all__ = [
    "MANAGER", "FUNCTION", "SESSION", "CLIENT", "STORE",
    "ScopeProvenance", "nested_captures",
]

#: Provenance kinds.
MANAGER = "manager"
FUNCTION = "function"
SESSION = "session"
CLIENT = "client"
STORE = "store"

#: Constructor name -> kind of the constructed value.
_CONSTRUCTORS = {
    "Manager": MANAGER,
    "Function": FUNCTION,
    "Session": SESSION,
    "Client": CLIENT,
    "create_store": STORE,
    "ObjectStore": STORE,
    "ArrayStore": STORE,
}

#: Annotation name -> kind of the annotated value.
_ANNOTATIONS = {
    "Manager": MANAGER,
    "Function": FUNCTION,
    "Session": SESSION,
    "Client": CLIENT,
    "NodeStore": STORE,
    "ObjectStore": STORE,
    "ArrayStore": STORE,
}

#: Manager methods whose result is a Function handle.
_FUNCTION_METHODS = frozenset({
    "var", "add_var", "true", "false", "apply", "ite", "mk_func",
})

#: Canonical parameter names -> kind, the unannotated fallback (the
#: repository consistently calls its managers ``manager``/``m`` is too
#: short to trust; only the unambiguous full words are classified).
_CANONICAL_PARAMS = {
    "manager": MANAGER,
    "session": SESSION,
    "client": CLIENT,
    "store": STORE,
}


def _annotation_kind(annotation: ast.expr | None) -> str | None:
    """Classify an annotation expression, unwrapping Optional/unions."""
    if annotation is None:
        return None
    for node in ast.walk(annotation):
        name: str | None = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Constant) \
                and isinstance(node.value, str):
            name = node.value.strip("'\"")
        if name is not None and name in _ANNOTATIONS:
            return _ANNOTATIONS[name]
    return None


def _callee_name(call: ast.Call) -> str | None:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _mentions_session(expr: ast.expr) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and "session" in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) \
                and "session" in node.attr.lower():
            return True
    return False


class ScopeProvenance:
    """Name -> kind classification for one function (or module) scope."""

    def __init__(self) -> None:
        self.kinds: dict[str, str] = {}

    def kind(self, name: str) -> str | None:
        return self.kinds.get(name)

    def names(self, *kinds: str) -> set[str]:
        wanted = set(kinds)
        return {name for name, kind in self.kinds.items()
                if kind in wanted}

    def _classify_value(self, value: ast.expr) -> str | None:
        if isinstance(value, ast.Name):
            return self.kinds.get(value.id)
        if isinstance(value, ast.Attribute):
            if value.attr == "manager":
                return MANAGER
            if value.attr in ("store", "_store") \
                    and isinstance(value.value, ast.Name) \
                    and self.kinds.get(value.value.id) == MANAGER:
                return STORE
            return None
        if isinstance(value, ast.Call):
            name = _callee_name(value)
            if name in _CONSTRUCTORS:
                return _CONSTRUCTORS[name]
            func = value.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in _FUNCTION_METHODS \
                    and isinstance(func.value, ast.Name) \
                    and self.kinds.get(func.value.id) == MANAGER:
                return FUNCTION
            if isinstance(func, ast.Attribute) and func.attr == "pop" \
                    and _mentions_session(func.value):
                return SESSION
        return None

    def _bind(self, target: ast.expr, kind: str | None) -> None:
        if not isinstance(target, ast.Name):
            return
        if kind is None:
            # A reassignment from an unclassified value clears any
            # previous provenance — last binding wins.
            self.kinds.pop(target.id, None)
        else:
            self.kinds[target.id] = kind

    @classmethod
    def scan(cls, scope: ast.AST) -> "ScopeProvenance":
        """Scan one scope (typically a function node) for provenance.

        Nested function bodies are included in the walk: closures share
        the enclosing names, and the tracker is a tripwire rather than
        a scoping-correct type system.
        """
        self = cls()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                kind = _annotation_kind(arg.annotation)
                if kind is None:
                    # Unannotated fallback: the repository's canonical
                    # parameter names carry their kind.
                    kind = _CANONICAL_PARAMS.get(arg.arg)
                if kind is not None:
                    self.kinds[arg.arg] = kind
        # Two passes so a use-before-def ordering in ast.walk (which is
        # breadth-first, not source order) still converges on simple
        # chains like ``m = Manager(); f = m.var("a")``.
        for _ in range(2):
            for node in ast.walk(scope):
                if isinstance(node, ast.Assign):
                    kind = self._classify_value(node.value)
                    for target in node.targets:
                        self._bind(target, kind)
                elif isinstance(node, ast.AnnAssign):
                    kind = _annotation_kind(node.annotation) \
                        or (self._classify_value(node.value)
                            if node.value is not None else None)
                    self._bind(node.target, kind)
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    if _mentions_session(node.iter):
                        self._bind(node.target, SESSION)
        return self


def _local_bindings(func: ast.AST) -> set[str]:
    """Names bound inside a nested function (params + assignments)."""
    bound: set[str] = set()
    if isinstance(func, ast.Lambda):
        args = func.args
        bound.update(arg.arg for arg in
                     args.posonlyargs + args.args + args.kwonlyargs)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
        return bound
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = func.args
        bound.update(arg.arg for arg in
                     args.posonlyargs + args.args + args.kwonlyargs)
        if args.vararg:
            bound.add(args.vararg.arg)
        if args.kwarg:
            bound.add(args.kwarg.arg)
        for node in ast.walk(func):
            if isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Store):
                bound.add(node.id)
    return bound


def _nested_functions(scope: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(scope):
        if node is scope:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            yield node


def nested_captures(scope: ast.AST,
                    prov: ScopeProvenance) -> dict[str, str]:
    """Provenance-classified names captured by closures nested in scope.

    Returns ``{name: kind}`` for every name that (a) has a provenance
    kind in the enclosing scope and (b) is read inside a nested
    function/lambda without being bound there — i.e. a closure capture
    of a Manager/Function/store/session object.
    """
    captured: dict[str, str] = {}
    for nested in _nested_functions(scope):
        bound = _local_bindings(nested)
        for node in ast.walk(nested):
            if isinstance(node, ast.Name) \
                    and isinstance(node.ctx, ast.Load) \
                    and node.id not in bound:
                kind = prov.kind(node.id)
                if kind is not None:
                    captured[node.id] = kind
    return captured
