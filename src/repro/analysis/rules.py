"""The BDD-specific lint rules (RPR001..RPR006).

Each rule guards a structural convention the algorithms rely on:

RPR001
    Kernel modules must not use Python recursion — direct or mutual —
    so every traversal works on 10k-level chain BDDs at CPython's
    default recursion limit (the PR-2 explicit-stack rewrite).  Detected
    by per-module call-graph cycle search.  Recursion elsewhere is
    reported as a warning: it does not gate CI but marks depth-unsafe
    helpers.
RPR002
    ``Node`` objects may only be constructed by the unique table
    (the node-store modules ``backend.py``/``node.py``, plus
    ``manager.py``).  A node built anywhere else bypasses hash-consing
    and breaks canonicity — the silent-wrong-results failure mode the
    sanitizer exists for.  The same applies to the node-store backends
    themselves: ``ObjectStore``/``ArrayStore`` must be created through
    :func:`repro.bdd.backend.create_store` (or ``Manager(backend=...)``)
    so the registry stays the single construction point.
RPR003
    Computed-table inserts/lookups must use a registered op tag
    (:data:`repro.bdd.computed.REGISTERED_OPS`), keeping per-op cache
    statistics meaningful and collisions diagnosable.
RPR004
    Raw nodes of one manager must never reach another manager's
    operations; cross-manager copies go through ``repro.bdd.io.
    transfer``.  Detected by intra-function provenance tracking.
RPR005
    Approximator entry points registered with ``register_approximator``
    keep the registry's uniform shape: one positional Function, all
    knobs keyword-only with defaults.
RPR006
    Hot loops in governed kernel modules must tick the resource
    governor's strided checkpoint
    (:meth:`repro.bdd.governor.Governor.checkpoint`), so node/step
    budgets and deadlines can abort any kernel — a loop without a
    checkpoint is unabortable and silently escapes the budget contract.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import PurePath

from ..bdd.computed import REGISTERED_OPS
from .lint import FileContext, Violation, register_rule

#: Modules under the no-recursion contract (PR 2): the BDD kernels and
#: the approximation/decomposition rebuild passes.
KERNEL_MODULE_SUFFIXES = (
    "repro/bdd/operations.py",
    "repro/bdd/quantify.py",
    "repro/bdd/restrict.py",
    "repro/bdd/io.py",
    "repro/bdd/traversal.py",
    "repro/core/approx/remap.py",
    "repro/core/approx/short_paths.py",
    "repro/core/approx/heavy_branch.py",
    "repro/core/approx/under_approx.py",
    "repro/core/approx/minimize.py",
    "repro/core/approx/compound.py",
    "repro/core/approx/info.py",
    "repro/core/decomp/general.py",
    "repro/core/decomp/cofactor.py",
    "repro/core/decomp/mcmillan.py",
    "repro/core/decomp/points.py",
)

#: Modules allowed to construct Node objects directly: the unique table
#: implementations and the node definition.
NODE_FACTORY_SUFFIXES = (
    "repro/bdd/manager.py",
    "repro/bdd/node.py",
    "repro/bdd/backend.py",
    "repro/bdd/arraystore.py",
)

#: Node-store classes that must only be constructed by the backend
#: registry (:func:`repro.bdd.backend.create_store`); a store built
#: anywhere else escapes backend selection and the Manager's
#: bookkeeping.
STORE_CLASS_NAMES = ("ObjectStore", "ArrayStore")


def _path_matches(path: str, suffixes: tuple[str, ...]) -> bool:
    posix = PurePath(path).as_posix()
    return any(posix.endswith(suffix) for suffix in suffixes)


def is_kernel_module(ctx: FileContext) -> bool:
    """Kernel modules by path — or by an explicit ``kernel`` pragma.

    The pragma (``# repro-lint: kernel`` on any line) lets the rule test
    corpus exercise kernel-severity behaviour from fixture files that do
    not live under ``src/repro``.
    """
    if _path_matches(ctx.path, KERNEL_MODULE_SUFFIXES):
        return True
    return any("# repro-lint: kernel" in line
               for line in ctx.source.splitlines()[:10])


# ----------------------------------------------------------------------
# RPR001 — no recursion in kernel modules
# ----------------------------------------------------------------------

class _FunctionInfo:
    __slots__ = ("qualname", "node", "classname", "enclosing")

    def __init__(self, qualname: str, node: ast.AST,
                 classname: str | None, enclosing: str) -> None:
        self.qualname = qualname
        self.node = node
        self.classname = classname
        self.enclosing = enclosing  # qualname prefix ("" at module level)


def _collect_functions(tree: ast.Module) -> list[_FunctionInfo]:
    out: list[_FunctionInfo] = []
    stack: list[tuple[list[ast.stmt], str, str | None]] = \
        [(tree.body, "", None)]
    while stack:
        body, prefix, classname = stack.pop()
        for node in body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                out.append(_FunctionInfo(prefix + node.name, node,
                                         classname, prefix))
                stack.append((node.body, prefix + node.name + ".",
                              classname))
            elif isinstance(node, ast.ClassDef):
                stack.append((node.body, prefix + node.name + ".",
                              prefix + node.name))
    return out


def _call_edges(functions: list[_FunctionInfo]
                ) -> dict[str, set[str]]:
    """Call graph over qualified names, resolved conservatively.

    A ``name(...)`` call matches module-level functions and functions
    nested inside the caller's own enclosing chain (closures); a
    ``self.name(...)`` call matches methods of the caller's class.
    Attribute calls on anything other than ``self`` are *not* matched —
    they overwhelmingly target other objects, and matching them drowns
    the signal in false positives.
    """
    by_name: dict[str, list[_FunctionInfo]] = {}
    for info in functions:
        by_name.setdefault(info.qualname.rsplit(".", 1)[-1],
                           []).append(info)
    edges: dict[str, set[str]] = {info.qualname: set()
                                  for info in functions}
    for info in functions:
        caller_scope = info.qualname + "."
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                for target in by_name.get(func.id, ()):
                    # A bare name can never denote a method (those are
                    # only reachable through an instance), so skip
                    # direct class members.
                    is_method = target.classname is not None \
                        and target.enclosing == target.classname + "."
                    visible = not is_method and (
                        (target.enclosing == ""
                         and target.classname is None)
                        or caller_scope.startswith(target.enclosing))
                    if visible:
                        edges[info.qualname].add(target.qualname)
            elif isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id == "self" \
                    and info.classname is not None:
                for target in by_name.get(func.attr, ()):
                    if target.classname == info.classname \
                            and "." not in target.qualname[
                                len(target.enclosing):]:
                        edges[info.qualname].add(target.qualname)
    return edges


def _on_cycle(edges: dict[str, set[str]]) -> dict[str, set[str]]:
    """Map each function on a call cycle to its cycle members.

    A function is on a cycle iff it can reach itself through at least
    one call edge; its cycle members are the functions that both reach
    it and are reached by it (its strongly connected component).
    """
    reach: dict[str, set[str]] = {}
    for start in edges:
        seen: set[str] = set()
        stack = list(edges[start])
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(edges.get(current, ()))
        reach[start] = seen
    return {start: {other for other in reach[start]
                    if start in reach.get(other, ())}
            for start in edges if start in reach[start]}


@register_rule(
    "RPR001", "no-kernel-recursion", "error",
    "Python recursion (direct or mutual) in a BDD kernel module; "
    "kernels must use explicit stacks so deep chain BDDs work at the "
    "default recursion limit.")
def check_no_kernel_recursion(ctx: FileContext) -> Iterator[Violation]:
    functions = _collect_functions(ctx.tree)
    if not functions:
        return
    cycles = _on_cycle(_call_edges(functions))
    if not cycles:
        return
    kernel = is_kernel_module(ctx)
    severity = "error" if kernel else "warning"
    infos = {info.qualname: info for info in functions}
    for qualname in sorted(cycles):
        members = sorted(set(cycles[qualname]) | {qualname})
        where = "kernel module" if kernel else "module"
        yield ctx.violation(
            "RPR001", infos[qualname].node,
            f"recursive call cycle in {where}: "
            f"{' -> '.join(members)} (rewrite with an explicit stack)",
            severity=severity)


# ----------------------------------------------------------------------
# RPR002 — Node construction only through the unique table
# ----------------------------------------------------------------------

@register_rule(
    "RPR002", "no-direct-node-construction", "error",
    "Direct Node(...) construction outside the node-store modules "
    "bypasses the unique table and breaks canonicity (use "
    "Manager.mk()); direct ObjectStore/ArrayStore construction "
    "bypasses the backend registry (use create_store()).")
def check_no_direct_node(ctx: FileContext) -> Iterator[Violation]:
    if _path_matches(ctx.path, NODE_FACTORY_SUFFIXES):
        return
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = func.id if isinstance(func, ast.Name) else \
            func.attr if isinstance(func, ast.Attribute) else None
        if name == "Node":
            yield ctx.violation(
                "RPR002", node,
                "direct Node construction bypasses the unique table; "
                "use Manager.mk(level, hi, lo)")
        elif name in STORE_CLASS_NAMES:
            yield ctx.violation(
                "RPR002", node,
                f"direct {name} construction bypasses the backend "
                f"registry; use repro.bdd.backend.create_store() or "
                f"Manager(backend=...)")


# ----------------------------------------------------------------------
# RPR003 — registered computed-table op tags
# ----------------------------------------------------------------------

def _is_computed_accessor(node: ast.expr) -> bool:
    """True for ``<expr>.computed.lookup`` / ``<expr>.computed.insert``
    and for ``self._computed.lookup`` style private aliases."""
    if not isinstance(node, ast.Attribute):
        return False
    if node.attr not in ("lookup", "insert"):
        return False
    value = node.value
    return isinstance(value, ast.Attribute) \
        and value.attr in ("computed", "_computed")


@register_rule(
    "RPR003", "registered-cache-op-tags", "error",
    "Computed-table lookup/insert with a literal op tag that is not in "
    "repro.bdd.computed.REGISTERED_OPS; register the tag so per-op "
    "cache statistics and the sanitizer recognise it.")
def check_registered_op_tags(ctx: FileContext) -> Iterator[Violation]:
    # Aliases like ``cache_get = manager.computed.lookup`` (the kernels'
    # hot-loop idiom) are resolved file-wide by simple name.
    aliases: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and _is_computed_accessor(node.value):
            aliases.add(node.targets[0].id)
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        func = node.func
        is_cache_call = _is_computed_accessor(func) \
            or (isinstance(func, ast.Name) and func.id in aliases)
        if not is_cache_call:
            continue
        tag = node.args[0]
        if isinstance(tag, ast.Constant) and isinstance(tag.value, str) \
                and tag.value not in REGISTERED_OPS:
            yield ctx.violation(
                "RPR003", tag,
                f"computed-table op tag {tag.value!r} is not "
                f"registered; add it via "
                f"repro.bdd.computed.register_op()")


# ----------------------------------------------------------------------
# RPR004 — no cross-manager node mixing
# ----------------------------------------------------------------------

def _walk_skipping_transfer(node: ast.AST) -> Iterator[ast.AST]:
    """ast.walk, but do not descend into transfer(...) calls."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, ast.Call):
            func = current.func
            name = func.id if isinstance(func, ast.Name) else \
                func.attr if isinstance(func, ast.Attribute) else None
            if name == "transfer":
                continue
        yield current
        stack.extend(ast.iter_child_nodes(current))


def _scopes(tree: ast.Module) -> Iterator[list[ast.AST]]:
    """Name-resolution scopes: the module body, then each top-level
    function (with its nested functions — closures share names)."""
    module_scope: list[ast.AST] = []
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield [node]
        elif isinstance(node, ast.ClassDef):
            for member in node.body:
                if isinstance(member,
                              (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield [member]
        else:
            module_scope.append(node)
    if module_scope:
        yield module_scope


def _manager_annotated_params(scope: list[ast.AST]) -> Iterator[str]:
    for root in scope:
        for node in ast.walk(root):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in (node.args.posonlyargs + node.args.args
                            + node.args.kwonlyargs):
                    annotation = arg.annotation
                    if isinstance(annotation, ast.Name) \
                            and annotation.id == "Manager":
                        yield arg.arg
                    elif isinstance(annotation, ast.Constant) \
                            and annotation.value == "Manager":
                        yield arg.arg


@register_rule(
    "RPR004", "no-cross-manager-mixing", "error",
    "A node or Function created under one manager is passed into a "
    "different manager's operation; copy it across with "
    "repro.bdd.io.transfer first.")
def check_cross_manager(ctx: FileContext) -> Iterator[Violation]:
    for scope in _scopes(ctx.tree):
        yield from _check_scope_cross_manager(ctx, scope)


def _scope_walk(scope: list[ast.AST]) -> Iterator[ast.AST]:
    for root in scope:
        yield from ast.walk(root)


def _check_scope_cross_manager(ctx: FileContext, scope: list[ast.AST]
                               ) -> Iterator[Violation]:
    # Per-scope provenance on simple names: which manager variable a
    # name was created from.  Intentionally simple — reassignments take
    # the last binding seen; the rule is a tripwire, not a type system.
    managers: set[str] = set(_manager_annotated_params(scope))
    home: dict[str, str] = {}
    for node in _scope_walk(scope):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        created_by: str | None = None
        if isinstance(value, ast.Call):
            func = value.func
            if (isinstance(func, ast.Name) and func.id == "Manager") or \
                    (isinstance(func, ast.Attribute)
                     and func.attr == "Manager"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        managers.add(target.id)
                continue
            if isinstance(func, ast.Attribute) \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in managers:
                created_by = func.value.id
            elif (isinstance(func, ast.Name) and func.id == "Function"
                  and value.args
                  and isinstance(value.args[0], ast.Name)
                  and value.args[0].id in managers):
                created_by = value.args[0].id
        elif isinstance(value, ast.Attribute) \
                and isinstance(value.value, ast.Name) \
                and value.value.id in managers:
            created_by = value.value.id  # e.g. f = m.true
        if created_by is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                home[target.id] = created_by
            elif isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    if isinstance(element, ast.Name):
                        home[element.id] = created_by

    def foreign_operands(args: list[ast.expr],
                         owner: str) -> Iterator[tuple[ast.AST, str]]:
        for arg in args:
            for sub in _walk_skipping_transfer(arg):
                if isinstance(sub, ast.Name) and sub.id in home \
                        and home[sub.id] != owner:
                    yield sub, sub.id

    for node in _scope_walk(scope):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        owner: str | None = None
        operands: list[ast.expr] = []
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id in managers:
            owner = func.value.id
            operands = list(node.args)
        elif node.args and isinstance(node.args[0], ast.Name) \
                and node.args[0].id in managers:
            name = func.id if isinstance(func, ast.Name) else \
                func.attr if isinstance(func, ast.Attribute) else ""
            if name != "transfer":
                owner = node.args[0].id
                operands = list(node.args[1:])
        if owner is None:
            continue
        for operand, var in foreign_operands(operands, owner):
            yield ctx.violation(
                "RPR004", operand,
                f"{var!r} belongs to manager {home[var]!r} but is "
                f"passed into an operation of manager {owner!r}; "
                f"copy it with io.transfer first")


# ----------------------------------------------------------------------
# RPR005 — uniform approximator signatures
# ----------------------------------------------------------------------

@register_rule(
    "RPR005", "approximator-signature", "error",
    "Approximator entry points must take exactly one positional "
    "Function and keyword-only knobs with defaults, so the registry "
    "can drive every method uniformly.")
def check_approximator_signature(ctx: FileContext) -> Iterator[Violation]:
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        registered = False
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                func = decorator.func
                name = func.id if isinstance(func, ast.Name) else \
                    func.attr if isinstance(func, ast.Attribute) else ""
                if name == "register_approximator":
                    registered = True
        if not registered:
            continue
        args = node.args
        positional = args.posonlyargs + args.args
        problems: list[str] = []
        if len(positional) != 1:
            problems.append(
                f"takes {len(positional)} positional parameters, "
                f"expected exactly 1 (the Function)")
        if args.defaults:
            problems.append("the positional Function parameter must "
                            "not have a default")
        if args.vararg is not None:
            problems.append("*args is not allowed")
        if args.kwarg is not None:
            problems.append("**kwargs is not allowed")
        for keyword, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is None:
                problems.append(f"keyword-only parameter "
                                f"{keyword.arg!r} needs a default")
        for problem in problems:
            yield ctx.violation(
                "RPR005", node,
                f"approximator {node.name!r}: {problem}")


# ----------------------------------------------------------------------
# RPR006 — governed kernel loops must tick the governor checkpoint
# ----------------------------------------------------------------------

#: Kernel modules under the abortability contract: every hot loop must
#: call the resource governor's strided checkpoint so budgets and
#: deadlines can stop it (the robustness-layer guarantee).  Narrower
#: than :data:`KERNEL_MODULE_SUFFIXES` — only the modules whose loops
#: can run unbounded work per call are governed.
GOVERNED_KERNEL_SUFFIXES = (
    "repro/bdd/operations.py",
    "repro/bdd/quantify.py",
    "repro/bdd/restrict.py",
    "repro/core/approx/remap.py",
)


def is_governed_module(ctx: FileContext) -> bool:
    """Governed kernels by path — or by a ``governed`` pragma.

    The pragma (``# repro-lint: governed`` in the first lines) lets the
    rule test corpus exercise the checkpoint requirement from fixture
    files outside ``src/repro``.
    """
    if _path_matches(ctx.path, GOVERNED_KERNEL_SUFFIXES):
        return True
    return any("# repro-lint: governed" in line
               for line in ctx.source.splitlines()[:10])


def _is_checkpoint_ref(node: ast.expr) -> bool:
    """True for ``<expr>.governor.checkpoint`` (and ``_governor``)."""
    return isinstance(node, ast.Attribute) \
        and node.attr == "checkpoint" \
        and isinstance(node.value, ast.Attribute) \
        and node.value.attr in ("governor", "_governor")


@register_rule(
    "RPR006", "kernel-loop-checkpoint", "error",
    "A while-loop in a governed kernel module never calls the resource "
    "governor's checkpoint, so node/step budgets and deadlines cannot "
    "abort it; tick Governor.checkpoint(op) on a stride inside the "
    "loop.")
def check_kernel_loop_checkpoint(ctx: FileContext) -> Iterator[Violation]:
    if not is_governed_module(ctx):
        return
    # Hot-loop aliases (``check = manager.governor.checkpoint``), the
    # kernels' idiom for keeping attribute lookups out of the loop.
    aliases: set[str] = set()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and _is_checkpoint_ref(node.value):
            aliases.add(node.targets[0].id)

    def ticks(loop: ast.While) -> bool:
        for sub in ast.walk(loop):
            if not isinstance(sub, ast.Call):
                continue
            func = sub.func
            if _is_checkpoint_ref(func):
                return True
            if isinstance(func, ast.Name) and func.id in aliases:
                return True
        return False

    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.While) and not ticks(node):
            yield ctx.violation(
                "RPR006", node,
                "kernel loop without a governor checkpoint; call "
                "manager.governor.checkpoint(op) on a stride so "
                "budgets can abort it (see repro.bdd.operations)")
