"""The flow-aware concurrency lint rules (RPR007..RPR011).

These rules guard the invariants of the three concurrency layers added
by the serve daemon, the fair executor and the persistent fork pool —
structure a purely syntactic scan cannot see, hence the CFG/dataflow
machinery of :mod:`repro.analysis.cfg` / :mod:`repro.analysis.dataflow`
and the provenance tracker of :mod:`repro.analysis.provenance`:

RPR007
    The serve event loop only parses and frames; every blocking call —
    kernel work on a Manager, ``time.sleep``, sync socket/file IO,
    thread joins, sync ``Client`` calls — must run on the fair
    executor's worker threads.  Detected in ``async def`` bodies *and*
    in sync helpers reachable from them via the module call graph.
RPR008
    A session's ``Manager``/handle table is serialized by the fair
    executor (one call per session at a time).  Touching
    ``session.manager`` (or calling ``session.execute``) anywhere else
    — stats snapshots on the event loop, module globals, thread
    targets — races the worker thread that owns it.
RPR009
    Payloads crossing the fork pool's pipes are pickled; a ``Task``
    payload capturing a Manager/Function/store/session, a lambda, or a
    nested closure breaks (or silently degrades) the worker protocol.
    Additionally, prewarmed worker state must not be mutated after
    ``gc.freeze()`` — mutation un-freezes pages and defeats
    copy-on-write sharing (proved per-path with forward dataflow).
RPR010
    The CFG upgrade of RPR006: every non-trivial cycle in a governed
    kernel function must contain a governor checkpoint call *inside
    the cycle's strongly connected component*.  A checkpoint on a
    ``break``/``return`` path leaves the component and does not count
    (the RPR006 false-negative class), ``for`` loops are covered
    (RPR006 only looked at ``while``), and cycles whose only calls are
    cheap container operations are proven safe without a pragma.
RPR011
    A ``store.mk(...)``/``incref(...)`` result must reach a root
    registration, a deref, or any other consuming use on *every* CFG
    path out of the function; a path that drops the handle leaks an
    unrooted node (forward may-analysis of pending handle names).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import PurePath

from .cfg import build_cfg
from .dataflow import Fact, ForwardAnalysis
from .lint import FileContext, Violation, register_rule
from .provenance import (CLIENT, FUNCTION, MANAGER, SESSION, STORE,
                         ScopeProvenance)
from .rules import (NODE_FACTORY_SUFFIXES, _call_edges,
                    _collect_functions, _is_checkpoint_ref,
                    _path_matches, is_governed_module)

#: Serve modules: everything under ``repro/serve/`` is written against
#: the event-loop discipline; the pragma lets the rule corpus exercise
#: it from fixture files.
_SERVE_FRAGMENT = "repro/serve/"


def is_serve_module(ctx: FileContext) -> bool:
    """Serve modules by path — or by a ``serve`` pragma."""
    if _SERVE_FRAGMENT in PurePath(ctx.path).as_posix():
        return True
    return any("# repro-lint: serve" in line
               for line in ctx.source.splitlines()[:10])


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's own code, not the bodies of nested defs."""
    stack: list[ast.AST] = [func]
    while stack:
        node = stack.pop()
        if node is not func and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef,
                       ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _callee_parts(call: ast.Call) -> tuple[str | None, str | None]:
    """``(receiver simple name, method/function name)`` of a call."""
    func = call.func
    if isinstance(func, ast.Name):
        return None, func.id
    if isinstance(func, ast.Attribute):
        receiver = func.value
        if isinstance(receiver, ast.Name):
            return receiver.id, func.attr
        return "", func.attr
    return None, None


# ----------------------------------------------------------------------
# RPR007 — no blocking calls on the serve event loop
# ----------------------------------------------------------------------

#: Bare-name calls that always block.
_BLOCKING_NAMES = frozenset({"open", "input"})

#: ``module.attr(...)`` calls that block, by module name.
_BLOCKING_MODULE_ATTRS: dict[str, frozenset[str]] = {
    "time": frozenset({"sleep"}),
    "socket": frozenset({"socket", "create_connection"}),
    "subprocess": frozenset({"run", "call", "check_call",
                             "check_output", "Popen"}),
    "os": frozenset({"system", "waitpid", "fork"}),
}

#: Method names that block regardless of receiver: thread/executor
#: teardown and sync socket IO.  ``close``/``drain`` are *not* here —
#: StreamWriter.close is non-blocking and drain is awaited.
_BLOCKING_METHODS = frozenset({
    "join", "shutdown", "recv", "sendall", "accept", "connect_ex",
})

#: Session methods that run kernel work inline when called directly.
_SESSION_KERNEL_METHODS = frozenset({"execute"})


def _sleep_import_names(tree: ast.Module) -> set[str]:
    """Names that ``from time import sleep [as x]`` binds to sleep."""
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "sleep":
                    names.add(alias.asname or alias.name)
    return names


def _awaited_call_ids(func: ast.AST) -> set[int]:
    return {id(node.value) for node in _own_nodes(func)
            if isinstance(node, ast.Await)
            and isinstance(node.value, ast.Call)}


def _blocking_reason(call: ast.Call, prov: ScopeProvenance,
                     sleep_names: set[str]) -> str | None:
    receiver, name = _callee_parts(call)
    if name is None:
        return None
    if receiver is None:  # bare name call
        if name in _BLOCKING_NAMES:
            return f"blocking builtin {name}()"
        if name in sleep_names:
            return "time.sleep()"
        return None
    module_attrs = _BLOCKING_MODULE_ATTRS.get(receiver)
    if module_attrs is not None and name in module_attrs:
        return f"{receiver}.{name}()"
    if name in _BLOCKING_METHODS:
        return f".{name}() blocks the calling thread"
    kind = prov.kind(receiver) if receiver else None
    if kind == MANAGER:
        return (f"kernel call {receiver}.{name}() on a session "
                f"manager")
    if kind == CLIENT:
        return f"sync Client call {receiver}.{name}()"
    if kind == SESSION and name in _SESSION_KERNEL_METHODS:
        return (f"{receiver}.{name}() runs kernel work inline; "
                f"submit it to the fair executor")
    return None


@register_rule(
    "RPR007", "no-blocking-in-event-loop", "error",
    "A blocking call (kernel work, time.sleep, sync socket/file IO, "
    "thread join/shutdown, sync Client call) runs on the serve event "
    "loop — directly in an async def or in a sync helper reachable "
    "from one; move it to the FairExecutor or asyncio.to_thread.")
def check_no_blocking_in_event_loop(ctx: FileContext
                                    ) -> Iterator[Violation]:
    if not is_serve_module(ctx):
        return
    functions = _collect_functions(ctx.tree)
    if not functions:
        return
    infos = {info.qualname: info for info in functions}
    async_quals = [info.qualname for info in functions
                   if isinstance(info.node, ast.AsyncFunctionDef)]
    if not async_quals:
        return
    edges = _call_edges(functions)
    # Sync functions reachable from async ones run on the event loop
    # too; calls *to* an async function just build a coroutine, so the
    # traversal never continues through an async callee.
    origin: dict[str, str] = {qual: qual for qual in async_quals}
    stack = list(async_quals)
    while stack:
        caller = stack.pop()
        for callee in edges.get(caller, ()):
            if callee in origin:
                continue
            if isinstance(infos[callee].node, ast.AsyncFunctionDef):
                continue
            origin[callee] = origin[caller]
            stack.append(callee)
    sleep_names = _sleep_import_names(ctx.tree)
    for qual in sorted(origin):
        info = infos[qual]
        prov = ScopeProvenance.scan(info.node)
        awaited = _awaited_call_ids(info.node)
        for node in _own_nodes(info.node):
            if not isinstance(node, ast.Call) or id(node) in awaited:
                continue
            reason = _blocking_reason(node, prov, sleep_names)
            if reason is None:
                continue
            where = "async " + qual if qual == origin[qual] else \
                f"{qual} (reachable from async {origin[qual]})"
            yield ctx.violation(
                "RPR007", node,
                f"blocking call on the event-loop path: {reason} "
                f"in {where}; run it on the FairExecutor or wrap it "
                f"in asyncio.to_thread")


# ----------------------------------------------------------------------
# RPR008 — sessions must not escape their executor serialization
# ----------------------------------------------------------------------

#: Session attributes owned by the worker-thread side: the manager and
#: the handle table.  ``session.id``/``session.requests``/``close()``
#: are loop-safe by design (plain-int/str reads, no kernel access).
_SESSION_OWNED_ATTRS = frozenset({"manager", "_functions", "_by_key"})


def _submit_argument_ids(func: ast.AST) -> set[int]:
    """ids of every node inside ``<x>.submit(...)`` arguments.

    Attribute references like ``session.execute`` passed *into* the
    fair executor are the sanctioned way to run session work.
    """
    exempt: set[int] = set()
    for node in _own_nodes(func):
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "submit":
            for arg in list(node.args) + [kw.value
                                          for kw in node.keywords]:
                exempt.update(id(sub) for sub in ast.walk(arg))
    return exempt


@register_rule(
    "RPR008", "session-escape", "error",
    "A session's Manager or handle table is touched outside the "
    "session's own methods and outside FairExecutor.submit(...) — "
    "that races the worker thread that owns the session; go through "
    "executor.submit or publish plain-value counters instead.")
def check_session_escape(ctx: FileContext) -> Iterator[Violation]:
    if not is_serve_module(ctx):
        return
    for info in _collect_functions(ctx.tree):
        if info.classname == "Session" \
                or info.qualname.startswith("Session."):
            continue  # the owner itself
        prov = ScopeProvenance.scan(info.node)
        sessions = prov.names(SESSION)
        if not sessions:
            continue
        exempt = _submit_argument_ids(info.node)
        declared_globals: set[str] = set()
        for node in _own_nodes(info.node):
            if isinstance(node, ast.Global):
                declared_globals.update(node.names)
        for node in _own_nodes(info.node):
            if isinstance(node, ast.Attribute) \
                    and node.attr in _SESSION_OWNED_ATTRS \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id in sessions \
                    and id(node) not in exempt:
                yield ctx.violation(
                    "RPR008", node,
                    f"session-owned state "
                    f"{node.value.id}.{node.attr} accessed outside "
                    f"the session's executor serialization; the "
                    f"worker thread owns it")
            elif isinstance(node, ast.Call):
                receiver, name = _callee_parts(node)
                if receiver in sessions \
                        and name in _SESSION_KERNEL_METHODS \
                        and id(node) not in exempt:
                    yield ctx.violation(
                        "RPR008", node,
                        f"{receiver}.{name}() called outside "
                        f"FairExecutor.submit; session verbs must be "
                        f"serialized through the executor")
                elif name == "Thread":
                    for arg in list(node.args) + \
                            [kw.value for kw in node.keywords]:
                        for sub in ast.walk(arg):
                            if isinstance(sub, ast.Name) \
                                    and sub.id in sessions:
                                yield ctx.violation(
                                    "RPR008", sub,
                                    f"session {sub.id!r} handed to a "
                                    f"Thread; sessions are owned by "
                                    f"the FairExecutor workers")
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) \
                            and target.id in declared_globals \
                            and isinstance(node.value, ast.Name) \
                            and node.value.id in sessions:
                        yield ctx.violation(
                            "RPR008", node,
                            f"session {node.value.id!r} published to "
                            f"module global {target.id!r}; sessions "
                            f"must stay private to their connection")


# ----------------------------------------------------------------------
# RPR009 — fork-pool capture and post-freeze mutation
# ----------------------------------------------------------------------

_UNPICKLABLE_KINDS = frozenset({MANAGER, FUNCTION, STORE, SESSION})

#: Mutating container/object methods (for the post-freeze check).
_MUTATOR_METHODS = frozenset({
    "append", "add", "update", "clear", "setdefault", "pop",
    "popitem", "extend", "remove", "discard", "insert",
})


def _module_globals(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) \
                and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _is_gc_freeze(call: ast.Call) -> bool:
    receiver, name = _callee_parts(call)
    return receiver == "gc" and name == "freeze"


def _payload_expr(call: ast.Call) -> ast.expr | None:
    """The payload argument of a ``Task(key, payload)`` call."""
    for keyword in call.keywords:
        if keyword.arg == "payload":
            return keyword.value
    if len(call.args) >= 2:
        return call.args[1]
    return None


def _capture_findings(payload: ast.expr, nested_defs: set[str],
                      prov: ScopeProvenance
                      ) -> Iterator[tuple[ast.AST, str]]:
    """Unpicklable things referenced *directly* in a payload expr.

    Anything nested inside a further call is the call's *input*, not
    necessarily part of the payload value (``payload=spec_of(manager)``
    is the sanctioned spec-conversion idiom), so only top-level
    references are flagged.
    """
    inside_calls: set[int] = set()
    for node in ast.walk(payload):
        if isinstance(node, ast.Call):
            for sub in ast.walk(node):
                if sub is not node:
                    inside_calls.add(id(sub))
    for node in ast.walk(payload):
        if id(node) in inside_calls:
            continue
        if isinstance(node, ast.Lambda):
            yield node, "a lambda (not picklable)"
        elif isinstance(node, ast.Name) \
                and isinstance(node.ctx, ast.Load):
            if node.id in nested_defs:
                yield node, (f"nested function {node.id!r} "
                             f"(not picklable)")
            elif prov.kind(node.id) in _UNPICKLABLE_KINDS:
                yield node, (f"{node.id!r} holds a "
                             f"{prov.kind(node.id)} (BDD runtime "
                             f"objects are not picklable)")


def _freeze_transfer(stmt: ast.AST, fact: Fact) -> Fact:
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call) and _is_gc_freeze(node):
            return fact | {"frozen"}
    return fact


def _frozen_mutation(stmt: ast.AST, module_globals: set[str],
                     declared_globals: set[str]
                     ) -> tuple[ast.AST, str] | None:
    if isinstance(stmt, (ast.Assign, ast.AugAssign)):
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        for target in targets:
            base = target
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                is_global_store = base.id in module_globals and (
                    base is not target or base.id in declared_globals)
                if is_global_store:
                    return stmt, base.id
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            receiver, name = _callee_parts(node)
            if receiver in module_globals \
                    and name in _MUTATOR_METHODS:
                return node, receiver
    return None


@register_rule(
    "RPR009", "fork-capture", "warning",
    "A WorkerPool task payload captures something the pipe cannot "
    "pickle (lambda, closure, Manager/Function/store/session), or "
    "prewarmed module state is mutated after gc.freeze() — both "
    "break the persistent fork-worker protocol.")
def check_fork_capture(ctx: FileContext) -> Iterator[Violation]:
    module_globals = _module_globals(ctx.tree)
    for info in _collect_functions(ctx.tree):
        nested_defs = {node.name for node in ast.walk(info.node)
                       if node is not info.node and isinstance(
                           node, (ast.FunctionDef,
                                  ast.AsyncFunctionDef))}
        prov = ScopeProvenance.scan(info.node)
        has_freeze = False
        for node in _own_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            if _is_gc_freeze(node):
                has_freeze = True
                continue
            _receiver, name = _callee_parts(node)
            if name == "Task":
                payload = _payload_expr(node)
                if payload is None:
                    continue
                for bad, why in _capture_findings(
                        payload, nested_defs, prov):
                    yield ctx.violation(
                        "RPR009", bad,
                        f"Task payload captures {why}; payloads cross "
                        f"the worker pipe pickled — ship a spec and "
                        f"rebuild in the worker")
            elif name in ("WorkerPool", "run_tasks") and node.args:
                worker = node.args[0]
                if isinstance(worker, ast.Lambda) or (
                        isinstance(worker, ast.Name)
                        and worker.id in nested_defs):
                    yield ctx.violation(
                        "RPR009", worker,
                        "worker callable must be an importable "
                        "module-level function; a lambda/closure "
                        "breaks under the spawn start method")
        # Closure captures of BDD objects into nested defs only matter
        # here when the function talks to the fork pool at all.
        if has_freeze:
            cfg = build_cfg(info.node)
            analysis = ForwardAnalysis(cfg, _freeze_transfer).run()
            declared: set[str] = set()
            for node in _own_nodes(info.node):
                if isinstance(node, ast.Global):
                    declared.update(node.names)
            for stmt, before, _after in analysis.statement_facts():
                if "frozen" not in before:
                    continue
                found = _frozen_mutation(stmt, module_globals,
                                         declared)
                if found is not None:
                    where, name = found
                    yield ctx.violation(
                        "RPR009", where,
                        f"prewarmed module state {name!r} mutated "
                        f"after gc.freeze(); mutation un-freezes "
                        f"pages and defeats copy-on-write sharing "
                        f"— mutate before freezing")


# ----------------------------------------------------------------------
# RPR010 — every governed cycle passes through a checkpoint (CFG proof)
# ----------------------------------------------------------------------

#: Container/O(1) operations that cannot run unbounded kernel work; a
#: cycle whose calls are all of this shape is provably cheap per
#: iteration and needs no checkpoint.
_TRIVIAL_ATTR_CALLS = frozenset({
    "pop", "popleft", "append", "appendleft", "add", "discard",
    "remove", "extend", "update", "get", "items", "keys", "values",
    "setdefault", "clear",
})
_TRIVIAL_NAME_CALLS = frozenset({
    "len", "min", "max", "abs", "id", "isinstance", "iter", "next",
    "range", "zip", "enumerate", "reversed", "sorted", "tuple",
    "list", "set", "dict", "frozenset", "bool", "int",
})


def _checkpoint_aliases(tree: ast.Module) -> set[str]:
    """``check = manager.governor.checkpoint`` hot-loop aliases."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and _is_checkpoint_ref(node.value):
            aliases.add(node.targets[0].id)
    return aliases


def _has_checkpoint(stmt: ast.AST, aliases: set[str]) -> bool:
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if _is_checkpoint_ref(func):
            return True
        if isinstance(func, ast.Name) and func.id in aliases:
            return True
    return False


def _nontrivial_calls(stmts: list[ast.AST]) -> list[ast.Call]:
    out: list[ast.Call] = []
    for stmt in stmts:
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) \
                    and func.attr in _TRIVIAL_ATTR_CALLS:
                continue
            if isinstance(func, ast.Name) \
                    and func.id in _TRIVIAL_NAME_CALLS:
                continue
            out.append(node)
    return out


def _cycle_location(stmts: list[ast.AST]) -> tuple[int, int]:
    located = [(stmt.lineno, stmt.col_offset) for stmt in stmts
               if hasattr(stmt, "lineno")]
    return min(located) if located else (1, 0)


@register_rule(
    "RPR010", "governed-cycle-checkpoint", "error",
    "A cycle in a governed kernel function never passes through a "
    "governor checkpoint (CFG strongly-connected-component proof): "
    "for-loops, and loops whose only checkpoint sits on a break/"
    "return path, can spin without budgets or deadlines being able "
    "to abort them.")
def check_governed_cycle_checkpoint(ctx: FileContext
                                    ) -> Iterator[Violation]:
    if not is_governed_module(ctx):
        return
    aliases = _checkpoint_aliases(ctx.tree)
    for info in _collect_functions(ctx.tree):
        cfg = build_cfg(info.node)
        for component in cfg.cycles():
            stmts = list(cfg.statements(component))
            if any(_has_checkpoint(stmt, aliases) for stmt in stmts):
                continue
            if not _nontrivial_calls(stmts):
                continue  # provably cheap per iteration
            line, col = _cycle_location(stmts)
            yield ctx.violation(
                "RPR010", (line, col),
                f"cycle in governed kernel {info.qualname!r} has no "
                f"governor checkpoint on its looping paths; tick "
                f"Governor.checkpoint(op) inside the cycle (a "
                f"checkpoint on a break/return path does not count)")


# ----------------------------------------------------------------------
# RPR011 — mk/incref results must be consumed on every path
# ----------------------------------------------------------------------

def _is_handle_source(value: ast.expr, aliases: set[str]) -> bool:
    """``<store>.mk(...)`` / ``<store>.incref(...)`` (or an alias)."""
    if not isinstance(value, ast.Call):
        return False
    func = value.func
    if isinstance(func, ast.Name):
        return func.id in aliases
    if not isinstance(func, ast.Attribute) \
            or func.attr not in ("mk", "incref"):
        return False
    for node in ast.walk(func.value):
        if isinstance(node, ast.Name) and "store" in node.id:
            return True
        if isinstance(node, ast.Attribute) and "store" in node.attr:
            return True
    return False


def _mk_aliases(tree: ast.Module) -> set[str]:
    """``mk = store.mk`` hot-loop aliases (kernel idiom)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Attribute) \
                and node.value.attr in ("mk", "incref"):
            receiver = node.value.value
            for sub in ast.walk(receiver):
                if (isinstance(sub, ast.Name)
                        and "store" in sub.id) or \
                        (isinstance(sub, ast.Attribute)
                         and "store" in sub.attr):
                    aliases.add(node.targets[0].id)
    return aliases


def is_refcounted_module(ctx: FileContext) -> bool:
    """Node-factory modules by path — or by a ``refs`` pragma."""
    if _path_matches(ctx.path, NODE_FACTORY_SUFFIXES):
        return True
    return any("# repro-lint: refs" in line
               for line in ctx.source.splitlines()[:10])


@register_rule(
    "RPR011", "ref-deref-pairing", "warning",
    "A store.mk()/incref() result is dropped on some control-flow "
    "path without reaching a root registration, a deref, or any "
    "consuming use — an unrooted node that silently leaks until the "
    "next GC sweep.")
def check_ref_deref_pairing(ctx: FileContext) -> Iterator[Violation]:
    if not is_refcounted_module(ctx):
        return
    aliases = _mk_aliases(ctx.tree)
    for info in _collect_functions(ctx.tree):
        gen_sites: dict[str, ast.AST] = {}

        def transfer(stmt: ast.AST, fact: Fact) -> Fact:
            if isinstance(stmt, ast.Raise):
                # Exception unwinding is not a leak path: the pending
                # node is reclaimed by the next GC like any garbage.
                return frozenset()
            loaded = {node.id for node in ast.walk(stmt)
                      if isinstance(node, ast.Name)
                      and isinstance(node.ctx, ast.Load)}
            fact = fact - loaded
            if isinstance(stmt, ast.Assign) \
                    and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                if _is_handle_source(stmt.value, aliases):
                    gen_sites.setdefault(name, stmt)
                    return fact | {name}
                return fact - {name}
            return fact

        cfg = build_cfg(info.node)
        analysis = ForwardAnalysis(cfg, transfer).run()
        pending: set[str] = set()
        for block in cfg.blocks.values():
            if cfg.exit in block.successors:
                pending |= analysis.fact_out(block.id)
        for name in sorted(pending):
            site = gen_sites.get(name)
            if site is None:
                continue
            yield ctx.violation(
                "RPR011", site,
                f"handle {name!r} from store.mk()/incref() can leave "
                f"{info.qualname!r} unused on some path; root it "
                f"(Function/table insert) or deref it on every path")
