"""Static analysis tooling: the BDD-aware lint engine.

``repro.analysis.lint`` is a small AST-based lint engine with a rule
registry, per-rule severities, ``# repro-lint: disable=RPRxxx``
suppression comments, and text/JSON reporting.  The rules in
``repro.analysis.rules`` encode the structural conventions every
algorithm in this repository depends on — no recursion in kernel
modules, all node construction through the unique table, registered
computed-table op tags, no cross-manager node mixing, uniform
approximator signatures.

The runtime counterpart is the graph sanitizer,
:meth:`repro.bdd.manager.Manager.debug_check` (see
:mod:`repro.bdd.sanitize`); ``docs/analysis.md`` documents both halves.
"""

from __future__ import annotations

from . import rules as _rules  # noqa: F401  (registers the RPR rules)
from .lint import (RULES, FileContext, Rule, Violation, exit_code,
                   lint_paths, lint_source, register_rule, render_json,
                   render_text)

__all__ = [
    "RULES",
    "Rule",
    "FileContext",
    "Violation",
    "register_rule",
    "lint_source",
    "lint_paths",
    "render_text",
    "render_json",
    "exit_code",
]
