"""Static analysis tooling: the BDD-aware lint engine.

``repro.analysis.lint`` is a small AST-based lint engine with a rule
registry, per-rule severities, ``# repro-lint: disable=RPRxxx``
suppression comments, and text/JSON/SARIF reporting.  The rules in
``repro.analysis.rules`` encode the structural conventions every
algorithm in this repository depends on — no recursion in kernel
modules, all node construction through the unique table, registered
computed-table op tags, no cross-manager node mixing, uniform
approximator signatures — and ``repro.analysis.rules_flow`` adds the
flow-aware concurrency rules (event-loop blocking, session escape,
fork capture, governed-cycle checkpoints, ref/deref pairing) built on
the intraprocedural CFG (``repro.analysis.cfg``), dataflow
(``repro.analysis.dataflow``) and provenance
(``repro.analysis.provenance``) layers.

Adoption machinery lives alongside: ``repro.analysis.sarif`` renders
findings in the GitHub code-scanning SARIF schema, and
``repro.analysis.baseline`` implements the committed-baseline workflow
(``.repro-lint-baseline.json``) that lets warning-severity rules land
without blocking CI.

The runtime counterpart is the graph sanitizer,
:meth:`repro.bdd.manager.Manager.debug_check` (see
:mod:`repro.bdd.sanitize`); ``docs/analysis.md`` documents both halves.
"""

from __future__ import annotations

from . import rules as _rules  # noqa: F401  (registers RPR001..006)
from . import rules_flow as _rules_flow  # noqa: F401  (RPR007..011)
from .baseline import (DEFAULT_BASELINE, apply_baseline, load_baseline,
                       write_baseline)
from .lint import (RULES, FileContext, Rule, Violation, exit_code,
                   lint_paths, lint_source, register_rule, render_json,
                   render_text)
from .sarif import render_sarif

__all__ = [
    "RULES",
    "Rule",
    "FileContext",
    "Violation",
    "register_rule",
    "lint_source",
    "lint_paths",
    "render_text",
    "render_json",
    "render_sarif",
    "DEFAULT_BASELINE",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "exit_code",
]
