"""The ``repro serve`` daemon: asyncio transport over the fair pool.

Layering (transport down to kernels)::

    asyncio event loop          one task per connection, NDJSON framing
      Server                    session registry, stats/health, errors
        FairExecutor            round-robin worker threads
          Session               per-client Manager + handle table
            Manager/kernels     the ordinary repro.bdd machinery

The event loop only parses and frames; every kernel call runs on a
:class:`~repro.serve.scheduler.FairExecutor` worker thread, one call
per session at a time, round-robin across sessions.  Exceptions map to
the structured error codes of :mod:`repro.serve.protocol` — a governor
abort (:class:`~repro.bdd.governor.ResourceError`) becomes a ``budget``
error response on a connection that *stays open*, which is the
degradation contract of ``docs/robustness.md`` extended to the wire.

The node-store backend is resolved **once**, at server construction
(``backend`` argument, else ``REPRO_BACKEND``, else the default), and
passed explicitly to every session manager — sessions must not
re-consult the environment at accept time, or a server started with
``--backend array`` could silently hand out object-backed managers
after an environment change (the PR 6 round-trip bug).
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections.abc import Callable
from typing import Any

from ..bdd.backend import create_store, resolve_backend
from ..bdd.governor import ResourceError
from ..bdd.sanitize import SanitizerError
from ..store.errors import StoreError
from .protocol import (E_BAD_REQUEST, E_BUDGET, E_INTERNAL,
                       E_OVERLOAD, E_SANITIZER, E_STORE, MAX_LINE,
                       PROTOCOL_VERSION, ProtocolError, decode_line,
                       encode_line, error_response, result_response)
from .scheduler import FairExecutor
from .session import Session, SessionConfig

__all__ = ["Server", "ServerThread", "serve_main"]


class _ServerStats:
    """Mutable server-wide counters (event-loop-thread only)."""

    def __init__(self) -> None:
        self.started = time.monotonic()
        self.sessions_opened = 0
        self.sessions_closed = 0
        self.sessions_rejected = 0
        self.requests = 0
        #: error responses sent, per protocol error code
        self.errors: dict[str, int] = {}
        #: requests dispatched, per verb
        self.verbs: dict[str, int] = {}
        #: governor counters accumulated from *closed* sessions
        self.closed_aborts = 0
        self.closed_degradations = 0

    def count_error(self, code: str) -> None:
        self.errors[code] = self.errors.get(code, 0) + 1

    def count_verb(self, verb: str) -> None:
        self.requests += 1
        self.verbs[verb] = self.verbs.get(verb, 0) + 1


class Server:
    """One ``repro serve`` daemon instance (see the module docstring).

    Parameters mirror the CLI flags: ``backend``/``cache_limit``/
    ``gc_threshold`` configure every session manager, ``node_budget``/
    ``step_budget``/``deadline`` are *per-request* budget defaults
    (each request's ``budget`` parameter overrides them), ``workers``
    sizes the fair executor, and ``max_sessions`` bounds concurrent
    connections (excess connects are refused with an ``overload``
    error).
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 backend: str | None = None,
                 cache_limit: int | None = None,
                 gc_threshold: int | None = None,
                 node_budget: int | None = None,
                 step_budget: int | None = None,
                 deadline: float | None = None,
                 workers: int = 1,
                 max_sessions: int = 64,
                 store: str | None = None,
                 snapshot: bool = False) -> None:
        self.host = host
        self.port = port
        #: resolved once; sessions never re-read the environment
        self.backend = resolve_backend(backend)
        # Fail fast on an unknown backend: sessions are created at
        # accept time, and a daemon that boots but rejects every
        # connection is strictly worse than one that refuses to start.
        create_store(self.backend)
        # Same fail-fast rule for the persistent store: opening it at
        # boot surfaces a corrupt index immediately instead of on the
        # first save/load request.  The entry count is recorded here —
        # _health() must not run sqlite queries on the event loop.
        self.store = None
        self.store_entries_at_boot = 0
        if store is not None:
            from ..store.store import BDDStore
            self.store = BDDStore(store)
            self.store_entries_at_boot = len(self.store)
        if snapshot and self.store is None:
            raise ValueError("snapshot requires a store directory")
        self.snapshot = snapshot
        self.session_config = SessionConfig(
            backend=self.backend, cache_limit=cache_limit,
            gc_threshold=gc_threshold, node_budget=node_budget,
            step_budget=step_budget, deadline=deadline,
            store=self.store)
        self.workers = workers
        self.max_sessions = max_sessions
        self.stats = _ServerStats()
        self._sessions: dict[str, Session] = {}
        self._session_ids = itertools.count(1)
        self._executor: FairExecutor | None = None
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket and start the worker pool."""
        self._executor = FairExecutor(workers=self.workers)
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, limit=MAX_LINE)
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def aclose(self) -> None:
        """Stop accepting, drop sessions, stop the workers.

        With ``snapshot`` enabled, every live session's handles are
        persisted to the store first (on the fair executor — the
        manager is worker-thread-affine), so the next boot can serve
        them back through ``load`` without recomputation.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.snapshot and self.store is not None \
                and self._executor is not None:
            for session in list(self._sessions.values()):
                future = self._executor.submit(
                    session.id, session.snapshot_to, self.store)
                try:
                    await asyncio.wrap_future(future)
                except Exception:
                    # A failed snapshot (full disk, corrupt store)
                    # must never wedge shutdown; the store's atomic
                    # writes mean a partial snapshot is still a valid
                    # store, just with fewer entries.
                    pass
        for session_id in list(self._sessions):
            self._close_session(session_id)
        if self._executor is not None:
            # shutdown() joins worker threads — a blocking wait that
            # must not stall the event loop (RPR007), so hand it to the
            # default thread-pool executor.
            await asyncio.to_thread(self._executor.shutdown)

    @property
    def num_sessions(self) -> int:
        return len(self._sessions)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        if len(self._sessions) >= self.max_sessions:
            self.stats.sessions_rejected += 1
            writer.write(encode_line(error_response(
                None, E_OVERLOAD,
                f"server is at max_sessions={self.max_sessions}")))
            await _drain_and_close(writer)
            return
        session = Session(f"s{next(self._session_ids)}",
                          self.session_config)
        self._sessions[session.id] = session
        self.stats.sessions_opened += 1
        writer.write(encode_line({
            "serve": "repro", "protocol": PROTOCOL_VERSION,
            "session": session.id, "backend": self.backend}))
        try:
            await writer.drain()
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    # Oversized line: the stream is unframed beyond
                    # recovery, so answer once and hang up.
                    writer.write(encode_line(error_response(
                        None, E_BAD_REQUEST,
                        f"message exceeds {MAX_LINE} bytes")))
                    break
                if not line:
                    break
                response = await self._handle_request(session, line)
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._close_session(session.id)
            await _drain_and_close(writer)

    def _close_session(self, session_id: str) -> None:
        """Disconnect-time session GC (idempotent)."""
        session = self._sessions.pop(session_id, None)
        if session is None:
            return
        if self._executor is not None:
            self._executor.remove_session(session_id)
        aborts, degradations = session.close()
        self.stats.sessions_closed += 1
        self.stats.closed_aborts += aborts
        self.stats.closed_degradations += degradations

    # ------------------------------------------------------------------
    # Request dispatch
    # ------------------------------------------------------------------

    async def _handle_request(self, session: Session,
                              line: bytes) -> dict[str, Any]:
        request_id: Any = None
        try:
            message = decode_line(line)
            request_id = message.get("id")
            verb = message.get("verb")
            if not isinstance(verb, str) or not verb:
                raise ProtocolError(E_BAD_REQUEST,
                                    "request must name a verb")
            params = message.get("params", {})
            if not isinstance(params, dict):
                raise ProtocolError(E_BAD_REQUEST,
                                    "params must be an object")
            self.stats.count_verb(verb)
            if verb == "health":
                return result_response(request_id, self._health())
            result = await self._dispatch(session, verb, params)
            if verb == "stats":
                result = {"server": self._server_stats(),
                          "session": result}
            return result_response(request_id, result)
        except ProtocolError as exc:
            self.stats.count_error(exc.code)
            return error_response(request_id, exc.code, str(exc))
        except ResourceError as exc:
            # The paper's overload contract on the wire: the kernel
            # unwound cleanly, the session (and every handle) is still
            # usable, and re-sending the request retries it.
            self.stats.count_error(E_BUDGET)
            return error_response(request_id, E_BUDGET, str(exc),
                                  kind=type(exc).__name__)
        except SanitizerError as exc:
            self.stats.count_error(E_SANITIZER)
            return error_response(request_id, E_SANITIZER, str(exc),
                                  kind=type(exc).__name__)
        except StoreError as exc:
            # save/load failures are structured, not internal: the
            # session and its handles stay valid, and the kind field
            # distinguishes detected corruption (StoreCorruptError)
            # from misuse (unknown name, no store attached).
            self.stats.count_error(E_STORE)
            return error_response(request_id, E_STORE, str(exc),
                                  kind=type(exc).__name__)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self.stats.count_error(E_INTERNAL)
            return error_response(request_id, E_INTERNAL,
                                  f"{type(exc).__name__}: {exc}",
                                  kind=type(exc).__name__)

    async def _dispatch(self, session: Session, verb: str,
                        params: dict[str, Any]) -> dict[str, Any]:
        """Run a session verb on the fair executor and await it."""
        assert self._executor is not None, "start() first"
        future = self._executor.submit(session.id, session.execute,
                                       verb, params)
        return await asyncio.wrap_future(future)

    # ------------------------------------------------------------------
    # Server-level snapshots
    # ------------------------------------------------------------------

    def _health(self) -> dict[str, Any]:
        health = {"status": "ok",
                  "protocol": PROTOCOL_VERSION,
                  "backend": self.backend,
                  "sessions": self.num_sessions,
                  "workers": self.workers,
                  "uptime": time.monotonic() - self.stats.started}
        if self.store is not None:
            health["store"] = str(self.store.root)
            health["store_entries_at_boot"] = \
                self.store_entries_at_boot
        return health

    def _server_stats(self) -> dict[str, Any]:
        stats = self.stats
        # Aggregate governor counters over live sessions too, so the
        # snapshot reflects aborts/degradations of still-connected
        # clients (the CI artifact reads this).  Sessions *publish*
        # these as plain ints after every request precisely so this
        # event-loop read never touches a worker-owned manager
        # (RPR008: the manager is thread-affine to the fair executor).
        aborts = stats.closed_aborts
        degradations = stats.closed_degradations
        for session in list(self._sessions.values()):
            aborts += session.published_aborts
            degradations += session.published_degradations
        executor = self._executor
        return {"backend": self.backend,
                "uptime": time.monotonic() - stats.started,
                "sessions": {"open": self.num_sessions,
                             "opened": stats.sessions_opened,
                             "closed": stats.sessions_closed,
                             "rejected": stats.sessions_rejected,
                             "max": self.max_sessions},
                "requests": stats.requests,
                "verbs": dict(stats.verbs),
                "errors": dict(stats.errors),
                "aborts": aborts,
                "degradations": degradations,
                "scheduler": {
                    "workers": self.workers,
                    "dispatched": (executor.dispatched
                                   if executor else 0),
                    "pending": (executor.pending()
                                if executor else 0)}}


async def _drain_and_close(writer: asyncio.StreamWriter) -> None:
    try:
        await writer.drain()
    except (ConnectionError, asyncio.CancelledError):
        pass
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, asyncio.CancelledError):
        pass


# ----------------------------------------------------------------------
# Embedding helpers (tests, CLI)
# ----------------------------------------------------------------------

async def serve_main(server: Server, *,
                     ready: Callable[[str], object] = print) -> None:
    """Start ``server`` and run until cancelled (the CLI body)."""
    await server.start()
    ready(f"repro serve: listening on {server.host}:{server.port} "
          f"(backend={server.backend}, workers={server.workers}, "
          f"max_sessions={server.max_sessions})")
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()


class ServerThread:
    """A server running on a private event loop in a daemon thread.

    The in-process deployment used by the test suite (and usable as a
    library embedding): ``start()`` blocks until the port is bound,
    ``stop()`` tears the loop down.  Context-manager friendly::

        with ServerThread(backend="array") as handle:
            client = Client(port=handle.port)
    """

    def __init__(self, **server_kwargs: Any) -> None:
        self._kwargs = server_kwargs
        self.server: Server | None = None
        self.port: int | None = None
        self._thread = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._started = None
        self._error: BaseException | None = None

    def start(self) -> "ServerThread":
        import threading

        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-thread",
                                        daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=30.0):
            raise RuntimeError("server thread failed to start")
        if self._error is not None:
            raise RuntimeError(
                f"server failed to boot: {self._error!r}")
        return self

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - boot errors
            self._error = exc
        finally:
            assert self._started is not None
            self._started.set()

    async def _main(self) -> None:
        server = Server(**self._kwargs)
        await server.start()
        self.server = server
        self.port = server.port
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        assert self._started is not None
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await server.aclose()

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
