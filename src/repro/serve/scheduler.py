"""Fair round-robin executor for CPU-bound kernel calls.

The server's sessions submit kernel work (BDD operations on the
session's own manager) to one shared :class:`FairExecutor`.  Two
properties matter more than raw throughput:

* **Per-session serialization** — a manager is not thread-safe, so at
  most one call per session runs at any moment; calls of one session
  run in submission order.
* **Round-robin fairness across sessions** — the dispatcher cycles
  through sessions that have work, taking one call per turn.  A
  session that enqueues a burst of requests cannot starve the others:
  with one worker and sessions A (10 queued calls) and B (1), B's call
  runs second, not eleventh.

This is the serving analogue of the experiment engine's process pool
(:mod:`repro.harness.engine`): that one isolates faulty *batch* tasks,
this one multiplexes *interactive* sessions over a bounded number of
worker threads.  Kernel calls are pure Python and hold the GIL, so
threads add fairness and overlap with protocol I/O rather than true
parallelism — the unit of concurrency stays the server process
(scale-out runs several, as ``docs/serve.md`` describes).
"""

from __future__ import annotations

import threading
from collections import deque
from collections.abc import Callable
from concurrent.futures import Future
from typing import Any, Hashable

__all__ = ["FairExecutor"]


class FairExecutor:
    """Round-robin fair scheduler over a fixed pool of worker threads.

    ``submit(key, fn)`` enqueues ``fn`` under session ``key`` and
    returns a :class:`concurrent.futures.Future`.  Futures of a
    session removed with :meth:`remove_session` before dispatch are
    cancelled.
    """

    def __init__(self, workers: int = 1,
                 name: str = "repro-serve") -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        #: session key -> FIFO of (future, fn, args)
        self._queues: dict[Hashable, deque[tuple[
            "Future[Any]", Callable[..., Any], tuple[Any, ...]]]] = {}
        #: round-robin ring of known session keys
        self._ring: deque[Hashable] = deque()
        #: sessions with a call currently running on some worker
        self._running: set[Hashable] = set()
        self._closed = False
        #: calls completed (successfully or not) since creation —
        #: written by worker threads under the lock; read through the
        #: :attr:`dispatched` property only.
        self._dispatched = 0
        self.workers = workers
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"{name}-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Producer API (event loop side)
    # ------------------------------------------------------------------

    def submit(self, key: Hashable, fn: Callable[..., Any],
               *args: Any) -> "Future[Any]":
        """Enqueue ``fn(*args)`` under session ``key``."""
        future: Future[Any] = Future()
        with self._wake:
            if self._closed:
                raise RuntimeError("executor is shut down")
            queue = self._queues.get(key)
            if queue is None:
                queue = self._queues[key] = deque()
                self._ring.append(key)
            queue.append((future, fn, args))
            self._wake.notify()
        return future

    def remove_session(self, key: Hashable) -> int:
        """Forget ``key``: cancel queued calls, drop its ring slot.

        An in-flight call (already picked by a worker) finishes
        normally.  Returns the number of cancelled pending calls.
        """
        with self._wake:
            queue = self._queues.pop(key, None)
            try:
                self._ring.remove(key)
            except ValueError:
                pass
        cancelled = 0
        if queue:
            for future, _fn, _args in queue:
                if future.cancel():
                    cancelled += 1
        return cancelled

    @property
    def dispatched(self) -> int:
        """Calls completed since creation (lock-consistent snapshot)."""
        with self._lock:
            return self._dispatched

    def pending(self, key: Hashable | None = None) -> int:
        """Queued (not yet running) calls, for ``key`` or in total."""
        with self._lock:
            if key is not None:
                queue = self._queues.get(key)
                return len(queue) if queue else 0
            return sum(len(q) for q in self._queues.values())

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; cancel everything still queued."""
        with self._wake:
            if self._closed:
                return
            self._closed = True
            queues = list(self._queues.values())
            self._queues.clear()
            self._ring.clear()
            self._wake.notify_all()
        for queue in queues:
            for future, _fn, _args in queue:
                future.cancel()
        if wait:
            for thread in self._threads:
                thread.join(timeout=10.0)

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _next_call(self) -> tuple[
            Hashable, tuple["Future[Any]", Callable[..., Any],
                            tuple[Any, ...]]] | None:
        """Pick the next dispatchable call, rotating the ring.

        Caller holds the lock.  Skips sessions that are mid-call
        (serialization) or idle; the picked session's key moves to the
        back of the ring, which is what makes the schedule round-robin.
        """
        for _ in range(len(self._ring)):
            key = self._ring[0]
            self._ring.rotate(-1)
            if key in self._running:
                continue
            queue = self._queues.get(key)
            if not queue:
                continue
            self._running.add(key)
            return key, queue.popleft()
        return None

    def _worker_loop(self) -> None:
        while True:
            with self._wake:
                picked = None
                while not self._closed:
                    picked = self._next_call()
                    if picked is not None:
                        break
                    self._wake.wait()
                if picked is None:
                    return
            key, (future, fn, args) = picked
            if future.set_running_or_notify_cancel():
                try:
                    result = fn(*args)
                except BaseException as exc:
                    future.set_exception(exc)
                else:
                    future.set_result(result)
            with self._wake:
                self._running.discard(key)
                self._dispatched += 1
                # A queued call of this session (or of one skipped
                # while every candidate was running) may be ready now.
                self._wake.notify_all()
