"""The wire protocol of ``repro serve``: newline-delimited JSON.

One TCP connection is one *session*.  On accept the server sends a
greeting line, then the client sends one request per line and receives
exactly one response per request, in order::

    S> {"serve": "repro", "protocol": 1, "session": "s1",
        "backend": "object"}
    C> {"id": 1, "verb": "var", "params": {"name": "a"}}
    S> {"id": 1, "ok": true, "result": {"handle": "h1", ...}}
    C> {"id": 2, "verb": "apply",
        "params": {"op": "and", "f": "h1", "g": "h1"}}
    S> {"id": 2, "ok": true, "result": {"handle": "h1", ...}}

Every message is a single line of UTF-8 JSON terminated by ``\\n``
(:data:`MAX_LINE` bytes at most).  Requests carry:

``id``
    Echoed verbatim into the response; any JSON scalar.
``verb``
    The operation name (see ``docs/serve.md`` for the verb table).
``params``
    Verb arguments, an object (optional — defaults to ``{}``).  The
    reserved key ``budget`` — ``{"node": N, "step": N, "deadline": S}``
    — arms a per-request resource budget on the session's manager.

Responses are either results or *structured errors*::

    {"id": 1, "ok": false,
     "error": {"code": "budget", "kind": "BudgetExceeded",
               "message": "step budget 100 exceeded ..."}}

Error codes are the :data:`E_...` constants below.  A ``budget`` error
is a *normal* outcome: the kernels unwound cleanly, the session and all
its handles stay valid, and the same request can simply be re-sent
(possibly with a larger budget).  Only framing violations (a line
exceeding :data:`MAX_LINE`) close the connection.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_LINE",
    "E_BAD_REQUEST",
    "E_UNKNOWN_VERB",
    "E_BAD_HANDLE",
    "E_BUDGET",
    "E_SANITIZER",
    "E_STORE",
    "E_OVERLOAD",
    "E_INTERNAL",
    "ProtocolError",
    "encode_line",
    "decode_line",
    "result_response",
    "error_response",
]

#: Bumped on incompatible wire changes; the greeting advertises it.
PROTOCOL_VERSION = 1

#: Hard bound on one message line in bytes (requests and responses).
#: Protects the server from unbounded buffering on a misbehaving peer.
MAX_LINE = 8 * 1024 * 1024

# -- error codes -------------------------------------------------------
#: Malformed JSON, missing/invalid fields, bad parameter values.
E_BAD_REQUEST = "bad-request"
#: The verb is not in the session's dispatch table.
E_UNKNOWN_VERB = "unknown-verb"
#: A function handle that does not (or no longer does) exist.
E_BAD_HANDLE = "bad-handle"
#: A governor abort: node/step budget, deadline, or injected fault.
#: The session survives; re-send the request to retry.
E_BUDGET = "budget"
#: The graph sanitizer found a structural invariant violation.
E_SANITIZER = "sanitizer"
#: A persistent-store failure on ``save``/``load``: unknown name, no
#: store attached at boot, or detected corruption (``kind`` then names
#: ``StoreCorruptError``).  The session survives.
E_STORE = "store"
#: The server is at ``max_sessions``; retry later.
E_OVERLOAD = "overload"
#: Any unexpected server-side exception.
E_INTERNAL = "internal"


class ProtocolError(ValueError):
    """A request the server understands well enough to reject.

    Raised by request parsing and by verb implementations; the server
    maps it to a structured error response carrying :attr:`code`, and
    the connection stays open.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code


def encode_line(message: dict[str, Any]) -> bytes:
    """Serialize one protocol message to a terminated wire line."""
    return json.dumps(message, separators=(",", ":"),
                      sort_keys=True).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one wire line into a message object.

    Raises :class:`ProtocolError` (``bad-request``) on malformed JSON
    or a non-object payload.
    """
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(E_BAD_REQUEST, f"malformed JSON: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError(E_BAD_REQUEST,
                            "message must be a JSON object")
    return message


def result_response(request_id: Any, result: dict[str, Any]
                    ) -> dict[str, Any]:
    """Build a success response for ``request_id``."""
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Any, code: str, message: str,
                   kind: str | None = None) -> dict[str, Any]:
    """Build a structured error response for ``request_id``.

    ``kind`` carries the server-side exception class name when one
    maps onto the code (e.g. ``BudgetExceeded`` vs ``InjectedAbort``
    under ``budget``), letting clients distinguish without parsing
    message text.
    """
    error: dict[str, Any] = {"code": code, "message": message}
    if kind is not None:
        error["kind"] = kind
    return {"id": request_id, "ok": False, "error": error}
