"""``repro serve``: a long-lived BDD service daemon.

The interactive face of the paper: a server owning per-session BDD
managers, so a larger tool can approximate or decompose functions
*while* its own verification task runs, trading precision for space on
demand — with the PR 5 resource governor as the overload mechanism and
structured ``budget`` errors instead of dead connections.

Modules
-------
:mod:`repro.serve.protocol`
    Newline-delimited JSON framing, error codes.
:mod:`repro.serve.scheduler`
    The fair round-robin worker executor.
:mod:`repro.serve.session`
    Per-client manager, handle table, and the verb implementations.
:mod:`repro.serve.server`
    The asyncio server, stats/health, and :class:`ServerThread` for
    in-process embedding.
:mod:`repro.serve.client`
    The synchronous :class:`Client` used by ``repro call`` and tests.

See ``docs/serve.md`` for the protocol and operational semantics.
"""

from .client import Client, ClientTimeout, ServerError
from .protocol import (MAX_LINE, PROTOCOL_VERSION, ProtocolError,
                       decode_line, encode_line)
from .scheduler import FairExecutor
from .server import Server, ServerThread, serve_main
from .session import Session, SessionConfig

__all__ = [
    "Client",
    "ClientTimeout",
    "ServerError",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "MAX_LINE",
    "encode_line",
    "decode_line",
    "FairExecutor",
    "Server",
    "ServerThread",
    "serve_main",
    "Session",
    "SessionConfig",
]
