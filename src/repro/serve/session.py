"""Server-side sessions: one manager, one handle table, the verbs.

A :class:`Session` owns a dedicated :class:`~repro.bdd.manager.Manager`
(created on the backend the server was configured with) plus a table
of *function handles* — short string ids (``"h1"``, ``"h2"``, ...)
naming :class:`~repro.bdd.function.Function` objects the session keeps
alive.  Handles are deduplicated through the backend-neutral
``Function.handle`` surface (``store.key_of``), so by canonicity two
requests producing the same boolean function receive the *same* handle
id — clients can compare functions by comparing handle strings.

Verb bodies run on the server's :class:`~repro.serve.scheduler.
FairExecutor` worker threads, never on the event loop; the executor
serializes calls per session, so a session's manager is only ever
touched by one thread at a time.  Per-request budgets (the ``budget``
request parameter, merged over the server's configured defaults) are
armed with :meth:`Manager.with_budget` around each verb body; a
governor abort unwinds cleanly, leaves every handle valid, and
surfaces as a structured ``budget`` error response.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager, nullcontext
from typing import Any, Callable, Iterator, TYPE_CHECKING

from ..bdd.function import Function
from ..bdd.governor import Budget
from ..bdd.manager import Manager
from ..core.approx import UNDER_APPROXIMATORS
from ..core.decomp import DECOMPOSERS, decompose
from ..fsm.blif import BlifError, parse_blif
from ..fsm.encode import encode
from ..reach.bfs import bfs_reachability, count_states
from ..reach.degrade import ON_BLOWUP_MODES
from ..reach.highdensity import high_density_reachability
from ..reach.shard import SELECTORS, FrontierSharder, ShardConfig
from ..reach.transition import TransitionRelation
from .protocol import (E_BAD_HANDLE, E_BAD_REQUEST, E_UNKNOWN_VERB,
                       ProtocolError)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..store.store import BDDStore

__all__ = ["Session", "SessionConfig"]

#: ``apply`` op tags accepted over the wire.  ``not`` is unary,
#: ``leq`` returns a boolean instead of a handle; the rest map straight
#: onto the kernel's binary operator table.
BINARY_OPS = ("and", "or", "xor", "xnor", "nand", "nor", "imp", "diff")

#: ``minterms`` enumerates up to 2^n assignments; refuse beyond this.
MAX_MINTERM_VARS = 16


class SessionConfig:
    """Per-session knobs, shared by every session of one server."""

    __slots__ = ("backend", "cache_limit", "gc_threshold",
                 "node_budget", "step_budget", "deadline", "store")

    def __init__(self, *, backend: str | None = None,
                 cache_limit: int | None = None,
                 gc_threshold: int | None = None,
                 node_budget: int | None = None,
                 step_budget: int | None = None,
                 deadline: float | None = None,
                 store: "BDDStore | None" = None) -> None:
        self.backend = backend
        self.cache_limit = cache_limit
        self.gc_threshold = gc_threshold
        #: per-request budget defaults (request ``budget`` overrides)
        self.node_budget = node_budget
        self.step_budget = step_budget
        self.deadline = deadline
        #: optional persistent BDD store backing the save/load verbs
        self.store = store


def _require(params: dict[str, Any], key: str, kind: type,
             what: str) -> Any:
    try:
        value = params[key]
    except KeyError:
        raise ProtocolError(E_BAD_REQUEST,
                            f"missing parameter {key!r}")
    if not isinstance(value, kind) or isinstance(value, bool) \
            and kind is not bool:
        raise ProtocolError(E_BAD_REQUEST,
                            f"parameter {key!r} must be {what}")
    return value


class Session:
    """One connected client's state (see the module docstring)."""

    def __init__(self, session_id: str, config: SessionConfig) -> None:
        self.id = session_id
        self.config = config
        self.manager = Manager(backend=config.backend,
                               cache_limit=config.cache_limit,
                               gc_threshold=config.gc_threshold)
        #: handle id -> Function (the GC roots of this session)
        self._functions: dict[str, Function] = {}
        #: store key of a rooted node -> its handle id (deduplication)
        self._by_key: dict[int, str] = {}
        self._ids = itertools.count(1)
        #: requests executed (successfully or not) in this session
        self.requests = 0
        self.closed = False
        #: governor counters republished after every request.  The
        #: manager itself is single-thread-affine (worker threads,
        #: serialized per session by the executor); these plain ints
        #: are the *published* snapshot the event loop may read without
        #: touching the manager (reads of an int attribute are atomic
        #: under the GIL).
        self.published_aborts = 0
        self.published_degradations = 0

    # ------------------------------------------------------------------
    # Handle table
    # ------------------------------------------------------------------

    def intern(self, function: Function) -> str:
        """Root ``function`` in the session and return its handle id.

        Idempotent per boolean function: the store key of the root
        node indexes the table, and every rooted node stays live, so
        keys cannot be recycled under us.
        """
        key = self.manager.store.key_of(function.handle)
        handle = self._by_key.get(key)
        if handle is None:
            handle = f"h{next(self._ids)}"
            self._functions[handle] = function
            self._by_key[key] = handle
        return handle

    def resolve(self, params: dict[str, Any], key: str = "f"
                ) -> Function:
        """Look up the function named by the ``key`` request param."""
        handle = _require(params, key, str, "a handle string")
        try:
            return self._functions[handle]
        except KeyError:
            raise ProtocolError(E_BAD_HANDLE,
                                f"unknown handle {handle!r}")

    def release(self, handle: str) -> bool:
        """Drop one handle (its nodes survive until the next GC)."""
        function = self._functions.pop(handle, None)
        if function is None:
            return False
        del self._by_key[self.manager.store.key_of(function.handle)]
        return True

    @property
    def num_handles(self) -> int:
        return len(self._functions)

    def snapshot_to(self, store: "BDDStore") -> int:
        """Persist every live handle under ``snapshot/<session>/...``.

        Runs on a worker thread (the executor serializes it with the
        session's other verbs, so the manager stays single-threaded).
        Returns the number of handles written.
        """
        for handle, function in sorted(self._functions.items()):
            store.save(f"snapshot/{self.id}/{handle}", function,
                       tags=("snapshot", self.id))
        return len(self._functions)

    def close(self) -> tuple[int, int]:
        """Release every handle; returns ``(aborts, degradations)``.

        Called on disconnect — this *is* the session GC: dropping the
        Function roots makes every session-private node unreachable,
        and the manager itself becomes garbage once the server lets go
        of the session object.  The returned counters are the last
        *published* snapshot (see ``__init__``), not a fresh manager
        read: close() runs on the event loop, where the manager is
        off-limits, and the executor has already retired or abandoned
        every in-flight call for this session.
        """
        self.closed = True
        counters = (self.published_aborts, self.published_degradations)
        self._functions.clear()
        self._by_key.clear()
        return counters

    # ------------------------------------------------------------------
    # Request execution (worker thread)
    # ------------------------------------------------------------------

    def execute(self, verb: str, params: dict[str, Any]
                ) -> dict[str, Any]:
        """Run one verb under the merged per-request budget."""
        handler = self._VERBS.get(verb)
        if handler is None:
            raise ProtocolError(
                E_UNKNOWN_VERB,
                f"unknown verb {verb!r}; known: "
                f"{', '.join(sorted(self._VERBS))}")
        self.requests += 1
        budget = self._merge_budget(params.get("budget"))
        try:
            if verb == "reach":
                # reach builds its own circuit manager; the budget arms
                # there, not on the session manager (see _verb_reach).
                return handler(self, params, budget)
            with self._armed(self.manager, budget):
                return handler(self, params, budget)
        finally:
            # Republish governor counters while still on the worker
            # thread (aborts unwind through here too), so event-loop
            # snapshots never have to touch the manager.
            aborts, degradations = self.manager.governor_counters
            self.published_aborts = aborts
            self.published_degradations = degradations

    def _merge_budget(self, spec: Any) -> Budget:
        config = self.config
        node, step, deadline = (config.node_budget, config.step_budget,
                                config.deadline)
        if spec is not None:
            if not isinstance(spec, dict):
                raise ProtocolError(E_BAD_REQUEST,
                                    "budget must be an object")
            unknown = set(spec) - {"node", "step", "deadline"}
            if unknown:
                raise ProtocolError(
                    E_BAD_REQUEST,
                    f"unknown budget keys {sorted(unknown)!r}")
            node = spec.get("node", node)
            step = spec.get("step", step)
            deadline = spec.get("deadline", deadline)
        try:
            return Budget(node_budget=node, step_budget=step,
                          deadline=deadline)
        except ValueError as exc:
            raise ProtocolError(E_BAD_REQUEST, str(exc))

    @contextmanager
    def _armed(self, manager: Manager, budget: Budget
               ) -> Iterator[None]:
        if budget.unbounded:
            yield
            return
        with manager.with_budget(node_budget=budget.node_budget,
                                 step_budget=budget.step_budget,
                                 deadline=budget.deadline):
            yield

    # ------------------------------------------------------------------
    # Result helpers
    # ------------------------------------------------------------------

    def _function_result(self, function: Function) -> dict[str, Any]:
        return {"handle": self.intern(function),
                "nodes": len(function),
                "constant": (True if function.is_true
                             else False if function.is_false
                             else None)}

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def _verb_var(self, params: dict[str, Any],
                  budget: Budget) -> dict[str, Any]:
        name = _require(params, "name", str, "a string")
        if not name:
            raise ProtocolError(E_BAD_REQUEST,
                                "variable name must be non-empty")
        fresh = name not in self.manager._var_to_level
        function = (self.manager.add_var(name) if fresh
                    else self.manager.var(name))
        result = self._function_result(function)
        result.update(name=name, fresh=fresh,
                      level=self.manager.level_of_var(name))
        return result

    def _verb_apply(self, params: dict[str, Any],
                    budget: Budget) -> dict[str, Any]:
        op = _require(params, "op", str, "a string")
        f = self.resolve(params, "f")
        if op == "not":
            return self._function_result(~f)
        g = self.resolve(params, "g")
        if op == "leq":
            return {"value": bool(f <= g)}
        if op not in BINARY_OPS:
            raise ProtocolError(
                E_BAD_REQUEST,
                f"unknown op {op!r}; known: not, leq, "
                f"{', '.join(BINARY_OPS)}")
        return self._function_result(self.manager.apply(op, f, g))

    def _verb_ite(self, params: dict[str, Any],
                  budget: Budget) -> dict[str, Any]:
        f = self.resolve(params, "f")
        g = self.resolve(params, "g")
        h = self.resolve(params, "h")
        return self._function_result(f.ite(g, h))

    def _verb_approx(self, params: dict[str, Any],
                     budget: Budget) -> dict[str, Any]:
        method = _require(params, "method", str, "a string")
        approximator = UNDER_APPROXIMATORS.get(method)
        if approximator is None:
            raise ProtocolError(
                E_BAD_REQUEST,
                f"unknown approximation method {method!r}; known: "
                f"{', '.join(UNDER_APPROXIMATORS)}")
        f = self.resolve(params, "f")
        threshold = params.get("threshold", 0)
        if not isinstance(threshold, int) \
                or isinstance(threshold, bool):
            raise ProtocolError(E_BAD_REQUEST,
                                "threshold must be an integer")
        kwargs: dict[str, Any] = {"threshold": threshold}
        if "quality" in params:
            kwargs["quality"] = float(params["quality"])
        approximation = approximator(f, **kwargs)
        result = self._function_result(approximation)
        result.update(method=method,
                      density=approximation.density(),
                      exact=approximation == f)
        return result

    def _verb_decomp(self, params: dict[str, Any],
                     budget: Budget) -> dict[str, Any]:
        method = _require(params, "method", str, "a string")
        if method not in DECOMPOSERS:
            raise ProtocolError(
                E_BAD_REQUEST,
                f"unknown decomposition method {method!r}; known: "
                f"{', '.join(DECOMPOSERS)}")
        f = self.resolve(params, "f")
        g, h = decompose(f, method)
        return {"method": method,
                "g": self._function_result(g),
                "h": self._function_result(h)}

    def _verb_count(self, params: dict[str, Any],
                    budget: Budget) -> dict[str, Any]:
        f = self.resolve(params, "f")
        nvars = params.get("nvars")
        if nvars is not None and (not isinstance(nvars, int)
                                  or isinstance(nvars, bool)):
            raise ProtocolError(E_BAD_REQUEST,
                                "nvars must be an integer or absent")
        return {"nodes": len(f),
                "sat_count": f.sat_count(nvars),
                "density": f.density(nvars),
                "support": sorted(f.support())}

    def _verb_minterms(self, params: dict[str, Any],
                       budget: Budget) -> dict[str, Any]:
        f = self.resolve(params, "f")
        names = params.get("names")
        if names is None:
            names = sorted(f.support(),
                           key=self.manager.level_of_var)
        elif not (isinstance(names, list)
                  and all(isinstance(n, str) for n in names)):
            raise ProtocolError(E_BAD_REQUEST,
                                "names must be a list of strings")
        if len(names) > MAX_MINTERM_VARS:
            raise ProtocolError(
                E_BAD_REQUEST,
                f"minterm enumeration over {len(names)} variables "
                f"refused (limit {MAX_MINTERM_VARS})")
        try:
            minterms = [dict(m) for m in f.iter_minterms(names)]
        except (KeyError, ValueError) as exc:
            raise ProtocolError(E_BAD_REQUEST, str(exc))
        return {"names": list(names), "minterms": minterms}

    def _verb_check(self, params: dict[str, Any],
                    budget: Budget) -> dict[str, Any]:
        diagnostics = self.manager.debug_check(raise_on_error=False)
        return {"ok": not diagnostics,
                "diagnostics": [str(d) for d in diagnostics],
                "nodes": len(self.manager)}

    def _verb_release(self, params: dict[str, Any],
                      budget: Budget) -> dict[str, Any]:
        handle = _require(params, "f", str, "a handle string")
        return {"released": self.release(handle)}

    def _verb_reach(self, params: dict[str, Any],
                    budget: Budget) -> dict[str, Any]:
        blif = _require(params, "blif", str, "BLIF text")
        method = params.get("method", "bfs")
        shards = params.get("shards", 1)
        if not isinstance(shards, int) or shards < 1:
            raise ProtocolError(E_BAD_REQUEST,
                                "shards must be a positive integer")
        selector = params.get("shard_selector", "relation")
        if selector not in SELECTORS:
            raise ProtocolError(
                E_BAD_REQUEST,
                f"shard_selector must be one of {', '.join(SELECTORS)}")
        min_frontier = params.get("shard_min_frontier", 2000)
        on_blowup = params.get("on_blowup", "raise")
        if on_blowup not in ON_BLOWUP_MODES:
            raise ProtocolError(
                E_BAD_REQUEST,
                f"unknown on_blowup mode {on_blowup!r}; known: "
                f"{', '.join(ON_BLOWUP_MODES)}")
        max_iterations = params.get("max_iterations")
        threshold = params.get("threshold", 0)
        try:
            circuit = parse_blif(blif)
        except BlifError as exc:
            raise ProtocolError(E_BAD_REQUEST, f"bad BLIF: {exc}")
        # The circuit gets its own manager on the session's backend —
        # reach is a self-contained query, not a handle factory, and a
        # foreign variable order must not leak into the session.
        encoded = encode(circuit, backend=self.config.backend)
        manager = encoded.manager
        with self._armed(manager, budget):
            with (manager.governor.suspended()
                  if on_blowup != "raise" else nullcontext()):
                tr = TransitionRelation(encoded)
                init = encoded.initial_states()
            sharder = nullcontext(None)
            if shards > 1:
                # Workers rebuild the relation from the request's own
                # BLIF text, so a sharded serve query needs no shared
                # filesystem with the daemon.
                sharder = FrontierSharder(
                    tr, ShardConfig(shards=shards, selector=selector,
                                    min_frontier=min_frontier,
                                    node_budget=budget.node_budget or 0,
                                    step_budget=budget.step_budget or 0,
                                    deadline=budget.deadline or 0.0),
                    spec=("blif-text", blif))
            with sharder as sh:
                if method == "bfs":
                    result = bfs_reachability(
                        tr, init, max_iterations=max_iterations,
                        on_blowup=on_blowup, sharder=sh)
                elif method in UNDER_APPROXIMATORS:
                    result = high_density_reachability(
                        tr, init, UNDER_APPROXIMATORS[method],
                        threshold=threshold,
                        max_iterations=max_iterations,
                        on_blowup=on_blowup, sharder=sh)
                else:
                    raise ProtocolError(
                        E_BAD_REQUEST,
                        f"unknown reach method {method!r}; known: bfs, "
                        f"{', '.join(UNDER_APPROXIMATORS)}")
        stats = manager.stats
        reply = {"circuit": circuit.name,
                 "method": method,
                 "iterations": result.iterations,
                 "complete": result.complete,
                 "states": count_states(result.reached,
                                        encoded.state_vars),
                 "reached_nodes": len(result.reached),
                 "seconds": result.seconds,
                 "aborts": stats.total_aborts,
                 "degradations": stats.total_degradations}
        if result.shard_stats is not None:
            reply["shards"] = shards
            reply["shard_images"] = result.shard_stats["shard_images"]
            reply["pieces"] = result.shard_stats["pieces"]
            reply["resplits"] = result.shard_stats["resplits"]
            reply["fallbacks"] = result.shard_stats["fallbacks"]
        return reply

    def _require_store(self) -> "BDDStore":
        store = self.config.store
        if store is None:
            raise ProtocolError(
                E_BAD_REQUEST,
                "no store attached; start the daemon with --store DIR")
        return store

    def _verb_save(self, params: dict[str, Any],
                   budget: Budget) -> dict[str, Any]:
        store = self._require_store()
        name = _require(params, "name", str, "a string")
        if not name:
            raise ProtocolError(E_BAD_REQUEST,
                                "store name must be non-empty")
        function = self.resolve(params, "f")
        tags = params.get("tags", [])
        if not (isinstance(tags, list)
                and all(isinstance(t, str) for t in tags)):
            raise ProtocolError(E_BAD_REQUEST,
                                "tags must be a list of strings")
        digest = store.save(name, function, tags=tags)
        return {"name": name, "hash": digest,
                "nodes": len(function)}

    def _verb_load(self, params: dict[str, Any],
                   budget: Budget) -> dict[str, Any]:
        store = self._require_store()
        name = _require(params, "name", str, "a string")
        # Loaded into the session manager: declared variables merge
        # into the session's order and the rebuilt root is interned
        # like any other result, so a restarted daemon serves the
        # stored function without re-running the computation that
        # produced it.
        function = store.load(self.manager, name)
        result = self._function_result(function)
        result.update(name=name)
        return result

    def _verb_stats(self, params: dict[str, Any],
                    budget: Budget) -> dict[str, Any]:
        return {"id": self.id,
                "handles": self.num_handles,
                "requests": self.requests,
                "manager": self.manager.stats.as_dict()}

    _VERBS: dict[str, Callable[..., dict[str, Any]]] = {
        "var": _verb_var,
        "apply": _verb_apply,
        "ite": _verb_ite,
        "approx": _verb_approx,
        "decomp": _verb_decomp,
        "count": _verb_count,
        "minterms": _verb_minterms,
        "check": _verb_check,
        "release": _verb_release,
        "reach": _verb_reach,
        "save": _verb_save,
        "load": _verb_load,
        "stats": _verb_stats,
    }
