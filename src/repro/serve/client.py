"""Synchronous client for the ``repro serve`` protocol.

A :class:`Client` is a thin blocking wrapper over one TCP connection —
one session.  It is what ``repro call`` and the test suites use; it
deliberately knows nothing about BDDs: handles are opaque strings, and
every result is the server's JSON object verbatim.

>>> with Client(port=port) as c:           # doctest: +SKIP
...     a = c.var("a")
...     b = c.var("b")
...     f = c.apply("and", a, b)
...     c.count(f)["sat_count"]
1

Error responses raise :class:`ServerError` carrying the structured
``code``/``kind``; a ``budget`` error leaves the connection usable, so
callers can re-issue the request (see ``docs/serve.md``).
"""

from __future__ import annotations

import json
import socket
import time
from typing import Any

from .protocol import E_BUDGET, E_OVERLOAD, MAX_LINE

__all__ = ["Client", "ClientTimeout", "ServerError"]


class ClientTimeout(ConnectionError):
    """The server did not answer within the client's read timeout.

    Raised instead of a bare ``socket.timeout`` so callers can tell a
    hung (or overloaded) server from a closed connection; the
    connection is in an undefined protocol state afterwards — close it
    and reconnect rather than re-issuing the request.
    """

    def __init__(self, seconds: float | None) -> None:
        bound = "" if seconds is None else f" after {seconds:g}s"
        super().__init__(f"no response from the server{bound}")
        self.seconds = seconds


class ServerError(RuntimeError):
    """A structured error response from the server."""

    def __init__(self, code: str, message: str,
                 kind: str | None = None) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.message = message
        self.kind = kind

    @property
    def is_budget(self) -> bool:
        """True for governor aborts — retryable on the same session."""
        return self.code == E_BUDGET

    @property
    def retryable(self) -> bool:
        """True for errors that re-sending may clear.

        ``budget`` leaves the session and every handle valid (the
        governor contract), and ``overload`` means the server was full
        at that instant; both are transient by design.  Everything
        else (bad request, unknown handle, store corruption) is
        deterministic — retrying would just repeat the failure.
        """
        return self.code in (E_BUDGET, E_OVERLOAD)


class Client:
    """One blocking protocol session (see the module docstring).

    ``connect_timeout`` bounds the whole connection attempt; the
    constructor retries refused connections until it elapses, so a
    client racing a just-forked ``repro serve`` subprocess simply
    waits for the socket to appear.

    ``read_timeout`` bounds every wait for a response line (defaulting
    to ``timeout``); a server that accepted the request but never
    answers raises :class:`ClientTimeout` instead of blocking the
    caller forever.  ``None`` disables the bound — appropriate for
    long ``reach`` traversals whose runtime is governed server-side by
    per-request budgets instead.

    ``retries`` (default 0: off) opts into exponential-backoff retry
    of *retryable* structured errors (:attr:`ServerError.retryable`:
    ``budget`` and ``overload``): each of up to ``retries`` re-sends
    waits ``min(retry_max, retry_base * 2**attempt)`` seconds first.
    An ``overload`` greeting reconnects from scratch (the refused
    connection is closed by the server); a ``budget`` error re-sends
    on the same session, whose handles the governor contract keeps
    valid.  Timeouts are *not* retried — after :class:`ClientTimeout`
    the stream may hold a stale response, so re-sending could
    misattribute answers.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: float | None = 60.0,
                 connect_timeout: float = 10.0,
                 read_timeout: float | None = None,
                 retries: int = 0, retry_base: float = 0.05,
                 retry_max: float = 2.0) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.read_timeout = timeout if read_timeout is None \
            else read_timeout
        self.retries = retries
        self.retry_base = retry_base
        self.retry_max = retry_max
        attempt = 0
        while True:
            self._connect(timeout, connect_timeout)
            self.greeting = self._read_message()
            if self.greeting.get("ok") is not False:
                break
            error = self.greeting.get("error", {})
            failure = ServerError(error.get("code", "internal"),
                                  error.get("message", "rejected"),
                                  error.get("kind"))
            self.close()
            if not (failure.retryable and attempt < self.retries):
                raise failure
            time.sleep(self._backoff(attempt))
            attempt += 1
        #: server-assigned session id (from the greeting line)
        self.session = self.greeting.get("session")

    def _connect(self, timeout: float | None,
                 connect_timeout: float) -> None:
        deadline = time.monotonic() + connect_timeout
        while True:
            try:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=timeout)
                break
            except ConnectionRefusedError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        self._sock.settimeout(self.read_timeout)
        self._file = self._sock.makefile("rwb")
        self._ids = iter(range(1, 1 << 62))

    def _backoff(self, attempt: int) -> float:
        return min(self.retry_max, self.retry_base * (2 ** attempt))

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------

    def _read_message(self) -> dict[str, Any]:
        try:
            line = self._file.readline(MAX_LINE + 1)
        except TimeoutError:
            raise ClientTimeout(self.read_timeout) from None
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    def call(self, verb: str, params: dict[str, Any] | None = None,
             *, budget: dict[str, Any] | None = None
             ) -> dict[str, Any]:
        """Send one request and return the ``result`` object.

        ``budget`` is the per-request governor budget
        (``{"node": N, "step": N, "deadline": S}``).  Raises
        :class:`ServerError` on an error response; with ``retries``
        configured, retryable errors are re-sent (fresh request id,
        same session) after an exponential-backoff sleep first.
        """
        attempt = 0
        while True:
            try:
                return self._call_once(verb, params, budget)
            except ServerError as exc:
                if not (exc.retryable and attempt < self.retries):
                    raise
            time.sleep(self._backoff(attempt))
            attempt += 1

    def _call_once(self, verb: str,
                   params: dict[str, Any] | None,
                   budget: dict[str, Any] | None) -> dict[str, Any]:
        request_id = next(self._ids)
        payload: dict[str, Any] = dict(params or {})
        if budget is not None:
            payload["budget"] = budget
        request = {"id": request_id, "verb": verb, "params": payload}
        self._file.write(json.dumps(request).encode("utf-8") + b"\n")
        self._file.flush()
        response = self._read_message()
        if response.get("id") != request_id:
            raise ConnectionError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}")
        if not response.get("ok"):
            error = response.get("error", {})
            raise ServerError(error.get("code", "internal"),
                              error.get("message", "unknown error"),
                              error.get("kind"))
        return response["result"]

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Verb conveniences (return the interesting slice of the result)
    # ------------------------------------------------------------------

    def var(self, name: str, **kwargs: Any) -> str:
        return self.call("var", {"name": name}, **kwargs)["handle"]

    def apply(self, op: str, f: str, g: str | None = None,
              **kwargs: Any) -> Any:
        params: dict[str, Any] = {"op": op, "f": f}
        if g is not None:
            params["g"] = g
        result = self.call("apply", params, **kwargs)
        return result["value"] if op == "leq" else result["handle"]

    def ite(self, f: str, g: str, h: str, **kwargs: Any) -> str:
        return self.call("ite", {"f": f, "g": g, "h": h},
                         **kwargs)["handle"]

    def approx(self, method: str, f: str, threshold: int = 0,
               **kwargs: Any) -> dict[str, Any]:
        return self.call("approx", {"method": method, "f": f,
                                    "threshold": threshold}, **kwargs)

    def decomp(self, method: str, f: str,
               **kwargs: Any) -> dict[str, Any]:
        return self.call("decomp", {"method": method, "f": f},
                         **kwargs)

    def count(self, f: str, nvars: int | None = None,
              **kwargs: Any) -> dict[str, Any]:
        params: dict[str, Any] = {"f": f}
        if nvars is not None:
            params["nvars"] = nvars
        return self.call("count", params, **kwargs)

    def minterms(self, f: str, names: list[str] | None = None,
                 **kwargs: Any) -> list[dict[str, bool]]:
        params: dict[str, Any] = {"f": f}
        if names is not None:
            params["names"] = names
        return self.call("minterms", params, **kwargs)["minterms"]

    def check(self, **kwargs: Any) -> dict[str, Any]:
        return self.call("check", **kwargs)

    def release(self, f: str, **kwargs: Any) -> bool:
        return self.call("release", {"f": f}, **kwargs)["released"]

    def reach(self, blif: str, **params: Any) -> dict[str, Any]:
        budget = params.pop("budget", None)
        return self.call("reach", {"blif": blif, **params},
                         budget=budget)

    def stats(self) -> dict[str, Any]:
        return self.call("stats")

    def health(self) -> dict[str, Any]:
        return self.call("health")
