"""Command-line tools: ``python -m repro <command>``.

Commands
--------
``info <circuit.blif>``
    Netlist statistics and BDD sizes of the next-state functions.
``reach <circuit.blif>``
    Reachability analysis (exact BFS or high-density with a chosen
    subsetting method); prints iterations, state count, BDD sizes.
``approx <circuit.blif>``
    Apply the approximation methods to every output/next-state function
    and print a Table-2-style comparison.
``decomp <circuit.blif>``
    Two-way decomposition of each output function by the three Table-4
    methods.
``save <circuit.blif> --store DIR``
    Encode the circuit and persist its functions into an on-disk BDD
    store (:mod:`repro.store`, ``docs/persistence.md``): level-ordered
    content-addressed objects plus an sqlite name index.
``load --store DIR [name]``
    Load a persisted function by name (``--list`` shows the index;
    ``--dump`` prints the textual node list); loading verifies CRC
    frames and the content address, so corruption is detected, never
    silently returned.
``trajectory <baseline.json> <current.json>``
    Compare two ``BENCH_*.json`` benchmark trajectory files and exit
    non-zero on a regression or result mismatch (the CI perf gate).
``serve``
    Run the BDD service daemon (:mod:`repro.serve`): an asyncio server
    exposing the toolkit verbs as a newline-delimited JSON protocol
    with per-session managers, per-request governor budgets, and fair
    scheduling across sessions (see ``docs/serve.md``).
``call <verb> [params-json]``
    One-shot client for a running daemon: send one request, print the
    JSON result.  A structured ``budget`` error exits with status 3,
    matching the in-process governor convention.
``lint [paths...]``
    Run the BDD-aware static rules (:mod:`repro.analysis`) over source
    trees; exits non-zero on errors (or on any finding with
    ``--strict``).
``check <circuit.blif>``
    Encode the circuit and run the graph sanitizer
    (:meth:`~repro.bdd.manager.Manager.debug_check`) over the resulting
    manager; exits non-zero when any invariant is violated.

All commands read BLIF; the benchmark generators can export BLIF via
``repro.fsm.blif.write_blif`` for experimentation.

Runtime options shared by every command configure the manager's memory
policy and observability: ``--backend`` selects the node-store backend
(``object`` or ``array``, exported as ``REPRO_BACKEND`` so engine
workers agree), ``--cache-limit`` bounds the computed table,
``--gc-threshold`` arms automatic garbage collection, ``--stats``
prints the :attr:`~repro.bdd.manager.Manager.stats` snapshot after the
command body, and ``--jobs`` (or ``REPRO_BENCH_JOBS``) fans per-function
work of ``approx``/``decomp`` over the parallel experiment engine —
each worker process re-reads the circuit and rebuilds its own BDDs.

Resource governor options (also shared): ``--node-budget``,
``--step-budget`` and ``--deadline`` arm a :class:`~repro.bdd.governor.
Budget` on the manager for the whole command; a kernel crossing a
budget aborts cleanly and the command exits with status 3.  ``reach``
additionally accepts ``--on-blowup raise|subset|retry-reorder`` to
degrade blowing-up image computations through the
:mod:`repro.reach.degrade` escalation ladder instead of failing.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import nullcontext

from .bdd.backend import resolve_backend
from .bdd.counting import density
from .bdd.governor import Budget, ResourceError
from .core.approx import UNDER_APPROXIMATORS
from .core.decomp import DECOMPOSERS, decompose
from .fsm.blif import read_blif
from .fsm.encode import encode
from .harness.engine import Task, resolve_jobs, run_tasks
from .harness.tables import format_manager_stats, format_table
from .harness.trajectory import compare_files
from .reach.bfs import bfs_reachability, count_states
from .reach.degrade import ON_BLOWUP_MODES
from .reach.highdensity import high_density_reachability
from .reach.shard import SELECTORS, FrontierSharder, ShardConfig
from .reach.transition import TransitionRelation
from .store.errors import StoreCorruptError, StoreError


def _load(args):
    """Read the circuit and encode it under the requested runtime policy."""
    circuit = read_blif(args.circuit)
    encoded = encode(circuit)
    manager = encoded.manager
    try:
        if getattr(args, "cache_limit", None) is not None:
            manager.set_cache_limit(args.cache_limit)
        if getattr(args, "gc_threshold", None) is not None:
            manager.gc_threshold = args.gc_threshold
        budget = Budget(node_budget=getattr(args, "node_budget", None),
                        step_budget=getattr(args, "step_budget", None),
                        deadline=getattr(args, "deadline", None))
        if not budget.unbounded:
            # Armed for the process lifetime: CLI commands are one-shot,
            # so there is no enclosing scope to restore the budget to.
            manager.governor.arm(budget)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")
    return circuit, encoded


def _finish(args, encoded) -> None:
    """Shared epilogue: print the manager runtime stats when asked."""
    if getattr(args, "stats", False):
        print()
        print(format_manager_stats(encoded.manager.stats))


def cmd_info(args) -> int:
    circuit, encoded = _load(args)
    print(f"model:   {circuit.name}")
    print(f"inputs:  {len(circuit.inputs)}")
    print(f"latches: {circuit.num_latches}")
    print(f"outputs: {len(circuit.outputs)}")
    rows = [[name, len(delta), f"{density(delta):.2f}"]
            for name, delta in zip(encoded.state_vars,
                                   encoded.next_functions)]
    print(format_table(["latch", "|delta|", "density"], rows,
                       title="next-state functions"))
    _finish(args, encoded)
    return 0


def _reach_checkpointer(args, circuit):
    """Build the optional checkpointer for ``repro reach``.

    The spec digest pins the checkpoint to this exact problem (circuit
    bytes, method, threshold, clustering, degradation policy); resuming
    into a different problem is refused with a structured error instead
    of silently blending two traversals.
    """
    if args.checkpoint is None:
        if args.resume:
            raise SystemExit("repro: --resume requires --checkpoint DIR")
        return None
    import hashlib
    from pathlib import Path

    from .store.checkpoint import ReachCheckpointer, reach_spec
    from .store.store import BDDStore

    circuit_digest = hashlib.sha256(
        Path(args.circuit).read_bytes()).hexdigest()
    spec = reach_spec(circuit_digest, args.method, args.threshold,
                      args.cluster_limit, args.on_blowup)
    store = BDDStore(args.checkpoint)
    name = f"reach/{circuit.name}/{args.method}"
    try:
        return ReachCheckpointer(store, name,
                                 every=args.checkpoint_every,
                                 spec=spec, resume=args.resume)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")


def cmd_reach(args) -> int:
    circuit, encoded = _load(args)
    # Under a degradation policy the budget governs the traversal: the
    # escalation ladder has no recovery for an abort during setup
    # (clustering, initial states), so setup runs unbudgeted.
    setup = nullcontext() if args.on_blowup == "raise" \
        else encoded.manager.governor.suspended()
    with setup:
        tr = TransitionRelation(encoded,
                                cluster_limit=args.cluster_limit)
        init = encoded.initial_states()
    sharder = nullcontext(None)
    if args.shards > 1:
        config = ShardConfig(shards=args.shards,
                             selector=args.shard_selector,
                             min_frontier=args.shard_min_frontier,
                             resplit_threshold=args.shard_resplit,
                             node_budget=args.node_budget or 0,
                             step_budget=args.step_budget or 0,
                             deadline=args.deadline or 0.0)
        sharder = FrontierSharder(tr, config,
                                  spec=("blif-path", args.circuit))
    checkpointer = _reach_checkpointer(args, circuit)
    with sharder as sh:
        if args.method == "bfs":
            result = bfs_reachability(tr, init,
                                      max_iterations=args.max_iterations,
                                      on_blowup=args.on_blowup,
                                      sharder=sh,
                                      checkpointer=checkpointer)
        else:
            subset = UNDER_APPROXIMATORS[args.method]
            result = high_density_reachability(
                tr, init, subset, threshold=args.threshold,
                max_iterations=args.max_iterations,
                on_blowup=args.on_blowup, sharder=sh,
                checkpointer=checkpointer)
    states = count_states(result.reached, encoded.state_vars)
    print(f"method:     {args.method}")
    print(f"iterations: {result.iterations}")
    print(f"complete:   {result.complete}")
    print(f"states:     {states}")
    print(f"|reached|:  {len(result.reached)} nodes")
    print(f"time:       {result.seconds:.2f}s")
    stats = encoded.manager.stats
    if stats.total_aborts or stats.total_degradations:
        print(f"governor:   {stats.total_aborts} abort(s), "
              f"{stats.total_degradations} degradation(s)")
    if result.shard_stats is not None:
        sh = result.shard_stats
        print(f"shards:     {args.shards} requested, "
              f"{sh['shard_images']} sharded + "
              f"{sh['sequential_images']} sequential image(s), "
              f"{sh['pieces']} piece(s), {sh['resplits']} resplit(s), "
              f"{sh['fallbacks']} fallback(s)")
    if checkpointer is not None:
        print(f"checkpoint: {checkpointer.name} "
              f"({checkpointer.saves} save(s) this run)")
    _finish(args, encoded)
    return 0


def cmd_save(args) -> int:
    from .store.store import BDDStore

    circuit, encoded = _load(args)
    store = BDDStore(args.store)
    functions = []
    if args.functions in ("outputs", "all"):
        functions += [(f"{circuit.name}/output/{name}", f)
                      for name, f in encoded.output_functions.items()]
    if args.functions in ("next", "all"):
        functions += [(f"{circuit.name}/next/{name}", f)
                      for name, f in zip(encoded.state_vars,
                                         encoded.next_functions)]
    if not functions:
        print(f"{circuit.name} has no {args.functions} functions")
        return 1
    rows = [[name, len(f), store.save(name, f, tags=args.tag)[:12]]
            for name, f in functions]
    print(format_table(["name", "nodes", "object"], rows,
                       title=f"saved to {store.root}"))
    _finish(args, encoded)
    return 0


def cmd_load(args) -> int:
    from .bdd.io import dump
    from .bdd.manager import Manager
    from .store.store import BDDStore

    store = BDDStore(args.store, create=False)
    if args.list or args.name is None:
        entries = store.entries(prefix=args.name or "")
        if not entries:
            print("store is empty" if not args.name
                  else f"no entries under {args.name!r}")
            return 1
        rows = [[e["name"], e["nodes"], e["vars"],
                 ",".join(e["tags"]) or "-", e["hash"][:12]]
                for e in entries]
        print(format_table(["name", "nodes", "vars", "tags", "object"],
                           rows, title=str(store.root)))
        return 0
    manager = Manager(backend=args.backend)
    function = store.load(manager, args.name)
    if args.dump:
        sys.stdout.write(dump(function))
        return 0
    print(f"name:     {args.name}")
    print(f"nodes:    {len(function)}")
    print(f"vars:     {manager.num_vars}")
    print(f"minterms: {function.sat_count()}")
    return 0


def _parse_methods(spec: str) -> list[str]:
    """Validate a comma-separated method list against the registry."""
    if spec == "all":
        return list(UNDER_APPROXIMATORS)
    methods = [m.strip() for m in spec.split(",") if m.strip()]
    unknown = [m for m in methods if m not in UNDER_APPROXIMATORS]
    if unknown or not methods:
        known = ",".join(UNDER_APPROXIMATORS)
        raise SystemExit(f"unknown approximation methods "
                         f"{unknown or [spec]!r}; choose from: {known}")
    return methods


def _rebuild_function(payload):
    """Worker-side rebuild: re-read the circuit, pick one function.

    BDDs cannot cross process boundaries, so each engine worker
    reconstructs its slice from the (path, kind, name) spec — the same
    rebuild model the benchmark population uses.
    """
    path, kind, name, cache_limit, gc_threshold, node_budget, \
        step_budget = payload
    encoded = encode(read_blif(path))
    if cache_limit is not None:
        encoded.manager.set_cache_limit(cache_limit)
    if gc_threshold is not None:
        encoded.manager.gc_threshold = gc_threshold
    budget = Budget(node_budget=node_budget, step_budget=step_budget)
    if not budget.unbounded:
        encoded.manager.governor.arm(budget)
    if kind == "delta":
        f = dict(zip(encoded.state_vars, encoded.next_functions))[name]
    else:
        f = encoded.output_functions[name]
    return f


def _approx_worker(payload):
    base, methods, threshold = payload
    f = _rebuild_function(base)
    cells = []
    for method in methods:
        result = UNDER_APPROXIMATORS[method](f, threshold=threshold)
        cells.append((len(result), density(result)))
    return {"f_nodes": len(f), "cells": cells}


def _decomp_worker(payload):
    f = _rebuild_function(payload)
    cells = []
    for method in DECOMPOSERS:
        g, h = decompose(f, method)
        if not (g & h) == f:
            raise AssertionError(f"{method} broke f = g*h")
        cells.append((len(g), len(h)))
    return {"f_nodes": len(f), "cells": cells}


def _fan_out(args, worker, selected, make_payload):
    """Run per-function tasks through the experiment engine.

    Returns (key -> result, failures).  ``selected`` is a list of
    (kind, name) pairs; the order of the returned rows follows it.
    """
    tasks = [Task(f"{kind}:{name}", make_payload(kind, name))
             for kind, name in selected]
    run = run_tasks(worker, tasks, jobs=resolve_jobs(args.jobs))
    for outcome in run.failures:
        print(f"repro: task {outcome.key} failed "
              f"({outcome.status}): {outcome.error}", file=sys.stderr)
    return run.results(), run.failures


def cmd_approx(args) -> int:
    circuit, encoded = _load(args)
    methods = _parse_methods(args.methods)
    functions = [("delta", name, f)
                 for name, f in zip(encoded.state_vars,
                                    encoded.next_functions)]
    functions += [("output", name, f)
                  for name, f in encoded.output_functions.items()]
    selected = [(kind, name, f) for kind, name, f in functions
                if len(f) >= args.min_nodes]
    if not selected:
        print(f"no function has >= {args.min_nodes} nodes")
        return 1
    failures = []
    if resolve_jobs(args.jobs) > 1:
        results, failures = _fan_out(
            args, _approx_worker, [(k, n) for k, n, _ in selected],
            lambda kind, name: ((args.circuit, kind, name,
                                 args.cache_limit, args.gc_threshold,
                                 args.node_budget, args.step_budget),
                                tuple(methods), args.threshold))
        rows = []
        for kind, name, f in selected:
            result = results.get(f"{kind}:{name}")
            if result is None:
                continue
            rows.append([name, result["f_nodes"]]
                        + [f"{n}/{d:.1f}" for n, d in result["cells"]])
    else:
        rows = []
        for kind, name, f in selected:
            row = [name, len(f)]
            for method in methods:
                result = UNDER_APPROXIMATORS[method](
                    f, threshold=args.threshold)
                row.append(f"{len(result)}/{density(result):.1f}")
            rows.append(row)
    if rows:
        print(format_table(
            ["function", "|f|"] + [m.upper() for m in methods], rows,
            title="approximation comparison (nodes/density)"))
    _finish(args, encoded)
    return 1 if failures else 0


def cmd_decomp(args) -> int:
    circuit, encoded = _load(args)
    selected = [("output", name, f)
                for name, f in encoded.output_functions.items()
                if not f.is_constant]
    if not selected:
        print("no non-constant outputs to decompose")
        return 1
    failures = []
    if resolve_jobs(args.jobs) > 1:
        results, failures = _fan_out(
            args, _decomp_worker, [(k, n) for k, n, _ in selected],
            lambda kind, name: (args.circuit, kind, name,
                                args.cache_limit, args.gc_threshold,
                                args.node_budget, args.step_budget))
        rows = []
        for kind, name, f in selected:
            result = results.get(f"{kind}:{name}")
            if result is None:
                continue
            rows.append([name, result["f_nodes"]]
                        + [f"{g}/{h}" for g, h in result["cells"]])
    else:
        rows = []
        for kind, name, f in selected:
            row = [name, len(f)]
            for method in DECOMPOSERS:
                g, h = decompose(f, method)
                if not (g & h) == f:
                    raise AssertionError(f"{method} broke f = g*h")
                row.append(f"{len(g)}/{len(h)}")
            rows.append(row)
    if rows:
        print(format_table(
            ["output", "|f|"] + [m.capitalize() for m in DECOMPOSERS],
            rows, title="two-way conjunctive decompositions (|G|/|H|)"))
    _finish(args, encoded)
    return 1 if failures else 0


def cmd_lint(args) -> int:
    from pathlib import Path

    from .analysis import (DEFAULT_BASELINE, RULES, apply_baseline,
                           exit_code, lint_paths, load_baseline,
                           render_json, render_sarif, render_text,
                           write_baseline)
    if args.write_baseline and not args.baseline:
        args.baseline = DEFAULT_BASELINE
    for option, ids in (("--select", args.select),
                        ("--ignore", args.ignore)):
        unknown = [r for r in ids or () if r not in RULES]
        if unknown:
            raise SystemExit(
                f"repro: unknown rules {unknown!r} for {option}; "
                f"available: {','.join(sorted(RULES))}")
    violations = lint_paths(args.paths, rules=args.select,
                            ignore=args.ignore)
    if args.write_baseline:
        count = write_baseline(args.baseline, violations)
        print(f"repro lint: wrote {count} baseline entr"
              f"{'y' if count == 1 else 'ies'} to {args.baseline}")
        return 0
    baselined = 0
    if args.baseline and Path(args.baseline).exists():
        try:
            entries = load_baseline(args.baseline)
        except ValueError as exc:
            raise SystemExit(f"repro: {exc}")
        violations, baselined = apply_baseline(violations, entries)
    if args.format == "json":
        document = render_json(violations, baselined=baselined)
    elif args.format == "sarif":
        document = render_sarif(violations)
    else:
        document = render_text(violations)
        if baselined:
            document += f"\n{baselined} baselined finding(s) filtered"
    if args.output:
        Path(args.output).write_text(document + "\n", encoding="utf-8")
    else:
        print(document)
    return exit_code(violations, strict=args.strict)


def cmd_check(args) -> int:
    circuit, encoded = _load(args)
    manager = encoded.manager
    diagnostics = manager.debug_check(raise_on_error=False)
    nodes = len(manager)
    if diagnostics:
        for diagnostic in diagnostics:
            print(f"repro check: {diagnostic}", file=sys.stderr)
        print(f"FAILED: {len(diagnostics)} invariant violation(s) in "
              f"{nodes} nodes ({circuit.name})")
        return 1
    print(f"OK: {nodes} nodes, "
          f"{len(encoded.state_vars)} latches ({circuit.name})")
    _finish(args, encoded)
    return 0


def cmd_serve(args) -> int:
    import asyncio

    from .serve.server import Server, serve_main

    # Resolve the backend *here* and export it: sessions receive it
    # explicitly (never re-reading the environment at accept time),
    # and any worker processes the daemon's requests spawn inherit the
    # same selection.  Before this round-trip fix a `repro serve
    # --backend array` subprocess could encode `reach` circuits on the
    # object store while its sessions ran on the array store.
    backend = resolve_backend(getattr(args, "backend", None))
    os.environ["REPRO_BACKEND"] = backend
    try:
        server = Server(
            host=args.host, port=args.port, backend=backend,
            cache_limit=args.cache_limit,
            gc_threshold=args.gc_threshold,
            node_budget=args.node_budget,
            step_budget=args.step_budget, deadline=args.deadline,
            workers=args.workers, max_sessions=args.max_sessions,
            store=args.store, snapshot=args.snapshot)
    except ValueError as exc:
        raise SystemExit(f"repro: {exc}")
    try:
        asyncio.run(serve_main(
            server, ready=lambda line: print(line, flush=True)))
    except KeyboardInterrupt:
        pass
    return 0


def cmd_call(args) -> int:
    from .serve.client import Client, ServerError

    params = {}
    if args.params:
        try:
            params = json.loads(args.params)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"repro: params is not JSON: {exc}")
        if not isinstance(params, dict):
            raise SystemExit("repro: params must be a JSON object")
    budget = {key: value for key, value in
              (("node", args.node_budget), ("step", args.step_budget),
               ("deadline", args.deadline)) if value is not None}
    try:
        with Client(args.host, args.port,
                    connect_timeout=args.connect_timeout,
                    read_timeout=args.read_timeout) as client:
            result = client.call(args.verb, params,
                                 budget=budget or None)
    except ServerError as exc:
        print(f"repro call: {exc}", file=sys.stderr)
        return 3 if exc.is_budget else 1
    except (ConnectionError, OSError) as exc:
        raise SystemExit(
            f"repro: cannot reach {args.host}:{args.port}: {exc}")
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def cmd_trajectory(args) -> int:
    try:
        report = compare_files(args.baseline, args.current,
                               tolerance=args.tolerance,
                               time_floor=args.time_floor)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro: {exc}")
    print(report.summary())
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="BDD approximation/decomposition toolkit "
                    "(DAC 1998 reproduction)")
    runtime = argparse.ArgumentParser(add_help=False)
    runtime.add_argument("--stats", action="store_true",
                         help="print manager cache/GC statistics after "
                              "the command")
    runtime.add_argument("--cache-limit", type=int, default=None,
                         help="bound the computed table to this many "
                              "entries (default: unbounded)")
    runtime.add_argument("--gc-threshold", type=int, default=None,
                         help="enable automatic GC above this many live "
                              "nodes (default: disabled)")
    runtime.add_argument("--backend", default=None,
                         choices=["object", "array"],
                         help="node-store backend for every manager the "
                              "command creates, including engine "
                              "workers (default: REPRO_BACKEND or "
                              "object)")
    runtime.add_argument("--jobs", type=int, default=None,
                         help="worker processes for per-function fan-out "
                              "(default: REPRO_BENCH_JOBS or 1; <=0 "
                              "means all cores)")
    runtime.add_argument("--node-budget", type=int, default=None,
                         help="abort any kernel once the manager holds "
                              "more live nodes than this (default: "
                              "unbounded)")
    runtime.add_argument("--step-budget", type=int, default=None,
                         help="abort after this many kernel operation "
                              "steps (default: unbounded)")
    runtime.add_argument("--deadline", type=float, default=None,
                         help="wall-clock budget in seconds for the "
                              "whole command's kernel work (default: "
                              "unbounded)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", parents=[runtime],
                            help="netlist and BDD statistics")
    p_info.add_argument("circuit", help="BLIF file")
    p_info.set_defaults(func=cmd_info)

    p_reach = sub.add_parser("reach", parents=[runtime],
                             help="reachability analysis")
    p_reach.add_argument("circuit", help="BLIF file")
    p_reach.add_argument("--method", default="bfs",
                         choices=["bfs"] + sorted(UNDER_APPROXIMATORS))
    p_reach.add_argument("--threshold", type=int, default=0,
                         help="subsetting threshold (high-density)")
    p_reach.add_argument("--max-iterations", type=int, default=None)
    p_reach.add_argument("--cluster-limit", type=int, default=2500)
    p_reach.add_argument("--on-blowup", default="raise",
                         choices=list(ON_BLOWUP_MODES),
                         help="reaction to governor aborts during the "
                              "traversal: fail (raise), degrade to "
                              "subsetted images (subset), or sift then "
                              "retry (retry-reorder)")
    p_reach.add_argument("--shards", type=int, default=1,
                         help="split every image disjunctively across "
                              "this many persistent worker processes; "
                              "the result is byte-identical to the "
                              "sequential traversal (default: 1, "
                              "sequential; docs/reach.md)")
    p_reach.add_argument("--shard-selector", default="relation",
                         choices=list(SELECTORS),
                         help="split-variable selector: relation "
                              "(cofactor shrinkage of the clusters), "
                              "band or disjoint (decomposition points "
                              "of the frontier)")
    p_reach.add_argument("--shard-min-frontier", type=int, default=2000,
                         help="frontiers below this many nodes are "
                              "imaged sequentially (default: 2000)")
    p_reach.add_argument("--shard-resplit", type=int, default=0,
                         help="re-split a shard one variable deeper "
                              "when its cofactored piece exceeds this "
                              "many nodes (default: 0, disabled)")
    p_reach.add_argument("--checkpoint", default=None, metavar="DIR",
                         help="persist the traversal state to a BDD "
                              "store in DIR every --checkpoint-every "
                              "iterations; a killed run restarted with "
                              "--resume continues from the last "
                              "checkpoint and produces a byte-"
                              "identical reached set "
                              "(docs/persistence.md)")
    p_reach.add_argument("--checkpoint-every", type=int, default=1,
                         metavar="N",
                         help="checkpoint cadence in iterations "
                              "(default: 1)")
    p_reach.add_argument("--resume", action="store_true",
                         help="resume from the checkpoint in "
                              "--checkpoint DIR if one exists (the "
                              "problem spec is verified first)")
    p_reach.set_defaults(func=cmd_reach)

    p_save = sub.add_parser(
        "save", parents=[runtime],
        help="persist a circuit's functions to an on-disk BDD store")
    p_save.add_argument("circuit", help="BLIF file")
    p_save.add_argument("--store", required=True, metavar="DIR",
                        help="store directory (created if missing)")
    p_save.add_argument("--functions", default="outputs",
                        choices=["outputs", "next", "all"],
                        help="which functions to save: the outputs, "
                             "the next-state functions, or both "
                             "(default: outputs)")
    p_save.add_argument("--tag", action="append", default=[],
                        metavar="TAG",
                        help="attach a tag to every saved entry "
                             "(repeatable)")
    p_save.set_defaults(func=cmd_save)

    p_load = sub.add_parser(
        "load",
        help="load or list functions from an on-disk BDD store")
    p_load.add_argument("name", nargs="?", default=None,
                        help="entry name to load; omitted or with "
                             "--list, list the index instead (the "
                             "name then filters by prefix)")
    p_load.add_argument("--store", required=True, metavar="DIR",
                        help="store directory")
    p_load.add_argument("--list", action="store_true",
                        help="list index entries instead of loading")
    p_load.add_argument("--dump", action="store_true",
                        help="print the loaded function as a textual "
                             "node list (repro.bdd.io format)")
    p_load.add_argument("--backend", default=None,
                        choices=["object", "array"],
                        help="node-store backend for the manager the "
                             "function is loaded into (default: "
                             "REPRO_BACKEND or object)")
    p_load.set_defaults(func=cmd_load)

    p_approx = sub.add_parser("approx", parents=[runtime],
                              help="compare approximation methods")
    p_approx.add_argument("circuit", help="BLIF file")
    p_approx.add_argument("--threshold", type=int, default=0)
    p_approx.add_argument("--min-nodes", type=int, default=10)
    p_approx.add_argument("--methods", default="all",
                          help="comma-separated registry methods "
                               f"({','.join(UNDER_APPROXIMATORS)}) or "
                               "'all'")
    p_approx.set_defaults(func=cmd_approx)

    p_decomp = sub.add_parser("decomp", parents=[runtime],
                              help="compare decomposition methods")
    p_decomp.add_argument("circuit", help="BLIF file")
    p_decomp.set_defaults(func=cmd_decomp)

    p_serve = sub.add_parser(
        "serve", help="run the BDD service daemon (docs/serve.md)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port; 0 picks an ephemeral port "
                              "and prints it (default: 0)")
    p_serve.add_argument("--backend", default=None,
                         choices=["object", "array"],
                         help="node-store backend for every session "
                              "manager (default: REPRO_BACKEND or "
                              "object)")
    p_serve.add_argument("--workers", type=int, default=1,
                         help="kernel worker threads shared round-"
                              "robin across sessions (default: 1)")
    p_serve.add_argument("--max-sessions", type=int, default=64,
                         help="concurrent session bound; excess "
                              "connections get a structured overload "
                              "error (default: 64)")
    p_serve.add_argument("--cache-limit", type=int, default=None,
                         help="computed-table bound per session "
                              "manager (default: unbounded)")
    p_serve.add_argument("--gc-threshold", type=int, default=None,
                         help="automatic-GC threshold per session "
                              "manager (default: disabled)")
    p_serve.add_argument("--node-budget", type=int, default=None,
                         help="default per-request node budget "
                              "(default: unbounded)")
    p_serve.add_argument("--step-budget", type=int, default=None,
                         help="default per-request kernel-step budget "
                              "(default: unbounded)")
    p_serve.add_argument("--deadline", type=float, default=None,
                         help="default per-request wall-clock budget "
                              "in seconds (default: unbounded)")
    p_serve.add_argument("--store", default=None, metavar="DIR",
                         help="attach an on-disk BDD store: sessions "
                              "gain save/load verbs for persisting "
                              "and restoring warm handles "
                              "(docs/persistence.md)")
    p_serve.add_argument("--snapshot", action="store_true",
                         help="snapshot every live session's handles "
                              "to the --store on clean shutdown "
                              "(restored on the next boot via load)")
    p_serve.set_defaults(func=cmd_serve)

    p_call = sub.add_parser(
        "call", help="send one request to a running repro serve")
    p_call.add_argument("verb", help="protocol verb (var, apply, ite, "
                                     "approx, decomp, reach, check, "
                                     "count, minterms, release, "
                                     "stats, health)")
    p_call.add_argument("params", nargs="?", default=None,
                        help="verb parameters as a JSON object")
    p_call.add_argument("--host", default="127.0.0.1")
    p_call.add_argument("--port", type=int, required=True)
    p_call.add_argument("--connect-timeout", type=float, default=10.0,
                        help="seconds to retry a refused connection "
                             "(covers daemon boot; default: 10)")
    p_call.add_argument("--read-timeout", type=float, default=None,
                        help="seconds to wait for the response line; "
                             "a hung server fails cleanly instead of "
                             "blocking (default: the client's 60s "
                             "socket timeout)")
    p_call.add_argument("--node-budget", type=int, default=None,
                        help="per-request node budget")
    p_call.add_argument("--step-budget", type=int, default=None,
                        help="per-request kernel-step budget")
    p_call.add_argument("--deadline", type=float, default=None,
                        help="per-request wall-clock budget (seconds)")
    p_call.set_defaults(func=cmd_call)

    p_lint = sub.add_parser(
        "lint", help="run the BDD-aware static rules (RPR001..RPR011)")
    p_lint.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directory trees to lint "
                             "(default: src tests)")
    p_lint.add_argument("--format", choices=["text", "json", "sarif"],
                        default="text")
    rule_list = lambda s: [r.strip() for r in s.split(",") if r.strip()]
    p_lint.add_argument("--select", "--rules", dest="select",
                        default=None, type=rule_list,
                        help="comma-separated rule ids to run "
                             "(default: all)")
    p_lint.add_argument("--ignore", default=None, type=rule_list,
                        help="comma-separated rule ids to skip")
    p_lint.add_argument("--strict", action="store_true",
                        help="exit non-zero on warnings too")
    p_lint.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file of accepted findings to "
                             "filter out before the exit-code gate "
                             "(a missing file is an empty baseline)")
    p_lint.add_argument("--write-baseline", action="store_true",
                        help="write every current finding to the "
                             "--baseline file and exit 0")
    p_lint.add_argument("--output", default=None, metavar="PATH",
                        help="write the report to PATH instead of "
                             "stdout (e.g. the CI SARIF artifact)")
    p_lint.set_defaults(func=cmd_lint)

    p_check = sub.add_parser(
        "check", parents=[runtime],
        help="build BDDs for a circuit and run the graph sanitizer")
    p_check.add_argument("circuit", help="BLIF file")
    p_check.set_defaults(func=cmd_check)

    p_traj = sub.add_parser(
        "trajectory",
        help="compare two BENCH_*.json benchmark trajectory files")
    p_traj.add_argument("baseline", help="baseline BENCH_*.json")
    p_traj.add_argument("current", help="current BENCH_*.json")
    p_traj.add_argument("--tolerance", type=float, default=1.5,
                        help="acceptable current/baseline wall-clock "
                             "ratio (default: 1.5)")
    p_traj.add_argument("--time-floor", type=float, default=0.05,
                        help="rows faster than this many baseline "
                             "seconds never regress (default: 0.05)")
    p_traj.set_defaults(func=cmd_trajectory)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "backend", None):
        # Exported rather than threaded through every Manager() call:
        # engine worker processes inherit the environment, so their
        # rebuilt managers pick the same store.
        os.environ["REPRO_BACKEND"] = args.backend
    try:
        return args.func(args)
    except ResourceError as exc:
        # A governor abort escaped the command body (no --on-blowup
        # degradation applies, e.g. `approx --node-budget`).  The
        # kernels unwound cleanly; report the budget and exit 3 so
        # scripts can tell "over budget" from ordinary failures.
        print(f"repro: resource budget exhausted: {exc}",
              file=sys.stderr)
        return 3
    except StoreError as exc:
        # Store misuse (unknown name, spec mismatch) exits 1; detected
        # corruption (failed CRC/content address) exits 4 so scripts
        # can tell "bad store" from "bad invocation".
        print(f"repro: store: {exc}", file=sys.stderr)
        return 4 if isinstance(exc, StoreCorruptError) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
