"""Experiment workers: the per-task bodies of the paper's sweeps.

These functions are the payload handlers handed to
:func:`repro.harness.engine.run_tasks`.  Each takes one picklable
payload, rebuilds whatever BDDs it needs inside the calling process
(workers own their manager — graphs never cross process boundaries),
and returns plain-data rows ready for both table rendering and the
``BENCH_*.json`` trajectory files.

They live in the package (rather than in ``benchmarks/``) so the
benchmark modules, the CLI, and the determinism tests all drive the
*same* experiment bodies: the parallel engine is required to reproduce
the sequential rows byte for byte, which only makes sense when both
paths share one implementation.
"""

from __future__ import annotations

from contextlib import nullcontext

from ..bdd.counting import shared_size
from ..core.approx import (bdd_under_approx, c1, c2, heavy_branch_subset,
                           remap_under_approx, short_paths_subset)
from ..core.decomp import DECOMPOSERS, decompose
from ..fsm.encode import encode
from ..reach import (FrontierSharder, PartialImagePolicy, ShardConfig,
                     TransitionRelation, TraversalLimit,
                     bfs_reachability, count_states,
                     high_density_reachability)
from .population import build_entries, make_circuit

__all__ = [
    "SIMPLE_METHODS",
    "COMPOUND_METHODS",
    "DECOMP_METHODS",
    "simple_approx_rows",
    "compound_approx_rows",
    "decomposition_rows",
    "reachability_row",
]

#: Table 2 column order (F is the unapproximated function).
SIMPLE_METHODS = ("F", "HB", "SP", "UA", "RUA")
#: Table 3 column order.
COMPOUND_METHODS = ("RUA", "SP", "C1", "C2")
#: Table 4 column order.
DECOMP_METHODS = tuple(DECOMPOSERS)


def _entry_managers(entries):
    return {id(e.function.manager): e.function.manager for e in entries}


def _aggregate_stats(entries) -> dict:
    """Merge the manager snapshots behind a slice into one plain dict."""
    merged = {"managers": 0, "nodes": 0, "peak_nodes": 0,
              "cache_hits": 0, "cache_misses": 0, "cache_evictions": 0,
              "gc_count": 0, "gc_reclaimed": 0, "gc_pause_total": 0.0,
              "aborts": 0, "degradations": 0}
    for manager in _entry_managers(entries).values():
        stats = manager.stats
        merged["managers"] += 1
        merged["nodes"] += stats.nodes
        merged["peak_nodes"] += stats.peak_nodes
        merged["cache_hits"] += stats.cache_hits
        merged["cache_misses"] += stats.cache_misses
        merged["cache_evictions"] += stats.cache_evictions
        merged["gc_count"] += stats.gc_count
        merged["gc_reclaimed"] += stats.gc_reclaimed
        merged["gc_pause_total"] += stats.gc_pause_total
        merged["aborts"] += stats.total_aborts
        merged["degradations"] += stats.total_degradations
    return merged


# ----------------------------------------------------------------------
# Tables 2 and 3: approximation sweeps over the population
# ----------------------------------------------------------------------

def simple_approx_rows(payload) -> dict:
    """Table 2 worker: the simple methods over one population slice.

    ``payload`` is ``(spec, min_nodes)``.  Protocol follows the paper:
    UA/RUA run with threshold 0 and quality 1; the RUA result sizes are
    used as the size budgets for HB and SP.
    """
    spec, min_nodes = payload
    entries = build_entries(spec, min_nodes=min_nodes)
    rows = []
    for entry in entries:
        f = entry.function
        nvars = f.manager.num_vars
        rua = remap_under_approx(f, threshold=0, quality=1.0)
        budget = max(1, len(rua))
        results = {
            "F": f,
            "HB": heavy_branch_subset(f, budget),
            "SP": short_paths_subset(f, budget),
            "UA": bdd_under_approx(f, threshold=0),
            "RUA": rua,
        }
        # The backend label is an optional trajectory field: compared
        # exactly when both files carry it, skipped against baselines
        # that predate pluggable stores.
        row = {"key": entry.name, "backend": f.manager.backend}
        for name, g in results.items():
            assert g <= f, f"{name} broke the subset contract"
            row[f"{name}_nodes"] = len(g)
            row[f"{name}_minterms"] = g.sat_count(nvars)
        rows.append(row)
    return {"rows": rows, "manager_stats": _aggregate_stats(entries)}


def compound_approx_rows(payload) -> dict:
    """Table 3 worker: compound methods C1/C2 over one slice.

    ``payload`` is ``(spec, min_nodes)``.  C1 = RUA + safe minimization;
    C2 = SP + RUA + safe minimization with the SP threshold set to the
    RUA result size, as in the paper's protocol.
    """
    spec, min_nodes = payload
    entries = build_entries(spec, min_nodes=min_nodes)
    rows = []
    for entry in entries:
        f = entry.function
        nvars = f.manager.num_vars
        rua = remap_under_approx(f, threshold=0, quality=1.0)
        sp = short_paths_subset(f, max(1, len(rua)))
        c1_result = c1(f)
        c2_result = c2(f, sp_threshold=max(1, len(rua)))
        for name, g in (("C1", c1_result), ("C2", c2_result)):
            assert g <= f, f"{name} broke the subset contract"
        assert c1_result.sat_count(nvars) >= rua.sat_count(nvars)
        row = {"key": entry.name}
        for name, g in (("RUA", rua), ("SP", sp), ("C1", c1_result),
                        ("C2", c2_result)):
            row[f"{name}_nodes"] = len(g)
            row[f"{name}_minterms"] = g.sat_count(nvars)
        rows.append(row)
    return {"rows": rows, "manager_stats": _aggregate_stats(entries)}


# ----------------------------------------------------------------------
# Table 4: decomposition sweep
# ----------------------------------------------------------------------

def decomposition_rows(payload) -> dict:
    """Table 4 worker: the two-way decompositions over one slice.

    ``payload`` is ``(spec, min_nodes)``.  Each row records, per method,
    the shared size of the factor pair, |G|, |H|, and the larger factor
    (the paper's win criterion), plus ``f_nodes`` so callers can slice
    the population into the paper's two size classes.
    """
    spec, min_nodes = payload
    entries = build_entries(spec, min_nodes=min_nodes)
    rows = []
    for entry in entries:
        f = entry.function
        row = {"key": entry.name, "f_nodes": len(f)}
        for method in DECOMP_METHODS:
            g, h = decompose(f, method)
            assert (g & h) == f, f"{method} broke f = g*h"
            row[f"{method}_shared"] = shared_size(
                f.manager.store, [g.node, h.node])
            row[f"{method}_g"] = len(g)
            row[f"{method}_h"] = len(h)
            row[f"{method}_big"] = max(len(g), len(h))
        rows.append(row)
    return {"rows": rows, "manager_stats": _aggregate_stats(entries)}


# ----------------------------------------------------------------------
# Table 1: reachability analysis
# ----------------------------------------------------------------------

def reachability_row(payload) -> dict:
    """Table 1 worker: one (circuit, method) reachability run.

    ``payload`` is a dict with keys

    ``factory``, ``args``
        circuit recipe (see ``CIRCUIT_FACTORIES``),
    ``method``
        ``"bfs"``, ``"rua"`` or ``"sp"``,
    ``threshold``, ``quality``
        subsetting parameters (quality is RUA-only),
    ``pimg``
        optional ``(trigger, threshold)`` partial-image policy,
    ``deadline``
        wall-clock budget in seconds for the traversal itself (a BFS
        run over budget reports ``traverse_seconds: None`` — the
        paper's ">2 weeks" entries — instead of failing the task),
    ``node_budget``, ``step_budget``
        optional governor budgets armed (``Manager.with_budget``)
        around the traversal,
    ``on_blowup``
        reaction to governor aborts (default ``"raise"``, in which case
        the abort escapes and the engine records a typed ``budget``
        failure row; ``"subset"``/``"retry-reorder"`` degrade through
        the escalation ladder and the row completes normally),
    ``shards``, ``shard_selector``, ``shard_min_frontier``
        optional sharded-traversal policy (``shards`` > 1 routes every
        image through a :class:`~repro.reach.shard.FrontierSharder`;
        the reached set and traces are byte-identical either way, and
        the row gains ``shards``/``resplits``/``shard_fallbacks``).

    The row's ``traverse_seconds`` is the paper-table number; the
    engine separately reports whole-task seconds including the circuit
    rebuild.  ``aborts``/``degradations`` count governor events during
    the run (0 on unbudgeted runs).
    """
    circuit = make_circuit(payload["factory"], tuple(payload["args"]))
    encoded = encode(circuit)
    tr = TransitionRelation(encoded)
    init = encoded.initial_states()
    method = payload["method"]
    shards = payload.get("shards", 1)
    sharder = nullcontext(None)
    if shards > 1:
        config = ShardConfig(
            shards=shards,
            selector=payload.get("shard_selector", "relation"),
            min_frontier=payload.get("shard_min_frontier", 2000),
            node_budget=payload.get("node_budget") or 0,
            step_budget=payload.get("step_budget") or 0)
        sharder = FrontierSharder(
            tr, config,
            spec=("factory", payload["factory"],
                  tuple(payload["args"])))
    row = {
        "key": f"{payload.get('name', circuit.name)}/{method}",
        "circuit": circuit.name,
        "method": method,
        "ff": circuit.num_latches,
        "backend": encoded.manager.backend,
    }
    deadline = payload.get("deadline")
    on_blowup = payload.get("on_blowup", "raise")
    node_budget = payload.get("node_budget")
    step_budget = payload.get("step_budget")
    if node_budget is None and step_budget is None:
        budget = nullcontext()
    else:
        budget = encoded.manager.with_budget(node_budget=node_budget,
                                             step_budget=step_budget)
    if method == "bfs":
        try:
            with budget, sharder as sh:
                result = bfs_reachability(tr, init, deadline=deadline,
                                          on_blowup=on_blowup,
                                          sharder=sh)
        except TraversalLimit:
            stats = encoded.manager.stats
            row.update(states=None, traverse_seconds=None,
                       iterations=None, complete=False,
                       peak_nodes=stats.peak_nodes,
                       aborts=stats.total_aborts,
                       degradations=stats.total_degradations,
                       manager_stats=stats.as_dict())
            return row
    else:
        threshold = payload.get("threshold", 0)
        quality = payload.get("quality", 1.0)
        if method == "rua":
            def subset(f, *, threshold=0):
                return remap_under_approx(f, threshold,
                                          quality=quality)
        elif method == "sp":
            def subset(f, *, threshold=0):
                return short_paths_subset(f, threshold)
        else:
            raise ValueError(f"unknown traversal method {method!r}")
        policy = None
        pimg = payload.get("pimg")
        if pimg is not None:
            policy = PartialImagePolicy(subset=subset,
                                        trigger=pimg[0],
                                        threshold=pimg[1])
        with budget, sharder as sh:
            result = high_density_reachability(
                tr, init, subset, threshold=threshold, partial=policy,
                deadline=deadline, on_blowup=on_blowup, sharder=sh)
    stats = encoded.manager.stats
    row.update(
        states=count_states(result.reached, encoded.state_vars),
        traverse_seconds=round(result.seconds, 3),
        iterations=result.iterations,
        complete=bool(result.complete),
        reached_nodes=len(result.reached),
        peak_nodes=stats.peak_nodes,
        aborts=stats.total_aborts,
        degradations=stats.total_degradations,
        manager_stats=stats.as_dict(),
    )
    if result.shard_stats is not None:
        row.update(shards=shards,
                   resplits=result.shard_stats["resplits"],
                   shard_fallbacks=result.shard_stats["fallbacks"])
    return row
