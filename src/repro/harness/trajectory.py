"""Persisted benchmark trajectory: ``BENCH_<name>.json`` files.

Every benchmark run serializes a machine-readable result file so that
future performance work is judged against a recorded baseline instead of
anecdotes.  The format (schema version 1):

.. code-block:: json

    {
      "schema": 1,
      "name": "table2",
      "created": "2026-08-05T12:00:00+00:00",
      "git_rev": "440fb5f",
      "python": "3.11.7",
      "scale": "quick",
      "jobs": 2,
      "total_seconds": 12.3,
      "rows": [ {"key": "...", ...}, ... ],
      "failures": [ {"key": "...", "status": "timeout", ...}, ... ]
    }

Row conventions
---------------
``key``
    Unique row identifier; rows are matched across files by key.
``seconds``
    Optional wall-clock time of the row.  Compared with a *ratio
    tolerance* (a row regresses when ``current > tolerance * baseline``
    and the baseline is above the noise floor).
int / str / bool / None fields
    Deterministic results (node counts, minterm counts, state counts,
    statuses).  Compared for exact equality — any difference is a
    *mismatch* and fails the comparison.
``aborts`` / ``degradations`` / ``backend`` / ``shards`` /
``resplits`` / ``shard_fallbacks`` / ``spec``
    Optional fields (schema-compatible additions): the governor
    counters, the node-store backend the row was produced on, the
    sharded-traversal policy and fault counters, and the task payload
    digest resume runs match against (:func:`spec_digest`).  Compared
    exactly when both files carry them, skipped against baselines
    written before the fields existed.
other floats and nested objects
    Informational (timings inside manager stats etc.); ignored by the
    comparator.

:func:`compare` loads-and-diffs two such files; the ``repro
trajectory`` CLI command (and ``python -m repro.harness.trajectory``)
wraps it for CI gates.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

__all__ = [
    "SCHEMA_VERSION",
    "bench_payload",
    "write_bench",
    "load_bench",
    "git_rev",
    "spec_digest",
    "task_rows",
    "failure_rows",
    "resume_tasks",
    "merge_rows",
    "RowDelta",
    "TrajectoryReport",
    "compare",
    "compare_files",
    "main",
]

SCHEMA_VERSION = 1


def git_rev(cwd: str | None = None) -> str | None:
    """Short git revision of ``cwd``'s repository, or None."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=cwd,
            capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return None
    rev = proc.stdout.strip()
    return rev if proc.returncode == 0 and rev else None


def bench_payload(name: str, rows: list[dict], *,
                  scale: str | None = None, jobs: int = 1,
                  failures: list[dict] | None = None,
                  total_seconds: float = 0.0,
                  extra: dict | None = None) -> dict:
    """Assemble a schema-1 trajectory payload for one benchmark run."""
    payload = {
        "schema": SCHEMA_VERSION,
        "name": name,
        "created": datetime.now(timezone.utc).isoformat(
            timespec="seconds"),
        "git_rev": git_rev(),
        "python": platform.python_version(),
        "scale": scale,
        "jobs": jobs,
        "total_seconds": round(total_seconds, 3),
        "rows": list(rows),
        "failures": list(failures or ()),
    }
    if extra:
        payload.update(extra)
    return payload


def write_bench(path: str | Path, payload: dict) -> Path:
    """Serialize a payload to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=False)
                    + "\n")
    return path


def load_bench(path: str | Path) -> dict:
    """Load and minimally validate a ``BENCH_*.json`` file."""
    data = json.loads(Path(path).read_text())
    schema = data.get("schema")
    if schema != SCHEMA_VERSION:
        raise ValueError(f"{path}: unsupported trajectory schema "
                         f"{schema!r} (expected {SCHEMA_VERSION})")
    if not isinstance(data.get("rows"), list):
        raise ValueError(f"{path}: missing 'rows' list")
    return data


def spec_digest(payload: object) -> str:
    """Stable digest of one task payload.

    Recorded into ``task/<key>`` rows (``spec`` field) and checked by
    :func:`resume_tasks`, so a resumed benchmark re-runs any task whose
    inputs changed since the partial file was written instead of
    silently reusing a stale result.
    """
    return hashlib.sha256(
        repr(payload).encode("utf-8")).hexdigest()[:12]


def task_rows(run, specs: dict[str, str] | None = None) -> list[dict]:
    """Per-task timing/stats rows of an :class:`EngineRun`.

    One row per task, keyed ``task/<key>`` so the engine timings live in
    the same trajectory file as the experiment's own rows without key
    collisions.  The ``seconds`` field is ratio-gated by the comparator;
    ``status``/``attempts`` are compared exactly.  ``specs`` (key ->
    :func:`spec_digest`) stamps each row with its payload digest,
    enabling :func:`resume_tasks` on the written file.
    """
    rows = []
    for outcome in run.outcomes:
        row = {"key": f"task/{outcome.key}", "status": outcome.status,
               "seconds": round(outcome.seconds, 3),
               "attempts": outcome.attempts}
        if specs and outcome.key in specs:
            row["spec"] = specs[outcome.key]
        if isinstance(outcome.result, dict) and \
                "manager_stats" in outcome.result:
            row["manager_stats"] = outcome.result["manager_stats"]
        rows.append(row)
    return rows


def failure_rows(run) -> list[dict]:
    """Engine failures as plain dicts for the ``failures`` section."""
    return [{"key": o.key, "status": o.status, "attempts": o.attempts,
             "error": o.error} for o in run.failures]


def resume_tasks(path: str | Path, tasks: list) -> tuple[list,
                                                         list[dict]]:
    """Split ``tasks`` against a partial ``BENCH_*.json`` file.

    Returns ``(remaining, previous_rows)``.  A task is *done* — and
    dropped from ``remaining`` — when the file holds a ``task/<key>``
    row with ``status == "ok"`` whose ``spec`` digest matches
    :func:`spec_digest` of the task's payload; rows written without a
    digest, with a different digest (the task's inputs changed), or
    with a non-ok status always re-run.  ``previous_rows`` is the
    file's full row list, ready for :func:`merge_rows` with the rows
    of the resumed run.
    """
    data = load_bench(path)
    rows = data["rows"]
    done: dict[str, str | None] = {}
    for row in rows:
        key = row.get("key", "")
        if isinstance(key, str) and key.startswith("task/") \
                and row.get("status") == "ok":
            done[key[len("task/"):]] = row.get("spec")
    remaining = [task for task in tasks
                 if done.get(task.key) is None
                 or done[task.key] != spec_digest(task.payload)]
    return remaining, rows


def merge_rows(previous: list[dict],
               current: list[dict]) -> list[dict]:
    """Union of two row lists by ``key``; current rows win.

    Previous-only rows keep their original order (resumed results stay
    where the partial run wrote them); refreshed and new rows follow.
    """
    merged = {row["key"]: row for row in previous if "key" in row}
    for row in current:
        merged[row["key"]] = row
    return list(merged.values())


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------

#: Row fields never compared (metadata and known-noisy values).
_IGNORED_FIELDS = frozenset({"seconds", "manager_stats"})

#: Optional row fields: compared exactly when both sides carry them,
#: skipped when either side predates the field.  Lets newer runs add
#: counters (governor aborts, degradation events, sharded-traversal
#: policy and fault counters) and labels (the node-store backend)
#: without invalidating every committed baseline.
_OPTIONAL_FIELDS = frozenset({"aborts", "degradations", "backend",
                              "shards", "resplits", "shard_fallbacks",
                              "spec"})


@dataclass
class RowDelta:
    """Per-row comparison of a current run against the baseline."""

    key: str
    baseline_seconds: float | None = None
    current_seconds: float | None = None
    #: current/baseline time ratio (None when either side lacks timing)
    ratio: float | None = None
    #: True when the ratio exceeds the tolerance above the noise floor
    regressed: bool = False
    #: deterministic fields that differ: field -> (baseline, current)
    mismatches: dict = field(default_factory=dict)


@dataclass
class TrajectoryReport:
    """Outcome of comparing two trajectory files."""

    name: str
    tolerance: float
    time_floor: float
    deltas: list[RowDelta] = field(default_factory=list)
    #: keys present in the baseline but absent from the current run
    missing: list[str] = field(default_factory=list)
    #: keys new in the current run (informational, does not fail)
    added: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[RowDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def mismatched(self) -> list[RowDelta]:
        return [d for d in self.deltas if d.mismatches]

    @property
    def ok(self) -> bool:
        return not (self.regressions or self.mismatched or self.missing)

    def summary(self) -> str:
        lines = [f"trajectory '{self.name}': {len(self.deltas)} rows "
                 f"compared (tolerance {self.tolerance:g}x, "
                 f"time floor {self.time_floor:g}s)"]
        for delta in self.deltas:
            if delta.ratio is not None and (delta.regressed or
                                            abs(delta.ratio - 1) > .25):
                mark = "REGRESSION" if delta.regressed else "drift"
                lines.append(
                    f"  {mark:<10} {delta.key}: "
                    f"{delta.baseline_seconds:.3f}s -> "
                    f"{delta.current_seconds:.3f}s "
                    f"({delta.ratio:.2f}x)")
            for name, (base, cur) in delta.mismatches.items():
                lines.append(f"  MISMATCH   {delta.key}.{name}: "
                             f"{base!r} -> {cur!r}")
        for key in self.missing:
            lines.append(f"  MISSING    {key} (in baseline only)")
        for key in self.added:
            lines.append(f"  added      {key} (new row)")
        lines.append("status: " + ("OK" if self.ok else "FAIL "
                     f"({len(self.regressions)} regressions, "
                     f"{len(self.mismatched)} mismatched rows, "
                     f"{len(self.missing)} missing rows)"))
        return "\n".join(lines)


def _comparable(value: object) -> bool:
    """Deterministic scalar? (bool before int: bool is an int subtype)"""
    return value is None or isinstance(value, (bool, int, str))


def compare(baseline: dict, current: dict, *, tolerance: float = 1.5,
            time_floor: float = 0.05) -> TrajectoryReport:
    """Diff two trajectory payloads row by row.

    ``tolerance`` is the acceptable current/baseline wall-clock ratio;
    rows whose baseline time is under ``time_floor`` seconds never count
    as regressions (micro-rows drown in scheduler noise).
    """
    report = TrajectoryReport(
        name=current.get("name") or baseline.get("name") or "?",
        tolerance=tolerance, time_floor=time_floor)
    base_rows = {row["key"]: row for row in baseline["rows"]}
    cur_rows = {row["key"]: row for row in current["rows"]}
    report.missing = [k for k in base_rows if k not in cur_rows]
    report.added = [k for k in cur_rows if k not in base_rows]
    for key, base in base_rows.items():
        cur = cur_rows.get(key)
        if cur is None:
            continue
        delta = RowDelta(key=key)
        base_s, cur_s = base.get("seconds"), cur.get("seconds")
        if isinstance(base_s, (int, float)) and \
                isinstance(cur_s, (int, float)):
            delta.baseline_seconds = float(base_s)
            delta.current_seconds = float(cur_s)
            if base_s > 0:
                delta.ratio = cur_s / base_s
                delta.regressed = base_s >= time_floor and \
                    cur_s > tolerance * base_s
        for name in sorted(set(base) | set(cur)):
            if name == "key" or name in _IGNORED_FIELDS:
                continue
            if name in _OPTIONAL_FIELDS and (name not in base
                                             or name not in cur):
                continue
            base_v, cur_v = base.get(name), cur.get(name)
            if not (_comparable(base_v) and _comparable(cur_v)):
                continue
            if base_v != cur_v:
                delta.mismatches[name] = (base_v, cur_v)
        report.deltas.append(delta)
    return report


def compare_files(baseline_path: str | Path, current_path: str | Path,
                  *, tolerance: float = 1.5,
                  time_floor: float = 0.05) -> TrajectoryReport:
    """:func:`compare` over two files on disk."""
    return compare(load_bench(baseline_path), load_bench(current_path),
                   tolerance=tolerance, time_floor=time_floor)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trajectory",
        description="Compare two BENCH_*.json benchmark trajectory "
                    "files (exit 1 on regression/mismatch).")
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("current", help="current BENCH_*.json")
    parser.add_argument("--tolerance", type=float, default=1.5,
                        help="acceptable current/baseline wall-clock "
                             "ratio (default: 1.5)")
    parser.add_argument("--time-floor", type=float, default=0.05,
                        help="rows faster than this many baseline "
                             "seconds never regress (default: 0.05)")
    args = parser.parse_args(argv)
    report = compare_files(args.baseline, args.current,
                           tolerance=args.tolerance,
                           time_floor=args.time_floor)
    print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
