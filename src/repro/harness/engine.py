"""Parallel experiment engine with per-task fault isolation.

The paper's results are population-scale sweeps: Tables 2-4 run several
approximation/decomposition configurations over hundreds of functions,
Table 1 runs reachability over a circuit suite.  Every task of such a
sweep is independent, so the engine fans them out over a pool of worker
*processes*.  BDD graphs cannot be shared across processes; instead each
task carries a small picklable payload (typically an
:class:`~repro.harness.population.EntrySpec`) from which the worker
rebuilds its slice of the population deterministically and returns
plain-data result rows.

Fault isolation
---------------
A worker owns nothing the parent needs: when a task misbehaves, the
parent

* enforces a per-task **wall-clock timeout** (the worker process is
  terminated and replaced),
* captures **crashed workers** (a worker that dies without reporting —
  segfault, ``os._exit``, OOM kill — is detected through its process
  sentinel), and
* grants a **bounded retry** (``retries`` extra attempts) before the
  row is marked failed; the failing payload's key stays in the result
  set either way, so a sweep never silently drops rows, and
* records in-process **governor aborts**
  (:class:`~repro.bdd.governor.ResourceError`: node/step budget or
  deadline exceeded inside a kernel) as typed ``budget`` failure rows
  *without* retrying — a deterministic blow-up re-runs identically, so
  retries would only burn the bounded attempts that crash/timeout rows
  need.

Concurrency is selected with ``jobs`` (or the ``REPRO_BENCH_JOBS``
environment variable, see :func:`resolve_jobs`).  With ``jobs=1`` and no
timeout the engine degrades to a plain in-process loop — the sequential
reference path that parallel runs must reproduce row for row.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from collections import deque
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from multiprocessing.connection import wait as _wait_connections

from ..bdd.governor import ResourceError

__all__ = [
    "Task",
    "TaskOutcome",
    "EngineRun",
    "WorkerPool",
    "resolve_jobs",
    "run_tasks",
]

#: Outcome statuses.
OK = "ok"
ERROR = "error"
TIMEOUT = "timeout"
CRASHED = "crashed"
#: An in-process governor abort (BudgetExceeded/DeadlineExceeded).
#: Deterministic, so never retried — see `run_tasks`.
BUDGET = "budget"


@dataclass(frozen=True)
class Task:
    """One unit of work: a key naming the row and a picklable payload."""

    key: str
    payload: object = None
    #: per-task wall-clock budget in seconds, overriding the engine-wide
    #: ``timeout`` (None: inherit)
    timeout: float | None = None


@dataclass
class TaskOutcome:
    """Result row of one task, successful or not."""

    key: str
    status: str
    #: the worker's return value (plain data); None unless status is ok
    result: object = None
    #: wall-clock seconds of the last attempt (in the worker for ok and
    #: error rows, as observed by the parent for timeouts and crashes)
    seconds: float = 0.0
    #: attempts consumed (1 = first try succeeded)
    attempts: int = 1
    #: diagnostic for failed rows (exception text, timeout note, ...)
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == OK


@dataclass
class EngineRun:
    """All outcomes of one engine invocation, in task order."""

    outcomes: list[TaskOutcome]
    jobs: int
    total_seconds: float

    @property
    def failures(self) -> list[TaskOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def results(self) -> dict[str, object]:
        """Map key -> result for the successful rows."""
        return {o.key: o.result for o in self.outcomes if o.ok}

    def raise_on_failure(self) -> "EngineRun":
        """Assert-style helper: error out unless every row succeeded."""
        if self.failures:
            detail = "; ".join(f"{o.key}: {o.status} ({o.error})"
                               for o in self.failures)
            raise RuntimeError(f"{len(self.failures)} task(s) failed: "
                               f"{detail}")
        return self


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a worker count from an explicit value or the environment.

    Resolution order: explicit ``jobs`` argument, then the
    ``REPRO_BENCH_JOBS`` environment variable, then 1 (sequential).
    Zero or negative values mean "all cores".
    """
    if jobs is None:
        env = os.environ.get("REPRO_BENCH_JOBS", "").strip()
        if env:
            try:
                jobs = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_BENCH_JOBS must be an integer, got {env!r}")
    if jobs is None:
        return 1
    if jobs <= 0:
        return max(1, os.cpu_count() or 1)
    return jobs


def run_tasks(worker: Callable[[object], object],
              tasks: Iterable[Task],
              *,
              jobs: int | None = None,
              timeout: float | None = None,
              retries: int = 1,
              start_method: str | None = None) -> EngineRun:
    """Run ``worker(task.payload)`` for every task, possibly in parallel.

    Parameters
    ----------
    worker:
        Callable executed once per task.  Under multiprocessing it runs
        in a forked worker, so it must not depend on parent-side mutable
        state; its return value must be picklable plain data.
    tasks:
        The work list.  Outcomes come back in the same order.
    jobs:
        Worker processes (see :func:`resolve_jobs`).  ``1`` with no
        timeout runs everything inline in this process.
    timeout:
        Per-task wall-clock budget in seconds (None: unlimited).  A task
        exceeding it has its worker terminated; with ``jobs=1`` a
        timeout still forces a single worker subprocess so the budget is
        enforceable.
    retries:
        Extra attempts granted to a failing task before its row is
        marked failed.  Budget rows (a governor
        :class:`~repro.bdd.governor.ResourceError` escaping the worker)
        are exempt: the abort is deterministic, so the row settles as
        ``budget`` on the first attempt.
    start_method:
        Multiprocessing start method; default prefers ``fork`` (workers
        inherit the parent's imported modules, so worker callables
        defined in scripts and benchmark modules stay reachable).
    """
    tasks = list(tasks)
    if retries < 0:
        raise ValueError("retries must be >= 0")
    jobs = resolve_jobs(jobs)
    start = time.perf_counter()
    if jobs <= 1 and timeout is None and \
            all(t.timeout is None for t in tasks):
        outcomes = [_run_inline(worker, task, retries) for task in tasks]
        return EngineRun(outcomes=outcomes, jobs=1,
                         total_seconds=time.perf_counter() - start)
    with WorkerPool(worker, jobs=jobs, timeout=timeout, retries=retries,
                    start_method=start_method) as pool:
        return pool.run(tasks)


# ----------------------------------------------------------------------
# Sequential reference path
# ----------------------------------------------------------------------

def _run_inline(worker, task: Task, retries: int) -> TaskOutcome:
    outcome = None
    for attempt in range(1, retries + 2):
        begin = time.perf_counter()
        try:
            result = worker(task.payload)
        except ResourceError as exc:
            # Deterministic in-process abort: re-running would blow the
            # same budget again, so settle without consuming retries.
            return TaskOutcome(
                key=task.key, status=BUDGET,
                seconds=time.perf_counter() - begin, attempts=attempt,
                error=_format_exception(exc))
        except Exception as exc:
            outcome = TaskOutcome(
                key=task.key, status=ERROR,
                seconds=time.perf_counter() - begin, attempts=attempt,
                error=_format_exception(exc))
        else:
            return TaskOutcome(key=task.key, status=OK, result=result,
                               seconds=time.perf_counter() - begin,
                               attempts=attempt)
    return outcome


def _format_exception(exc: BaseException) -> str:
    return "".join(traceback.format_exception_only(type(exc),
                                                   exc)).strip()


# ----------------------------------------------------------------------
# Multiprocessing pool with fault isolation
# ----------------------------------------------------------------------

def _worker_main(worker, conn) -> None:
    """Worker loop: receive payloads, send (status, result, s, error)."""
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        begin = time.perf_counter()
        try:
            result = worker(item)
            message = (OK, result, time.perf_counter() - begin, None)
        except ResourceError as exc:
            message = (BUDGET, None, time.perf_counter() - begin,
                       _format_exception(exc))
        except BaseException as exc:
            message = (ERROR, None, time.perf_counter() - begin,
                       _format_exception(exc))
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            return
        except Exception as exc:
            # The result itself refused to pickle; the row fails but the
            # worker survives for the next task.
            conn.send((ERROR, None, time.perf_counter() - begin,
                       f"result not picklable: {exc!r}"))


class _Worker:
    """Parent-side handle: one process, one duplex pipe, one task slot."""

    __slots__ = ("conn", "process", "index", "attempt", "started",
                 "deadline")

    def __init__(self, ctx, worker_fn) -> None:
        self.conn, child = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=_worker_main,
                                   args=(worker_fn, child), daemon=True)
        self.process.start()
        child.close()
        self.index: int | None = None

    def assign(self, index: int, payload: object, attempt: int,
               timeout: float | None) -> None:
        self.index = index
        self.attempt = attempt
        self.started = time.perf_counter()
        self.deadline = None if timeout is None \
            else self.started + timeout
        self.conn.send(payload)

    def elapsed(self) -> float:
        return time.perf_counter() - self.started

    def stop(self) -> None:
        """Graceful shutdown of an idle worker."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.kill(grace=2.0)

    def kill(self, grace: float = 0.0) -> None:
        """Hard shutdown; escalates terminate -> kill."""
        if grace:
            self.process.join(timeout=grace)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass


def _pick_start_method(requested: str | None) -> str:
    if requested is not None:
        return requested
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class WorkerPool:
    """A persistent pool of worker processes with fault isolation.

    Unlike :func:`run_tasks` — which historically spawned and tore down
    its workers on every invocation — a ``WorkerPool`` keeps its worker
    processes alive across :meth:`run` calls.  That is what makes the
    sharded-reachability coordinator (:mod:`repro.reach.shard`)
    economical: each worker builds its constrained transition relation
    once and serves an image request per BFS step from a warm manager.

    The pool is lazy: workers are spawned on first use, never more than
    ``jobs`` of them, and a worker killed for a timeout or crash is
    replaced on the spot.  :meth:`run` preserves the :func:`run_tasks`
    semantics exactly (same statuses, same retry policy, same task
    ordering of the outcome list).

    Use as a context manager, or call :meth:`close` — an abandoned pool
    would otherwise keep daemon processes alive until interpreter exit.
    """

    def __init__(self, worker: Callable[[object], object], *,
                 jobs: int | None = None,
                 timeout: float | None = None,
                 retries: int = 1,
                 start_method: str | None = None) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.worker = worker
        self.jobs = resolve_jobs(jobs)
        self.timeout = timeout
        self.retries = retries
        self._ctx = multiprocessing.get_context(
            _pick_start_method(start_method))
        self._workers: list[_Worker] = []
        self._closed = False

    @property
    def start_method(self) -> str:
        return self._ctx.get_start_method()

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (spawn order)."""
        return [w.process.pid for w in self._workers
                if w.process.is_alive()]

    def run(self, tasks: Iterable[Task],
            timeout: float | None = None) -> EngineRun:
        """Run every task on the pool; workers stay warm afterwards.

        ``timeout`` overrides the pool-wide default for this run only
        (per-task ``Task.timeout`` still wins).  If the run is aborted
        by an exception, every busy worker is killed — a worker stuck
        mid-task cannot be reused — and idle ones survive.
        """
        if self._closed:
            raise RuntimeError("pool is closed")
        tasks = list(tasks)
        start = time.perf_counter()
        run_timeout = self.timeout if timeout is None else timeout
        outcomes: list[TaskOutcome | None] = [None] * len(tasks)
        #: (task index, attempt number) still to dispatch
        pending: deque[tuple[int, int]] = deque(
            (i, 1) for i in range(len(tasks)))
        workers = self._workers

        def task_timeout(task: Task) -> float | None:
            return run_timeout if task.timeout is None else task.timeout

        def settle(w: _Worker, status: str, *, result=None,
                   seconds=None, error=None) -> None:
            """Record one attempt's outcome, or requeue it for a retry.

            Budget rows never requeue: a governor abort is
            deterministic (same payload, same budget, same abort),
            unlike the transient failures — crash, timeout — the
            bounded retry exists for.
            """
            index, attempt = w.index, w.attempt
            w.index = None
            if status not in (OK, BUDGET) and attempt <= self.retries:
                pending.append((index, attempt + 1))
                return
            outcomes[index] = TaskOutcome(
                key=tasks[index].key, status=status, result=result,
                seconds=w.elapsed() if seconds is None else seconds,
                attempts=attempt, error=error)

        try:
            while pending or any(w.index is not None for w in workers):
                # Keep the pool at strength while work is dispatchable.
                idle = sum(w.index is None for w in workers)
                while len(workers) < self.jobs and idle < len(pending):
                    workers.append(_Worker(self._ctx, self.worker))
                    idle += 1
                for w in workers:
                    if w.index is None and pending:
                        index, attempt = pending.popleft()
                        w.assign(index, tasks[index].payload, attempt,
                                 task_timeout(tasks[index]))

                busy = [w for w in workers if w.index is not None]
                if not busy:
                    continue
                now = time.perf_counter()
                deadlines = [w.deadline for w in busy
                             if w.deadline is not None]
                wait_for = max(0.0, min(deadlines) - now) if deadlines \
                    else None
                ready = set(_wait_connections(
                    [w.conn for w in busy] + [w.process.sentinel
                                              for w in busy],
                    timeout=wait_for))

                now = time.perf_counter()
                for i, w in enumerate(workers):
                    if w.index is None:
                        continue
                    if w.conn in ready:
                        try:
                            status, result, seconds, error = \
                                w.conn.recv()
                        except (EOFError, OSError):
                            # Worker died while (or instead of)
                            # reporting.
                            settle(w, CRASHED,
                                   error=_crash_note(w.process))
                            w.kill()
                            workers[i] = _Worker(self._ctx, self.worker)
                        else:
                            settle(w, status, result=result,
                                   seconds=seconds, error=error)
                        continue
                    if w.deadline is not None and now >= w.deadline:
                        budget = task_timeout(tasks[w.index])
                        settle(w, TIMEOUT,
                               error=f"timed out after {budget:.1f}s")
                        w.kill()
                        workers[i] = _Worker(self._ctx, self.worker)
                        continue
                    if w.process.sentinel in ready and \
                            not w.process.is_alive():
                        if w.conn.poll():
                            # The result beat the death notice through
                            # the pipe; pick it up on the next turn.
                            continue
                        settle(w, CRASHED, error=_crash_note(w.process))
                        w.kill()
                        workers[i] = _Worker(self._ctx, self.worker)
        except BaseException:
            # Busy workers hold stale assignments and unread pipes;
            # none of them can be trusted for the next run.
            self._discard_workers()
            raise
        return EngineRun(outcomes=outcomes, jobs=self.jobs,
                         total_seconds=time.perf_counter() - start)

    def _discard_workers(self) -> None:
        workers, self._workers = self._workers, []
        for w in workers:
            if w.index is None and w.process.is_alive():
                w.stop()
            else:
                w.kill()

    def close(self) -> None:
        """Shut every worker down; the pool cannot be reused."""
        self._closed = True
        self._discard_workers()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _crash_note(process) -> str:
    code = process.exitcode
    return (f"worker process died without reporting "
            f"(exitcode={code})")
