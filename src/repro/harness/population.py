"""Function populations for the approximation/decomposition tables.

The paper applies its methods "to the outputs and next state functions
of a collection of circuits", keeping the 336 functions (out of 7157)
with at least 5000 BDD nodes.  The circuit collection (ISCAS et al.) is
not redistributable, so the population here is generated from:

* output and next-state functions of the synthetic circuit suite,
* reached-set and frontier snapshots from symbolic traversals of those
  circuits (the BDDs the approximations actually face in Section 4),
* classic hard combinational families — middle multiplier bits, hidden
  weighted bit, non-interleaved adder carries, random DNF — which are
  the standard stand-ins for large industrial cones.

Node thresholds scale down relative to the paper (default 300 against
the paper's 5000) because the substrate is pure Python; the population
statistics in Tables 2–4 are population-relative, so the comparison
shape is preserved (EXPERIMENTS.md discusses the scaling).

The population is addressable in two forms:

* **Specs** (:class:`EntrySpec`) — small picklable recipes naming a
  deterministic generator and its parameters.  Specs are what the
  parallel experiment engine ships to worker processes: BDD graphs
  cannot cross process boundaries, so each worker rebuilds its slice of
  the population from the spec (see :mod:`repro.harness.engine`).
* **Entries** (:class:`PopulationEntry`) — built functions, produced
  from a spec by :func:`build_entries` in whichever process runs the
  experiment.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..bdd.function import Function
from ..bdd.manager import Manager
from ..fsm import encode
from ..fsm.am2910 import am2910
from ..fsm.benchmarks import (checksum_memory, comm_controller,
                              pipeline_controller, serial_multiplier,
                              shift_queue, token_ring)
from ..reach import TransitionRelation


@dataclass
class PopulationEntry:
    """One function of the experiment population."""

    name: str
    function: Function


@dataclass(frozen=True)
class EntrySpec:
    """Picklable recipe for rebuilding a slice of the population.

    ``kind`` selects the builder (see :func:`build_entries`), ``name``
    uniquely identifies the slice inside a population, and ``params`` is
    a flat tuple of plain data — the whole object crosses process
    boundaries by pickling, so it must never hold a ``Function`` or a
    ``Manager``.  One spec may expand into several entries (a traversal
    spec yields every sampled snapshot plus the circuit's next-state and
    output functions).
    """

    kind: str
    name: str
    params: tuple = ()


#: Circuit factories addressable from picklable specs, by name.
CIRCUIT_FACTORIES = {
    "am2910": am2910,
    "checksum_memory": checksum_memory,
    "comm_controller": comm_controller,
    "pipeline_controller": pipeline_controller,
    "serial_multiplier": serial_multiplier,
    "shift_queue": shift_queue,
    "token_ring": token_ring,
}


def make_circuit(factory: str, args: tuple):
    """Instantiate a registered circuit factory from spec parameters."""
    try:
        make = CIRCUIT_FACTORIES[factory]
    except KeyError:
        raise ValueError(f"unknown circuit factory {factory!r}; "
                         f"known: {sorted(CIRCUIT_FACTORIES)}")
    return make(*args)


def multiplier_bit(manager: Manager, n: int, bit: int) -> Function:
    """Output ``bit`` of an n x n combinational multiplier.

    Middle product bits are the canonical exponentially-hard BDD
    functions for any variable order.
    """
    a = [manager.add_var(f"ma{i}") for i in range(n)]
    b = [manager.add_var(f"mb{i}") for i in range(n)]
    width = 2 * n
    columns: list[list[Function]] = [[] for _ in range(width)]
    for i in range(n):
        for j in range(n):
            columns[i + j].append(a[i] & b[j])
    carry_in: list[Function] = []
    result = manager.false
    for k in range(bit + 1):
        bits = columns[k] + carry_in
        carry_out: list[Function] = []
        while len(bits) > 1:
            if len(bits) >= 3:
                x, y, z = bits[:3]
                bits = bits[3:]
                bits.append(x ^ y ^ z)
                carry_out.append((x & y) | (z & (x ^ y)))
            else:
                x, y = bits[:2]
                bits = bits[2:]
                bits.append(x ^ y)
                carry_out.append(x & y)
        result = bits[0] if bits else manager.false
        carry_in = carry_out
    return result


def hidden_weighted_bit(manager: Manager, n: int) -> Function:
    """HWB(x) = x_{weight(x)} (0 if the weight is 0); hard everywhere."""
    xs = [manager.add_var(f"h{i}") for i in range(n)]
    # weight_is[k] = characteristic function of weight == k, built by
    # dynamic programming over the inputs.
    weight_is = [manager.true] + [manager.false] * n
    for x in xs:
        new = [weight_is[0] & ~x]
        for k in range(1, n + 1):
            new.append((weight_is[k] & ~x) | (weight_is[k - 1] & x))
        weight_is = new
    result = manager.false
    for k in range(1, n + 1):
        result = result | (weight_is[k] & xs[k - 1])
    return result


def adder_carry(manager: Manager, n: int) -> Function:
    """Carry-out of an n-bit adder with the two operands *not*
    interleaved — exponential in n for this order."""
    a = [manager.add_var(f"aa{i}") for i in range(n)]
    b = [manager.add_var(f"ab{i}") for i in range(n)]
    carry = manager.false
    for x, y in zip(a, b):
        carry = (x & y) | (carry & (x ^ y))
    return carry


def random_dnf(manager: Manager, variables: list[Function], terms: int,
               width: int, rng: random.Random) -> Function:
    """Disjunction of ``terms`` random ``width``-literal cubes."""
    acc = manager.false
    for _ in range(terms):
        cube = manager.true
        for variable in rng.sample(variables, width):
            cube = cube & (variable if rng.random() < 0.5 else ~variable)
        acc = acc | cube
    return acc


#: Circuits whose traversal snapshots join the population, with the
#: iteration indices to sample: (factory name, args, samples).
_TRAVERSAL_CIRCUITS = (
    ("pipeline_controller", (3, 4), (4, 8, 16)),
    ("shift_queue", (4, 3), (3, 6, 10)),
    ("shift_queue", (5, 3), (4, 8)),
    ("serial_multiplier", (7,), (16, 32, 48)),
    ("comm_controller", (10, 2), (2, 3, 4)),
    ("am2910", (4, 3), (2, 3, 4)),
)


def combinational_specs(seed: int = 2024) -> list[EntrySpec]:
    """Specs of the combinational families (one spec per function)."""
    specs = [EntrySpec("multiplier", f"mult{n}_bit{bit}", (n, bit))
             for n, bit in ((6, 6), (6, 7), (7, 7), (7, 8))]
    specs += [EntrySpec("hwb", f"hwb{n}", (n,)) for n in (11, 12, 13)]
    specs += [EntrySpec("adder", f"adder_carry{n}", (n,))
              for n in (12, 14, 16)]
    # Each DNF draw carries its own derived seed so any slice rebuilds
    # without replaying the draws before it.
    specs += [EntrySpec("dnf", f"dnf{idx}",
                        (18, 14 + 2 * idx, 6, seed * 100003 + idx))
              for idx in range(8)]
    return specs


def traversal_specs() -> list[EntrySpec]:
    """Specs of the traversal-snapshot slices (one spec per circuit)."""
    return [EntrySpec("traversal",
                      f"trav_{factory}_" + "x".join(map(str, args)),
                      (factory, args, samples))
            for factory, args, samples in _TRAVERSAL_CIRCUITS]


def population_specs(seed: int = 2024) -> list[EntrySpec]:
    """Specs of the full Tables 2–4 experiment population."""
    return combinational_specs(seed=seed) + traversal_specs()


def build_entries(spec: EntrySpec,
                  min_nodes: int = 300) -> list[PopulationEntry]:
    """Rebuild the population slice a spec describes.

    Deterministic: the same spec yields structurally identical BDDs (and
    therefore identical node/minterm counts) in any process.  Entries
    below ``min_nodes`` are filtered out, mirroring the paper's >= 5000
    threshold.
    """
    if spec.kind == "traversal":
        return _build_traversal(spec, min_nodes)
    manager = Manager()
    if spec.kind == "multiplier":
        n, bit = spec.params
        function = multiplier_bit(manager, n, bit)
    elif spec.kind == "hwb":
        (n,) = spec.params
        function = hidden_weighted_bit(manager, n)
    elif spec.kind == "adder":
        (n,) = spec.params
        function = adder_carry(manager, n)
    elif spec.kind == "dnf":
        nvars, terms, width, seed = spec.params
        variables = manager.add_vars(*[f"r{i}" for i in range(nvars)])
        function = random_dnf(manager, variables, terms=terms,
                              width=width, rng=random.Random(seed))
    else:
        raise ValueError(f"unknown population spec kind {spec.kind!r}")
    if len(function) < min_nodes:
        return []
    return [PopulationEntry(spec.name, function)]


def _build_traversal(spec: EntrySpec,
                     min_nodes: int) -> list[PopulationEntry]:
    """Reached/frontier snapshots from one circuit's symbolic traversal.

    These are the BDDs approximation meets in reachability analysis:
    partially explored state sets with mixed regular/irregular
    structure.
    """
    factory, args, samples = spec.params
    circuit = make_circuit(factory, tuple(args))
    encoded = encode(circuit)
    tr = TransitionRelation(encoded)
    reached = encoded.initial_states()
    frontier = reached
    iteration = 0
    entries: list[PopulationEntry] = []
    while not frontier.is_false and iteration < max(samples):
        image = tr.image(frontier)
        frontier = image - reached
        reached = reached | frontier
        iteration += 1
        if iteration in samples:
            for kind, function in (("reached", reached),
                                   ("frontier", frontier)):
                if len(function) >= min_nodes:
                    entries.append(PopulationEntry(
                        f"{circuit.name}_{kind}@{iteration}",
                        function))
    # next-state and output functions of the same circuit
    for name, delta in zip(encoded.state_vars,
                           encoded.next_functions):
        if len(delta) >= min_nodes:
            entries.append(PopulationEntry(
                f"{circuit.name}_delta_{name}", delta))
    for name, out in encoded.output_functions.items():
        if len(out) >= min_nodes:
            entries.append(PopulationEntry(
                f"{circuit.name}_out_{name}", out))
    return entries


def combinational_population(min_nodes: int = 300,
                             seed: int = 2024) -> list[PopulationEntry]:
    """The combinational families, filtered by ``min_nodes``."""
    return [entry for spec in combinational_specs(seed=seed)
            for entry in build_entries(spec, min_nodes=min_nodes)]


def traversal_population(min_nodes: int = 300) -> list[PopulationEntry]:
    """Reached/frontier snapshots from symbolic traversals."""
    return [entry for spec in traversal_specs()
            for entry in build_entries(spec, min_nodes=min_nodes)]


def generate_population(min_nodes: int = 300,
                        seed: int = 2024) -> list[PopulationEntry]:
    """The full experiment population for Tables 2–4."""
    return [entry for spec in population_specs(seed=seed)
            for entry in build_entries(spec, min_nodes=min_nodes)]
