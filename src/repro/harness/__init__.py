"""Experiment harness regenerating the paper's tables."""

from .population import (PopulationEntry, combinational_population,
                         generate_population, traversal_population)
from .stats import Measurement, denser, geometric_mean, wins_and_ties
from .tables import format_manager_stats, format_table

__all__ = [
    "PopulationEntry",
    "generate_population",
    "combinational_population",
    "traversal_population",
    "Measurement",
    "geometric_mean",
    "denser",
    "wins_and_ties",
    "format_table",
    "format_manager_stats",
]
