"""Experiment harness regenerating the paper's tables.

Layout:

* :mod:`~repro.harness.population` — the Tables 2-4 function
  population, addressable as picklable specs or built entries.
* :mod:`~repro.harness.engine` — the parallel experiment engine
  (worker pool, per-task timeouts, crash capture, bounded retry).
* :mod:`~repro.harness.experiments` — the per-task experiment bodies
  shared by the benchmarks, the CLI, and the determinism tests.
* :mod:`~repro.harness.trajectory` — persisted ``BENCH_*.json``
  benchmark results and the trajectory comparator.
* :mod:`~repro.harness.stats` / :mod:`~repro.harness.tables` —
  population statistics and fixed-width table rendering.
"""

from .engine import (EngineRun, Task, TaskOutcome, WorkerPool,
                     resolve_jobs, run_tasks)
from .population import (EntrySpec, PopulationEntry, build_entries,
                         combinational_population, combinational_specs,
                         generate_population, make_circuit,
                         population_specs, traversal_population,
                         traversal_specs)
from .stats import Measurement, denser, geometric_mean, wins_and_ties
from .tables import format_manager_stats, format_table
from .trajectory import (bench_payload, compare, compare_files,
                         failure_rows, load_bench, merge_rows,
                         resume_tasks, spec_digest, task_rows,
                         write_bench)

__all__ = [
    "PopulationEntry",
    "EntrySpec",
    "generate_population",
    "combinational_population",
    "traversal_population",
    "population_specs",
    "combinational_specs",
    "traversal_specs",
    "build_entries",
    "make_circuit",
    "Task",
    "TaskOutcome",
    "EngineRun",
    "WorkerPool",
    "resolve_jobs",
    "run_tasks",
    "bench_payload",
    "write_bench",
    "load_bench",
    "compare",
    "compare_files",
    "task_rows",
    "failure_rows",
    "spec_digest",
    "resume_tasks",
    "merge_rows",
    "Measurement",
    "geometric_mean",
    "denser",
    "wins_and_ties",
    "format_table",
    "format_manager_stats",
]
