"""Statistics used by the paper's tables: geometric means, wins/ties.

Minterm counts are astronomically large integers, so geometric means
are computed in log space with :func:`repro.bdd.counting.log2int`, and
density comparisons use exact cross-multiplied integer arithmetic
(``m_a/n_a >= m_b/n_b  iff  m_a*n_b >= m_b*n_a``) — no floating-point
ties.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..bdd.counting import log2int


def geometric_mean(values: Iterable[float | int]) -> float:
    """Geometric mean robust to huge integers; zero values count as 0."""
    total = 0.0
    count = 0
    for value in values:
        count += 1
        if value == 0:
            return 0.0
        if isinstance(value, int):
            total += log2int(value)
        else:
            total += math.log2(value)
    if count == 0:
        raise ValueError("geometric mean of an empty sequence")
    return 2.0 ** (total / count)


@dataclass(frozen=True)
class Measurement:
    """Size and minterm count of one method's result on one function."""

    nodes: int
    minterms: int

    def density_key(self) -> tuple[int, int]:
        return self.minterms, max(1, self.nodes)


def denser(a: Measurement, b: Measurement) -> int:
    """Exact three-way density comparison: 1 if a > b, 0 tie, -1 else."""
    ma, na = a.density_key()
    mb, nb = b.density_key()
    left, right = ma * nb, mb * na
    if left > right:
        return 1
    if left < right:
        return -1
    return 0


def wins_and_ties(per_function: Sequence[dict[str, Measurement]]
                  ) -> dict[str, tuple[int, int]]:
    """The paper's wins/ties scoring over a population.

    For each function, the densest method(s) are found with exact
    arithmetic; a sole densest method gets a *win*, methods sharing the
    top density get *ties* (this matches the tables, where a "tie"
    means producing the densest result together with other methods).
    """
    methods = set()
    for row in per_function:
        methods.update(row)
    score = {method: [0, 0] for method in methods}
    for row in per_function:
        best: list[str] = []
        for method, measurement in row.items():
            if not best:
                best = [method]
                continue
            relation = denser(measurement, row[best[0]])
            if relation > 0:
                best = [method]
            elif relation == 0:
                best.append(method)
        if len(best) == 1:
            score[best[0]][0] += 1
        else:
            for method in best:
                score[method][1] += 1
    return {method: (w, t) for method, (w, t) in score.items()}
