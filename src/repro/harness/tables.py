"""Plain-text table rendering in the style of the paper's tables."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Fixed-width table with a header rule, ready for the console."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.2e}"
        return f"{value:.1f}"
    if isinstance(value, int) and abs(value) >= 10 ** 7:
        return f"{float(value):.2e}"
    return str(value)
