"""Plain-text table rendering in the style of the paper's tables."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str | None = None) -> str:
    """Fixed-width table with a header rule, ready for the console."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w)
                               for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_manager_stats(stats) -> str:
    """Render a :class:`~repro.bdd.manager.ManagerStats` snapshot.

    A per-operation computed-table section followed by the node / GC /
    reorder summary, in the same fixed-width style as the paper tables.
    """
    rows = [[op, s.hits, s.misses, s.evictions, f"{s.hit_rate:.0%}"]
            for op, s in stats.cache_per_op.items()]
    rows.append(["total", stats.cache_hits, stats.cache_misses,
                 stats.cache_evictions, f"{stats.cache_hit_rate:.0%}"])
    cache = format_table(["op", "hits", "misses", "evict", "rate"],
                         rows, title="computed table")
    limit = "unbounded" if stats.cache_limit is None else stats.cache_limit
    lines = [
        f"backend:         {getattr(stats, 'backend', 'object')}",
        f"cache entries:   {stats.cache_size} (limit: {limit})",
        f"live nodes:      {stats.nodes} (peak: {stats.peak_nodes})",
        f"gc:              {stats.gc_count} runs, "
        f"{stats.gc_reclaimed} nodes reclaimed, "
        f"{stats.gc_pause_total * 1e3:.1f}ms total "
        f"({stats.gc_pause_max * 1e3:.1f}ms max pause)",
        f"reorders:        {stats.reorder_count}",
    ]
    aborts = getattr(stats, "total_aborts", 0)
    degradations = getattr(stats, "total_degradations", 0)
    if aborts or degradations:
        lines.append(f"governor:        {aborts} aborts, "
                     f"{degradations} degradations")
    return cache + "\n" + "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) >= 1e5 or abs(value) < 1e-3):
            return f"{value:.2e}"
        return f"{value:.1f}"
    if isinstance(value, int) and abs(value) >= 10 ** 7:
        return f"{float(value):.2e}"
    return str(value)
