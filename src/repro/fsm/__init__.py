"""Sequential-circuit substrate: netlists, BLIF I/O, benchmark suite."""

from .circuit import Circuit, CircuitBuilder, Latch, Net, eval_net
from .encode import EncodedCircuit, encode, next_var_name

__all__ = [
    "Circuit",
    "CircuitBuilder",
    "Latch",
    "Net",
    "eval_net",
    "encode",
    "EncodedCircuit",
    "next_var_name",
]
