"""BLIF reader/writer for sequential circuits.

Supports the subset of Berkeley Logic Interchange Format that the
ISCAS-style benchmarks use: ``.model``, ``.inputs``, ``.outputs``,
``.latch <in> <out> [<type> <ctrl>] [init]``, and single-output
``.names`` tables with 1/0/- cube rows.  ``.names`` covers are read as
sums of cubes (output value 1 rows) or complemented products (output
value 0 rows).
"""

from __future__ import annotations

import io
from collections.abc import Iterable

from .circuit import Circuit, CircuitBuilder, Net


class BlifError(ValueError):
    """Raised on malformed BLIF input."""


def _logical_lines(text: str) -> Iterable[list[str]]:
    """Tokenized lines with continuations joined and comments dropped."""
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        line = pending + line
        pending = ""
        tokens = line.split()
        if tokens:
            yield tokens
    if pending.strip():
        yield pending.split()


def parse_blif(text: str) -> Circuit:
    """Parse a BLIF model into a :class:`Circuit`."""
    name = "blif"
    inputs: list[str] = []
    outputs: list[str] = []
    latches: list[tuple[str, str, bool]] = []  # (input, output, init)
    tables: dict[str, tuple[list[str], list[tuple[str, str]]]] = {}
    current: tuple[str, list[str], list[tuple[str, str]]] | None = None

    def close_table() -> None:
        nonlocal current
        if current is not None:
            signal, deps, rows = current
            tables[signal] = (deps, rows)
            current = None

    for tokens in _logical_lines(text):
        head = tokens[0]
        if head.startswith("."):
            if head != ".names":
                close_table()
            if head == ".model":
                name = tokens[1] if len(tokens) > 1 else name
            elif head == ".inputs":
                inputs.extend(tokens[1:])
            elif head == ".outputs":
                outputs.extend(tokens[1:])
            elif head == ".latch":
                if len(tokens) < 3:
                    raise BlifError(f".latch needs input and output: "
                                    f"{' '.join(tokens)}")
                init = False
                trailing = tokens[3:]
                if trailing and trailing[-1] in ("0", "1", "2", "3"):
                    init = trailing[-1] == "1"
                latches.append((tokens[1], tokens[2], init))
            elif head == ".names":
                close_table()
                if len(tokens) < 2:
                    raise BlifError(".names needs at least one signal")
                current = (tokens[-1], tokens[1:-1], [])
            elif head == ".end":
                close_table()
                break
            elif head in (".exdc", ".wire_load_slope", ".default_input_arrival"):
                continue  # tolerated, ignored
            else:
                raise BlifError(f"unsupported construct {head!r}")
        else:
            if current is None:
                raise BlifError(f"stray cube row {' '.join(tokens)!r}")
            signal, deps, rows = current
            if not deps:
                # constant: single token 0/1
                rows.append(("", tokens[0]))
            else:
                if len(tokens) != 2:
                    raise BlifError(
                        f"cube row needs mask and value: "
                        f"{' '.join(tokens)!r}")
                mask, value = tokens
                if len(mask) != len(deps):
                    raise BlifError(f"cube width mismatch for {signal!r}")
                rows.append((mask, value))
    close_table()

    builder = CircuitBuilder(name)
    variables: dict[str, Net] = {}
    for signal in inputs:
        variables[signal] = builder.input(signal)
    latch_nets: dict[str, Net] = {}
    for next_signal, out_signal, init in latches:
        latch_nets[out_signal] = builder.latch(out_signal, init=init)
        variables[out_signal] = latch_nets[out_signal]

    building: set[str] = set()

    def net_of(signal: str) -> Net:
        # Two-phase explicit stack (DFS): expand a signal's table
        # dependencies first, then lower its cover to a gate network.
        # Seeing a signal unexpanded while it is still `building` means
        # a dependency loops back to it — a combinational cycle.
        stack: list[tuple[str, bool]] = [(signal, False)]
        while stack:
            current, expanded = stack.pop()
            if current in variables:
                continue
            if current not in tables:
                raise BlifError(f"undriven signal {current!r}")
            deps, rows = tables[current]
            if not expanded:
                if current in building:
                    raise BlifError(
                        f"combinational cycle through {current!r}")
                building.add(current)
                stack.append((current, True))
                stack.extend((dep, False) for dep in deps)
            else:
                variables[current] = _cover_to_net(
                    builder, [variables[dep] for dep in deps], rows,
                    current)
                building.discard(current)
        return variables[signal]

    for next_signal, out_signal, _ in latches:
        builder.set_next(latch_nets[out_signal], net_of(next_signal))
    for signal in outputs:
        builder.output(signal, net_of(signal))
    return builder.build()


def _cover_to_net(builder: CircuitBuilder, deps: list[Net],
                  rows: list[tuple[str, str]], signal: str) -> Net:
    """Sum-of-cubes (or complemented) cover to a gate network."""
    if not rows:
        return builder.const0
    values = {value for _, value in rows}
    if len(values) != 1:
        raise BlifError(f"mixed-polarity cover for {signal!r}")
    value = values.pop()
    if value not in ("0", "1"):
        raise BlifError(f"bad cover value {value!r} for {signal!r}")
    acc = builder.const0
    for mask, _ in rows:
        term = builder.const1
        for bit, dep in zip(mask, deps):
            if bit == "1":
                term = term & dep
            elif bit == "0":
                term = term & ~dep
            elif bit != "-":
                raise BlifError(f"bad cube character {bit!r}")
        acc = acc | term
    return acc if value == "1" else ~acc


def read_blif(path: str) -> Circuit:
    """Read a circuit from a BLIF file."""
    with open(path, "r", encoding="utf-8") as handle:
        return parse_blif(handle.read())


def write_blif(circuit: Circuit) -> str:
    """Serialize a circuit to BLIF (gates become 2-input .names)."""
    out = io.StringIO()
    out.write(f".model {circuit.name}\n")
    if circuit.inputs:
        out.write(".inputs " + " ".join(circuit.inputs) + "\n")
    if circuit.outputs:
        out.write(".outputs " + " ".join(circuit.outputs) + "\n")
    names: dict[Net, str] = {}
    counter = [0]
    body = io.StringIO()

    def label_of(net: Net) -> str:
        return net.name if net.op == "var" else names[net]

    def name_of(net: Net) -> str:
        # Two-phase explicit stack: a gate's label is assigned on the
        # way down (matching the pre-order numbering of the recursive
        # formulation), its .names table is emitted once every argument
        # has been written.
        stack: list[tuple[Net, bool]] = [(net, False)]
        while stack:
            current, expanded = stack.pop()
            if current.op == "var":
                continue
            if not expanded:
                if current in names:
                    continue
                if current.op == "const0" or current.op == "const1":
                    label = f"_k{current.op[-1]}"
                    names[current] = label
                    body.write(f".names {label}\n")
                    if current.op == "const1":
                        body.write("1\n")
                    continue
                names[current] = f"_g{counter[0]}"
                counter[0] += 1
                stack.append((current, True))
                stack.extend((arg, False)
                             for arg in reversed(current.args))
            else:
                label = names[current]
                args = [label_of(arg) for arg in current.args]
                if current.op == "not":
                    body.write(f".names {args[0]} {label}\n0 1\n")
                elif current.op == "and":
                    body.write(f".names {args[0]} {args[1]} {label}\n"
                               "11 1\n")
                elif current.op == "or":
                    body.write(f".names {args[0]} {args[1]} {label}\n"
                               "1- 1\n-1 1\n")
                else:  # xor
                    body.write(f".names {args[0]} {args[1]} {label}\n"
                               "10 1\n01 1\n")
        return label_of(net)

    for latch in circuit.latches:
        next_name = name_of(latch.next_state)
        out.write(f".latch {next_name} {latch.name} re clk "
                  f"{1 if latch.init else 0}\n")
    for out_name, net in circuit.outputs.items():
        driver = name_of(net)
        if driver != out_name:
            out.write(f".names {driver} {out_name}\n1 1\n")
    out.write(body.getvalue())
    out.write(".end\n")
    return out.getvalue()
