"""Symbolic encoding: circuits to BDD next-state functions.

Produces an :class:`EncodedCircuit` with

* one *present-state* BDD variable per latch (the latch name),
* one *next-state* variable per latch (suffix ``'``, interleaved with
  its present-state partner — the standard order for transition
  relations),
* one variable per primary input (placed before the state variables by
  default, since inputs are quantified out first in image computation),
* the next-state function delta_j(x, w) of every latch and each primary
  output function as BDDs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..bdd.function import Function
from ..bdd.manager import Manager
from .circuit import Circuit, Net


@dataclass
class EncodedCircuit:
    """BDD view of a sequential circuit."""

    circuit: Circuit
    manager: Manager
    #: present-state variable names, in latch order
    state_vars: list[str]
    #: next-state variable names, parallel to state_vars
    next_vars: list[str]
    #: primary-input variable names
    input_vars: list[str]
    #: next-state functions delta_j(x, w), parallel to state_vars
    next_functions: list[Function]
    #: primary output functions by name
    output_functions: dict[str, Function] = field(default_factory=dict)

    @property
    def next_of(self) -> dict[str, str]:
        """Map present-state variable -> next-state variable."""
        return dict(zip(self.state_vars, self.next_vars))

    def initial_states(self) -> Function:
        """Characteristic function of the single reset state."""
        assignment = {latch.name: latch.init
                      for latch in self.circuit.latches}
        return self.manager.cube(assignment)

    def state_cube(self, values: dict[str, bool]) -> Function:
        """Characteristic function of one concrete state."""
        return self.manager.cube(values)


def next_var_name(state_var: str) -> str:
    """Naming convention for next-state variables."""
    return state_var + "'"


def encode(circuit: Circuit, manager: Manager | None = None,
           inputs_first: bool = True,
           backend: str | None = None) -> EncodedCircuit:
    """Build BDDs for a circuit's next-state and output functions.

    The variable order is: primary inputs (if ``inputs_first``), then
    interleaved (present, next) pairs in latch order.  Declaring next
    variables adjacent to their partners keeps the y -> x renaming and
    the transition-relation BDDs small.

    ``backend`` picks the node-store backend for a freshly created
    manager (ignored when ``manager`` is passed); None defers to
    ``REPRO_BACKEND`` and then ``"object"``.
    """
    if manager is None:
        manager = Manager(backend=backend)
    input_vars = list(circuit.inputs)
    state_vars = [latch.name for latch in circuit.latches]
    next_vars = [next_var_name(name) for name in state_vars]
    if inputs_first:
        for name in input_vars:
            manager.add_var(name)
    for present, nxt in zip(state_vars, next_vars):
        manager.add_var(present)
        manager.add_var(nxt)
    if not inputs_first:
        for name in input_vars:
            manager.add_var(name)

    cache: dict[Net, Function] = {}

    def done(net: Net) -> Function | None:
        """The net's BDD if already derivable, else None."""
        if net.op == "const0":
            return manager.false
        if net.op == "const1":
            return manager.true
        if net.op == "var":
            return manager.var(net.name)
        return cache.get(net)

    def build(root: Net) -> Function:
        # Two-phase explicit stack over the (acyclic, hash-consed) net
        # DAG: expand until every argument is cached, then combine.
        stack: list[tuple[Net, bool]] = [(root, False)]
        while stack:
            net, expanded = stack.pop()
            if not expanded:
                if done(net) is not None:
                    continue
                stack.append((net, True))
                stack.extend((arg, False) for arg in net.args)
            else:
                values = [done(arg) for arg in net.args]
                if net.op == "not":
                    cache[net] = ~values[0]
                elif net.op == "and":
                    cache[net] = values[0] & values[1]
                elif net.op == "or":
                    cache[net] = values[0] | values[1]
                else:  # xor
                    cache[net] = values[0] ^ values[1]
        function = done(root)
        assert function is not None
        return function

    next_functions = [build(latch.next_state)
                      for latch in circuit.latches]
    output_functions = {name: build(net)
                        for name, net in circuit.outputs.items()}
    return EncodedCircuit(circuit=circuit, manager=manager,
                          state_vars=state_vars, next_vars=next_vars,
                          input_vars=input_vars,
                          next_functions=next_functions,
                          output_functions=output_functions)
