"""Gate-level sequential circuits (the netlist substrate).

A :class:`Circuit` is a network of two-input gates over primary inputs
and latch outputs, with named primary outputs and a next-state function
plus initial value per latch — the same information VIS extracts from a
network before building transition relations.

Expressions are hash-consed :class:`Net` records with operator
overloading, so circuit generators read like RTL::

    b = CircuitBuilder("counter")
    en = b.input("en")
    q0 = b.latch("q0")
    b.set_next(q0, q0 ^ en)
"""

from __future__ import annotations

from dataclasses import dataclass, field


class Net:
    """One signal in a circuit: a constant, a variable, or a gate."""

    __slots__ = ("builder", "op", "args", "name")

    #: valid operators; ``var`` args = (), gate args = child Nets
    OPS = ("const0", "const1", "var", "not", "and", "or", "xor")

    def __init__(self, builder: "CircuitBuilder", op: str,
                 args: tuple, name: str | None = None) -> None:
        self.builder = builder
        self.op = op
        self.args = args
        self.name = name

    # Hash-consing makes equal structures identical, so identity
    # comparisons and dict keys work throughout.
    def _mk(self, op: str, *args: "Net") -> "Net":
        return self.builder.gate(op, *args)

    def __invert__(self) -> "Net":
        return self._mk("not", self)

    def __and__(self, other: "Net") -> "Net":
        return self._mk("and", self, other)

    def __or__(self, other: "Net") -> "Net":
        return self._mk("or", self, other)

    def __xor__(self, other: "Net") -> "Net":
        return self._mk("xor", self, other)

    def ite(self, then_net: "Net", else_net: "Net") -> "Net":
        """Multiplexer: ``self ? then : else``."""
        return (self & then_net) | (~self & else_net)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.op == "var":
            return f"Net({self.name})"
        return f"Net({self.op}/{len(self.args)})"


@dataclass
class Latch:
    """A state element: output signal, next-state function, reset value."""

    name: str
    output: Net
    next_state: Net | None = None
    init: bool = False


@dataclass
class Circuit:
    """A finished sequential circuit."""

    name: str
    inputs: list[str]
    latches: list[Latch]
    outputs: dict[str, Net]
    #: variable nets by name (inputs and latch outputs)
    variables: dict[str, Net] = field(default_factory=dict)

    @property
    def num_latches(self) -> int:
        return len(self.latches)

    def simulate(self, input_values: dict[str, bool],
                 state: dict[str, bool]) -> tuple[dict[str, bool],
                                                  dict[str, bool]]:
        """One clock cycle: returns (outputs, next state)."""
        env = dict(state)
        env.update(input_values)
        cache: dict[Net, bool] = {}
        outs = {name: eval_net(net, env, cache)
                for name, net in self.outputs.items()}
        nxt = {latch.name: eval_net(latch.next_state, env, cache)
               for latch in self.latches}
        return outs, nxt

    def initial_state(self) -> dict[str, bool]:
        """Reset values of all latches."""
        return {latch.name: latch.init for latch in self.latches}


def eval_net(net: Net, env: dict[str, bool],
             cache: dict[Net, bool] | None = None) -> bool:
    """Evaluate a signal under an assignment of variables to booleans."""
    if cache is None:
        cache = {}

    def done(net: Net) -> bool | None:
        if net.op == "const0":
            return False
        if net.op == "const1":
            return True
        if net.op == "var":
            return env[net.name]
        return cache.get(net)

    # Two-phase explicit stack over the acyclic net DAG: expand until
    # every argument is evaluated, then apply the gate.
    stack: list[tuple[Net, bool]] = [(net, False)]
    while stack:
        current, expanded = stack.pop()
        if not expanded:
            if done(current) is not None:
                continue
            stack.append((current, True))
            stack.extend((arg, False) for arg in current.args)
        else:
            values = [done(arg) for arg in current.args]
            if current.op == "not":
                cache[current] = not values[0]
            elif current.op == "and":
                cache[current] = bool(values[0] and values[1])
            elif current.op == "or":
                cache[current] = bool(values[0] or values[1])
            else:  # xor
                cache[current] = values[0] != values[1]
    value = done(net)
    assert value is not None
    return value


class CircuitBuilder:
    """Incrementally construct a :class:`Circuit`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._inputs: list[str] = []
        self._latches: list[Latch] = []
        self._outputs: dict[str, Net] = {}
        self._variables: dict[str, Net] = {}
        self._gates: dict[tuple, Net] = {}
        self.const0 = Net(self, "const0", ())
        self.const1 = Net(self, "const1", ())

    # -- signals -------------------------------------------------------

    def input(self, name: str) -> Net:
        """Declare a primary input."""
        if name in self._variables:
            raise ValueError(f"signal {name!r} already exists")
        net = Net(self, "var", (), name)
        self._variables[name] = net
        self._inputs.append(name)
        return net

    def inputs(self, prefix: str, count: int) -> list[Net]:
        """Declare an input vector ``prefix0 .. prefix{count-1}``."""
        return [self.input(f"{prefix}{i}") for i in range(count)]

    def latch(self, name: str, init: bool = False) -> Net:
        """Declare a latch; its next-state is set later."""
        if name in self._variables:
            raise ValueError(f"signal {name!r} already exists")
        net = Net(self, "var", (), name)
        self._variables[name] = net
        self._latches.append(Latch(name=name, output=net, init=init))
        return net

    def latches(self, prefix: str, count: int,
                init: int = 0) -> list[Net]:
        """Declare a latch vector with ``init`` as little-endian reset."""
        return [self.latch(f"{prefix}{i}", init=bool(init >> i & 1))
                for i in range(count)]

    def set_next(self, latch_net: Net, next_state: Net) -> None:
        """Define the next-state function of a declared latch."""
        for latch in self._latches:
            if latch.output is latch_net:
                latch.next_state = next_state
                return
        raise ValueError("not a latch of this builder")

    def set_next_vector(self, latch_nets: list[Net],
                        next_states: list[Net]) -> None:
        """Vector form of :meth:`set_next`."""
        if len(latch_nets) != len(next_states):
            raise ValueError("vector length mismatch")
        for latch_net, next_net in zip(latch_nets, next_states):
            self.set_next(latch_net, next_net)

    def output(self, name: str, net: Net) -> None:
        """Name a primary output."""
        self._outputs[name] = net

    # -- gates ---------------------------------------------------------

    def _invert(self, a: Net) -> Net:
        """Hash-consed negation with local simplifications."""
        if a.op == "const0":
            return self.const1
        if a.op == "const1":
            return self.const0
        if a.op == "not":
            return a.args[0]
        key = ("not", id(a))
        net = self._gates.get(key)
        if net is None:
            net = Net(self, "not", (a,))
            self._gates[key] = net
        return net

    def gate(self, op: str, *args: Net) -> Net:
        """Hash-consed gate constructor with local simplifications."""
        if op == "not":
            (a,) = args
            return self._invert(a)
        else:
            a, b = args
            if op == "and":
                if a.op == "const0" or b.op == "const0":
                    return self.const0
                if a.op == "const1":
                    return b
                if b.op == "const1":
                    return a
                if a is b:
                    return a
            elif op == "or":
                if a.op == "const1" or b.op == "const1":
                    return self.const1
                if a.op == "const0":
                    return b
                if b.op == "const0":
                    return a
                if a is b:
                    return a
            elif op == "xor":
                if a.op == "const0":
                    return b
                if b.op == "const0":
                    return a
                if a.op == "const1":
                    return self._invert(b)
                if b.op == "const1":
                    return self._invert(a)
                if a is b:
                    return self.const0
            if id(a) > id(b):  # commutative normal form
                a, b = b, a
            args = (a, b)
        key = (op,) + tuple(id(x) for x in args)
        net = self._gates.get(key)
        if net is None:
            net = Net(self, op, args)
            self._gates[key] = net
        return net

    # -- vector helpers (little-endian) ---------------------------------

    def constant_vector(self, value: int, width: int) -> list[Net]:
        """Width-bit constant as a little-endian net list."""
        return [self.const1 if value >> i & 1 else self.const0
                for i in range(width)]

    def mux_vector(self, sel: Net, then_nets: list[Net],
                   else_nets: list[Net]) -> list[Net]:
        """Bitwise multiplexer over two equal-width vectors."""
        if len(then_nets) != len(else_nets):
            raise ValueError("vector width mismatch")
        return [sel.ite(t, e) for t, e in zip(then_nets, else_nets)]

    def increment(self, bits: list[Net]) -> list[Net]:
        """Ripple incrementer (wraps around)."""
        out = []
        carry = self.const1
        for bit in bits:
            out.append(bit ^ carry)
            carry = bit & carry
        return out

    def decrement(self, bits: list[Net]) -> list[Net]:
        """Ripple decrementer (wraps around)."""
        out = []
        borrow = self.const1
        for bit in bits:
            out.append(bit ^ borrow)
            borrow = ~bit & borrow
        return out

    def add(self, a: list[Net], b: list[Net]) -> list[Net]:
        """Ripple-carry adder (modulo 2^width)."""
        if len(a) != len(b):
            raise ValueError("vector width mismatch")
        out = []
        carry = self.const0
        for x, y in zip(a, b):
            out.append(x ^ y ^ carry)
            carry = (x & y) | (carry & (x ^ y))
        return out

    def equals_constant(self, bits: list[Net], value: int) -> Net:
        """Comparator against a constant."""
        acc = self.const1
        for i, bit in enumerate(bits):
            acc = acc & (bit if value >> i & 1 else ~bit)
        return acc

    def is_zero(self, bits: list[Net]) -> Net:
        """NOR-reduction: true when the vector is all zeros."""
        return self.equals_constant(bits, 0)

    # -- finish ---------------------------------------------------------

    def build(self) -> Circuit:
        """Validate and freeze the circuit."""
        for latch in self._latches:
            if latch.next_state is None:
                raise ValueError(f"latch {latch.name!r} has no next-state")
        return Circuit(name=self.name, inputs=list(self._inputs),
                       latches=list(self._latches),
                       outputs=dict(self._outputs),
                       variables=dict(self._variables))
