"""A from-scratch model of the AMD Am2910 microprogram sequencer.

The paper's hardest reachability benchmark ("am2910", 99 flip-flops,
1.16e26 reachable states; exact BFS did not finish in two weeks).  The
real device has a 12-bit address path and a 5-word LIFO stack; the
ISCAS-addendum benchmark version carries 99 latches, which matches a
12-bit path with a 6-deep stack plus a 3-bit stack pointer:

    uPC (12) + register/counter (12) + stack (6 x 12) + SP (3) = 99.

This model implements the full 16-instruction set on parameterized
address ``width`` and stack ``depth`` so the reproduction can scale the
state space to what pure-Python BDDs traverse in minutes rather than
weeks (``width=12, depth=6`` reproduces the original latch count).

State
-----
``pc``      current microprogram address (``width`` bits)
``r``       register/counter (``width`` bits)
``sp``      stack pointer, 0 = empty (``ceil(log2(depth+1))`` bits)
``stk<i>_`` stack words (``depth * width`` bits)

Inputs: ``i0..i3`` instruction, ``cc`` condition pass, ``d0..`` the
pipeline/map data input.  Output ``y*`` is the selected next address
(also the next ``pc``; the real device's incrementer feeds uPC = Y+1,
so this model's ``pc`` plays the role of the Y register, and the
"continue" address is ``pc + 1``).
"""

from __future__ import annotations

from .circuit import Circuit, CircuitBuilder, Net

#: The sixteen Am2910 instructions, in opcode order.
INSTRUCTIONS = ("JZ", "CJS", "JMAP", "CJP", "PUSH", "JSRP", "CJV", "JRP",
                "RFCT", "RPCT", "CRTN", "CJPP", "LDCT", "LOOP", "CONT",
                "TWB")


def am2910(width: int = 12, depth: int = 6) -> Circuit:
    """Build the Am2910 model; defaults match the 99-FF benchmark."""
    if width < 1 or depth < 1:
        raise ValueError("width and depth must be positive")
    sp_bits = max(1, (depth + 1 - 1).bit_length())
    b = CircuitBuilder(f"am2910_w{width}d{depth}")
    instr = b.inputs("i", 4)
    cc = b.input("cc")
    d_in = b.inputs("d", width)

    pc = b.latches("pc", width)
    r = b.latches("r", width)
    sp = b.latches("sp", sp_bits)
    stack = [b.latches(f"stk{k}_", width) for k in range(depth)]

    # Decoded one-hot instruction lines.
    def op(code: int) -> Net:
        return b.equals_constant(instr, code)

    ops = {name: op(code) for code, name in enumerate(INSTRUCTIONS)}
    fail = ~cc

    ret = b.increment(pc)          # "continue" address
    r_zero = b.is_zero(r)
    r_minus = b.decrement(r)
    sp_plus = b.increment(sp)
    sp_minus = b.decrement(sp)
    sp_empty = b.is_zero(sp)
    sp_full = b.equals_constant(sp, depth)

    # Top of stack: stack[sp-1]; on an empty stack reads return word 0
    # (undefined in the real device).
    tos = b.constant_vector(0, width)
    for k in range(depth):
        at_k = b.equals_constant(sp, k + 1)
        tos = b.mux_vector(at_k, stack[k], tos)

    # ------------------------------------------------------------------
    # Per-instruction controls: next address Y, push/pop, R update.
    # ------------------------------------------------------------------
    zero_vec = b.constant_vector(0, width)

    def select(choices: list[tuple[Net, list[Net]]],
               default: list[Net]) -> list[Net]:
        out = default
        for cond, value in choices:
            out = b.mux_vector(cond, value, out)
        return out

    y = select([
        (ops["JZ"], zero_vec),
        (ops["CJS"], b.mux_vector(cc, d_in, ret)),
        (ops["JMAP"], d_in),
        (ops["CJP"], b.mux_vector(cc, d_in, ret)),
        (ops["PUSH"], ret),
        (ops["JSRP"], b.mux_vector(cc, d_in, r)),
        (ops["CJV"], b.mux_vector(cc, d_in, ret)),
        (ops["JRP"], b.mux_vector(cc, d_in, r)),
        (ops["RFCT"], b.mux_vector(r_zero, ret, tos)),
        (ops["RPCT"], b.mux_vector(r_zero, ret, d_in)),
        (ops["CRTN"], b.mux_vector(cc, tos, ret)),
        (ops["CJPP"], b.mux_vector(cc, d_in, ret)),
        (ops["LDCT"], ret),
        (ops["LOOP"], b.mux_vector(cc, ret, tos)),
        (ops["CONT"], ret),
        (ops["TWB"], b.mux_vector(
            cc, ret, b.mux_vector(r_zero, d_in, tos))),
    ], ret)

    push = (ops["CJS"] & cc) | ops["PUSH"] | ops["JSRP"]
    pop = (ops["RFCT"] & r_zero) \
        | (ops["CRTN"] & cc) \
        | (ops["CJPP"] & cc) \
        | (ops["LOOP"] & cc) \
        | (ops["TWB"] & (cc | r_zero))
    clear = ops["JZ"]

    load_r = ops["LDCT"] | (ops["PUSH"] & cc)
    dec_r = ((ops["RFCT"] | ops["RPCT"]) & ~r_zero) \
        | (ops["TWB"] & fail & ~r_zero)

    # ------------------------------------------------------------------
    # State updates.
    # ------------------------------------------------------------------
    b.set_next_vector(pc, y)
    r_next = select([(load_r, d_in), (dec_r, r_minus)], r)
    b.set_next_vector(r, r_next)

    # Stack pointer: clear beats push/pop; push saturates when full,
    # pop on empty is a no-op.
    do_push = push & ~sp_full
    do_pop = pop & ~sp_empty
    sp_next = select([
        (clear, b.constant_vector(0, sp_bits)),
        (do_push, sp_plus),
        (do_pop, sp_minus),
    ], sp)
    b.set_next_vector(sp, sp_next)

    # Stack words: a push writes the return address at slot sp.
    for k in range(depth):
        write_k = do_push & b.equals_constant(sp, k)
        b.set_next_vector(stack[k],
                          b.mux_vector(write_k, ret, stack[k]))

    for j in range(width):
        b.output(f"y{j}", y[j])
    b.output("stack_full", sp_full)
    return b.build()


def reference_step(width: int, depth: int, state: dict,
                   inputs: dict) -> dict:
    """Pure-Python reference semantics for differential testing.

    ``state``: {"pc", "r", "sp", "stack": tuple} with integers;
    ``inputs``: {"i", "cc", "d"}.  Returns the next state dict.
    """
    mask = (1 << width) - 1
    pc, r, sp = state["pc"], state["r"], state["sp"]
    stack = list(state["stack"])
    code, cc, d = inputs["i"], inputs["cc"], inputs["d"]
    name = INSTRUCTIONS[code]
    ret = (pc + 1) & mask
    tos = stack[sp - 1] if sp > 0 else 0
    r_zero = r == 0

    y = ret
    push = pop = clear = False
    load_r = dec_r = False
    if name == "JZ":
        y, clear = 0, True
    elif name == "CJS":
        y = d if cc else ret
        push = cc
    elif name == "JMAP":
        y = d
    elif name in ("CJP", "CJV"):
        y = d if cc else ret
    elif name == "PUSH":
        push = True
        load_r = cc
    elif name == "JSRP":
        y = d if cc else r
        push = True
    elif name == "JRP":
        y = d if cc else r
    elif name == "RFCT":
        if r_zero:
            y, pop = ret, True
        else:
            y, dec_r = tos, True
    elif name == "RPCT":
        if r_zero:
            y = ret
        else:
            y, dec_r = d, True
    elif name == "CRTN":
        if cc:
            y, pop = tos, True
    elif name == "CJPP":
        if cc:
            y, pop = d, True
    elif name == "LDCT":
        load_r = True
    elif name == "LOOP":
        if cc:
            pop = True
        else:
            y = tos
    elif name == "TWB":
        if cc:
            pop = True
        elif not r_zero:
            y, dec_r = tos, True
        else:
            y, pop = d, True

    new_r = d if load_r else ((r - 1) & mask if dec_r else r)
    new_sp = sp
    if clear:
        new_sp = 0
    elif push and sp < depth:
        stack[sp] = ret
        new_sp = sp + 1
    elif pop and sp > 0:
        new_sp = sp - 1
    return {"pc": y, "r": new_r, "sp": new_sp, "stack": tuple(stack)}
