"""Synthetic benchmark circuits.

The paper's reachability experiments use ISCAS-89-family netlists
(s3330, s1269, s5378opt) and the am2910 microprogram sequencer; the
netlists are not redistributable, so this module provides parameterized
circuits engineered to exhibit the same traversal behaviour (see
DESIGN.md's substitution table):

* :func:`comm_controller` — many loosely coupled channel registers
  behind a small control FSM (s3330-style: wide, shallow).
* :func:`lfsr_accumulator` — an LFSR driving an accumulator datapath
  (s1269-style: arithmetic feedback makes BFS frontier BDDs blow up
  while the final reached set stays moderate).
* :func:`pipeline_controller` — a stall/flush pipeline control with
  counters (s5378-style mixture of control and counting).
* :func:`shift_queue`, :func:`counters`, :func:`token_ring` — further
  population circuits.

The am2910 model lives in :mod:`repro.fsm.am2910`.
"""

from __future__ import annotations

from .circuit import Circuit, CircuitBuilder, Net


def counter(width: int, with_enable: bool = True) -> Circuit:
    """A ``width``-bit binary up-counter (the smoke-test circuit)."""
    b = CircuitBuilder(f"counter{width}")
    enable = b.input("en") if with_enable else b.const1
    bits = b.latches("q", width)
    incremented = b.increment(bits)
    b.set_next_vector(bits, b.mux_vector(enable, incremented, bits))
    b.output("msb", bits[-1])
    return b.build()


def lfsr(width: int, taps: tuple[int, ...] | None = None,
         nonzero_init: bool = True) -> Circuit:
    """A Fibonacci LFSR; taps default to a reasonable pattern."""
    if taps is None:
        taps = (width - 1, width // 2, 0) if width > 2 else (width - 1, 0)
    b = CircuitBuilder(f"lfsr{width}")
    bits = b.latches("l", width, init=1 if nonzero_init else 0)
    feedback = b.const0
    for tap in sorted(set(taps)):
        feedback = feedback ^ bits[tap]
    b.set_next_vector(bits, [feedback] + bits[:-1])
    b.output("stream", bits[-1])
    return b.build()


def lfsr_accumulator(width: int, taps: tuple[int, ...] | None = None
                     ) -> Circuit:
    """LFSR + accumulator: ``A' = A + L`` each cycle, gated by an input.

    The arithmetic coupling between the rotating L and the summing A
    makes breadth-first frontiers carry sum constraints (large BDDs)
    while the fixpoint covers nearly the whole space (small BDD) — the
    s1269-style blow-up discussed in Section 4.
    """
    if taps is None:
        taps = (width - 1, width // 2, 0) if width > 2 else (width - 1, 0)
    b = CircuitBuilder(f"lfsr_acc{width}")
    advance = b.input("adv")
    bits = b.latches("l", width, init=1)
    acc = b.latches("a", width)
    feedback = b.const0
    for tap in sorted(set(taps)):
        feedback = feedback ^ bits[tap]
    shifted = [feedback] + bits[:-1]
    b.set_next_vector(bits, b.mux_vector(advance, shifted, bits))
    total = b.add(acc, bits)
    b.set_next_vector(acc, b.mux_vector(advance, total, acc))
    b.output("acc_msb", acc[-1])
    return b.build()


def shift_queue(depth: int, width: int) -> Circuit:
    """A FIFO as a shift register with per-slot valid bits.

    Push inserts input data at slot 0, pop drops the deepest valid
    slot; simultaneous push+pop shifts.  Data/valid correlations during
    filling create irregular frontier BDDs.
    """
    b = CircuitBuilder(f"queue{depth}x{width}")
    push = b.input("push")
    pop = b.input("pop")
    data = b.inputs("d", width)
    valid = b.latches("v", depth)
    slots = [b.latches(f"s{i}_", width) for i in range(depth)]
    # Shift toward higher indices when pushing; a pop frees the deepest
    # valid slot (approximated as clearing the last valid bit).
    for i in reversed(range(depth)):
        prev_valid = valid[i - 1] if i else push
        prev_data = slots[i - 1] if i else data
        take = push & ~valid[i] & (prev_valid if i else b.const1)
        keep = valid[i] & ~(pop & _is_deepest(b, valid, i))
        b.set_next(valid[i], take | keep)
        for j in range(width):
            b.set_next(slots[i][j], take.ite(prev_data[j], slots[i][j]))
    b.output("full", _all(b, valid))
    return b.build()


def _is_deepest(b: CircuitBuilder, valid: list[Net], index: int) -> Net:
    """True when ``index`` is the deepest currently valid slot."""
    expr = valid[index]
    for deeper in valid[index + 1:]:
        expr = expr & ~deeper
    return expr


def _all(b: CircuitBuilder, nets: list[Net]) -> Net:
    acc = b.const1
    for net in nets:
        acc = acc & net
    return acc


def counters(count: int, width: int) -> Circuit:
    """``count`` independent wrapping counters with one-hot enables."""
    b = CircuitBuilder(f"counters{count}x{width}")
    selects = b.inputs("sel", count)
    b.output("any", b.const0)
    for k in range(count):
        bits = b.latches(f"c{k}_", width)
        incremented = b.increment(bits)
        b.set_next_vector(bits,
                          b.mux_vector(selects[k], incremented, bits))
    return b.build()


def token_ring(stations: int) -> Circuit:
    """A token ring: one-hot token plus per-station pending/served bits."""
    b = CircuitBuilder(f"ring{stations}")
    requests = b.inputs("req", stations)
    token = b.latches("t", stations, init=1)
    pending = b.latches("p", stations)
    served = b.latches("s", stations)
    advance = b.input("adv")
    for i in range(stations):
        predecessor = token[(i - 1) % stations]
        b.set_next(token[i], advance.ite(predecessor, token[i]))
        b.set_next(pending[i], (requests[i] | pending[i])
                   & ~(token[i] & advance))
        b.set_next(served[i], served[i] | (pending[i] & token[i]))
    b.output("all_served", _all(b, served))
    return b.build()


def comm_controller(channels: int, width: int = 2) -> Circuit:
    """Communications-controller analog (the s3330 stand-in).

    A small mode FSM broadcast-controls many channel registers; each
    channel also keeps a CRC-ish XOR state folded from its neighbour,
    so the latch count is high (the paper's s3330 has 132 flip-flops)
    while individual transitions stay shallow.
    """
    b = CircuitBuilder(f"comm{channels}x{width}")
    mode = b.latches("m", 2)
    start = b.input("start")
    stop = b.input("stop")
    data = b.inputs("din", channels)
    # mode FSM: 00 idle -> 01 sync -> 10 xfer -> 00
    idle = ~mode[0] & ~mode[1]
    sync = mode[0] & ~mode[1]
    xfer = ~mode[0] & mode[1]
    b.set_next(mode[0], idle & start)
    b.set_next(mode[1], sync | (xfer & ~stop))
    regs = [b.latches(f"ch{i}_", width) for i in range(channels)]
    crc = b.latches("crc", channels)
    for i in range(channels):
        shifted = [data[i]] + regs[i][:-1]
        b.set_next_vector(regs[i],
                          b.mux_vector(xfer, shifted, regs[i]))
        neighbour = crc[(i + 1) % channels]
        b.set_next(crc[i],
                   xfer.ite(crc[i] ^ (neighbour & regs[i][0]), crc[i]))
    b.output("busy", ~idle)
    return b.build()


def pipeline_controller(stages: int, width: int) -> Circuit:
    """Pipeline control with stall logic and a cycle counter
    (the s5378 stand-in: mixed control and counting behaviour)."""
    b = CircuitBuilder(f"pipe{stages}x{width}")
    stall = b.input("stall")
    flush = b.input("flush")
    issue = b.input("issue")
    valid = b.latches("pv", stages)
    tags = [b.latches(f"pt{i}_", width) for i in range(stages)]
    count = b.latches("cnt", width)
    advance = ~stall
    for i in reversed(range(stages)):
        upstream_valid = valid[i - 1] if i else issue
        upstream_tag = tags[i - 1] if i else count
        nxt_valid = flush.ite(b.const0,
                              advance.ite(upstream_valid, valid[i]))
        b.set_next(valid[i], nxt_valid)
        for j in range(width):
            b.set_next(tags[i][j],
                       (advance & ~flush).ite(upstream_tag[j],
                                              tags[i][j]))
    issued = issue & advance
    b.set_next_vector(count,
                      b.mux_vector(issued, b.increment(count), count))
    b.output("retire", valid[-1] & advance)
    return b.build()


def rotator_sum(width: int) -> Circuit:
    """Rotating register + conditional adder (multiplier-flavoured).

    ``B`` rotates every cycle; ``A`` accumulates ``B`` when the input
    bit is set — the shift-and-add structure of a serial multiplier.
    """
    b = CircuitBuilder(f"rotsum{width}")
    take = b.input("take")
    rot = b.latches("b", width, init=1)
    acc = b.latches("a", width)
    rotated = [rot[-1]] + rot[:-1]
    b.set_next_vector(rot, rotated)
    total = b.add(acc, rot)
    b.set_next_vector(acc, b.mux_vector(take, total, acc))
    b.output("msb", acc[-1])
    return b.build()


def triangle_datapath(width: int) -> Circuit:
    """Two counters with quadratic coupling: ``A' = A + B``, ``B' = B+1``.

    Independently enabled, so the reachable set eventually covers all
    ``(A, B)`` pairs (a tiny BDD), while intermediate breadth-first
    frontiers carry triangular-number correlations between A and B —
    notoriously bad BDD shapes.  This is the frontier-blow-up behaviour
    the paper attributes to s1269.
    """
    b = CircuitBuilder(f"triangle{width}")
    en_a = b.input("ena")
    en_b = b.input("enb")
    acc = b.latches("a", width)
    cnt = b.latches("b", width)
    b.set_next_vector(acc, b.mux_vector(en_a, b.add(acc, cnt), acc))
    b.set_next_vector(cnt, b.mux_vector(en_b, b.increment(cnt), cnt))
    b.output("a_msb", acc[-1])
    return b.build()


def mult_accumulator(width: int) -> Circuit:
    """Shift-and-add multiplier core: ``A' = A + (take ? B : 0)``,
    with B doubling (shifting) each step and reloadable from the input.

    Multiplication is the canonical BDD-hostile function; partial-sum
    frontiers blow up while the fixpoint stays small.
    """
    b = CircuitBuilder(f"multacc{width}")
    take = b.input("take")
    load = b.input("load")
    d_in = b.inputs("d", width)
    acc = b.latches("a", width)
    mult = b.latches("b", width, init=1)
    doubled = [b.const0] + mult[:-1]
    b.set_next_vector(mult, b.mux_vector(load, d_in, doubled))
    total = b.add(acc, mult)
    b.set_next_vector(acc, b.mux_vector(take, total, acc))
    b.output("msb", acc[-1])
    return b.build()


def subset_sum_datapath(width: int, step: int = 3) -> Circuit:
    """Subset-sum accumulator: ``B' = B + step`` (free-running),
    ``S' = S + B`` when enabled.

    Breadth-first shells carry subset-sum constraints between S and the
    step index — exponentially bad BDD shapes — while the fixpoint
    covers the whole (B, S) space (a constant-TRUE BDD).  The designated
    s1269-style frontier-blow-up circuit.
    """
    if step % 2 == 0:
        raise ValueError("step must be odd so B cycles through all values")
    b = CircuitBuilder(f"subsum{width}")
    enable = b.input("en")
    stride = b.latches("b", width, init=1)
    total = b.latches("s", width)
    b.set_next_vector(stride,
                      b.add(stride, b.constant_vector(step, width)))
    summed = b.add(total, stride)
    b.set_next_vector(total, b.mux_vector(enable, summed, total))
    b.output("msb", total[-1])
    return b.build()


def serial_multiplier(width: int) -> Circuit:
    """Serial multiply-accumulate datapath (the s1269 stand-in).

    The multiplicand ``X`` is loaded from the data inputs on the first
    cycle (while the ``armed`` flag is still 0) and frozen; afterwards
    each enabled cycle accumulates ``A' = A + X``.  The reachable set
    settles into the small "A is a multiple of the odd part of X"
    shape, but breadth-first shells are slices of the *multiplication
    relation* ``A = m·X`` — exponentially bad BDDs, exactly the blow-up
    the paper reports for the s1269 multiplier circuit.
    """
    b = CircuitBuilder(f"sermul{width}")
    enable = b.input("en")
    d_in = b.inputs("d", width)
    armed = b.latch("armed")
    x = b.latches("x", width)
    acc = b.latches("a", width)
    b.set_next(armed, b.const1)
    load = ~armed
    b.set_next_vector(x, b.mux_vector(load, d_in, x))
    total = b.add(acc, x)
    take = enable & armed
    b.set_next_vector(acc, b.mux_vector(take, total, acc))
    b.output("msb", acc[-1])
    return b.build()


def checksum_memory(words: int, width: int) -> Circuit:
    """A write-port memory with a running checksum (s3330 stand-in).

    Each write stores ``data`` at ``addr`` and accumulates
    ``C' = C + data``.  Because overwritten words still contributed to
    C, the fixpoint decouples memory from checksum (a near-product,
    small BDD), but breadth-first shells tie the memory contents to the
    checksum through subset-sum correlations — large, irregular BDDs.
    This mirrors the channel-plus-CRC structure of communication
    controllers.
    """
    if words & (words - 1):
        raise ValueError("words must be a power of two")
    addr_bits = max(1, words.bit_length() - 1)
    b = CircuitBuilder(f"cksum{words}x{width}")
    write = b.input("wr")
    addr = b.inputs("adr", addr_bits)
    data = b.inputs("dat", width)
    checksum = b.latches("c", width)
    memory = [b.latches(f"w{k}_", width) for k in range(words)]
    for k in range(words):
        hit = write & b.equals_constant(addr, k)
        b.set_next_vector(memory[k],
                          b.mux_vector(hit, data, memory[k]))
    total = b.add(checksum, data)
    b.set_next_vector(checksum,
                      b.mux_vector(write, total, checksum))
    b.output("c_msb", checksum[-1])
    return b.build()
