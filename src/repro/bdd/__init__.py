"""Pure-Python ROBDD package (the CUDD-role substrate of the paper).

Public entry points:

* :class:`Manager` — variable declaration, node store, GC, reordering.
* :class:`Function` — operator-overloaded handles on BDDs.
* :func:`constrain`, :func:`restrict` — generalized cofactors.
* :mod:`repro.bdd.counting` — minterm counts, density, path profiles.
* :mod:`repro.bdd.governor` — resource budgets (nodes, steps, wall
  clock) with abortable kernels and clean unwind; armed through
  :meth:`Manager.with_budget`.

The raw-node layer (``manager.mk``, ``function.node``, the traversal and
counting helpers) is an *internal* advanced API used by the
approximation and decomposition algorithms in :mod:`repro.core`.  It
manipulates opaque node handles owned by the manager's node store —
see :mod:`repro.bdd.backend` (``docs/backends.md``) for the store
protocol and the available backends (``object`` and ``array``).
"""

from .arraystore import ArrayStore
from .backend import (BACKENDS, DEFAULT_BACKEND, NodeStore, ObjectStore,
                      create_store, resolve_backend)
from .computed import CacheOpStats, ComputedTable, register_op
from .counting import bdd_size, density, log2int, sat_count, shared_size
from .dot import to_dot
from .expr import ExprError, parse
from .function import Function
from .governor import (Budget, BudgetExceeded, DeadlineExceeded, Governor,
                       InjectedAbort, ResourceError)
from .io import LoadError, dump, dumps_many, load, loads_many, transfer
from .manager import Manager, ManagerStats
from .node import TERMINAL_LEVEL, Node
from .ops_extra import (conjoin_all, disjoin_all, essential_variables,
                        swap_variables)
from .restrict import constrain, restrict
from .sanitize import Diagnostic, SanitizerError

__all__ = [
    "Manager",
    "ManagerStats",
    "NodeStore",
    "ObjectStore",
    "ArrayStore",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "create_store",
    "resolve_backend",
    "ComputedTable",
    "CacheOpStats",
    "register_op",
    "Diagnostic",
    "SanitizerError",
    "Budget",
    "Governor",
    "ResourceError",
    "BudgetExceeded",
    "DeadlineExceeded",
    "InjectedAbort",
    "Function",
    "Node",
    "TERMINAL_LEVEL",
    "constrain",
    "restrict",
    "sat_count",
    "density",
    "bdd_size",
    "shared_size",
    "log2int",
    "to_dot",
    "parse",
    "ExprError",
    "dump",
    "load",
    "LoadError",
    "dumps_many",
    "loads_many",
    "transfer",
    "conjoin_all",
    "disjoin_all",
    "swap_variables",
    "essential_variables",
]
