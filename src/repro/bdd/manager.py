"""The BDD manager: unique table, computed cache, variables, GC.

The manager owns every node it ever created.  Canonicity is enforced by
hash-consing through per-level *subtables* (``dict`` keyed by the child
pair), exactly like CUDD's unique table; per-level subtables make the
adjacent-level swap of dynamic reordering straightforward.

Reference counting is *structural*: ``node.ref`` counts parent arcs plus
external references.  Normal operation only ever increments; decrements
happen during :meth:`Manager.collect_garbage` (which recomputes counts
from live :class:`~repro.bdd.function.Function` handles) and during
variable swaps (which maintain them incrementally).
"""

from __future__ import annotations

import weakref
from collections.abc import Iterable, Sequence

from .node import Node, TERMINAL_LEVEL


class Manager:
    """Create and combine BDDs over a growing set of named variables.

    Example
    -------
    >>> m = Manager()
    >>> a, b = m.add_vars("a", "b")
    >>> f = a & ~b
    >>> m.sat_count(f)
    1
    """

    def __init__(self, vars: Iterable[str] = ()) -> None:
        self.zero_node = Node(TERMINAL_LEVEL, None, None, value=0)
        self.one_node = Node(TERMINAL_LEVEL, None, None, value=1)
        # Terminals must never be collected.
        self.zero_node.ref = 1
        self.one_node.ref = 1
        #: subtables[level] maps (hi, lo) -> Node
        self._subtables: list[dict[tuple[Node, Node], Node]] = []
        self._level_to_var: list[str] = []
        self._var_to_level: dict[str, int] = {}
        #: computed table for binary/ternary operations
        self._cache: dict[tuple, Node] = {}
        #: live Function handles (GC roots), keyed by object identity.
        #: A WeakSet would deduplicate *equal* handles (Function defines
        #: value equality), silently dropping roots when the surviving
        #: duplicate dies — hence the explicit id-keyed weak registry.
        self._functions: dict[int, weakref.ref] = {}
        self._num_nodes = 0
        #: statistics, useful in benchmarks
        self.gc_count = 0
        self.reorder_count = 0
        for name in vars:
            self.add_var(name)

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._level_to_var)

    @property
    def var_names(self) -> list[str]:
        """Variable names in the current order, root-most first."""
        return list(self._level_to_var)

    def add_var(self, name: str, level: int | None = None) -> "Function":
        """Declare a new variable and return its projection function.

        ``level`` inserts the variable at a specific position in the
        order (default: at the bottom).  Inserting above existing levels
        is only allowed while the manager holds no internal nodes, since
        node levels are physical.
        """
        from .function import Function

        if name in self._var_to_level:
            raise ValueError(f"variable {name!r} already declared")
        if level is None:
            level = len(self._level_to_var)
        if level != len(self._level_to_var) and self._num_nodes:
            raise ValueError("cannot insert a variable above existing nodes")
        self._level_to_var.insert(level, name)
        self._subtables.insert(level, {})
        self._var_to_level = {
            v: i for i, v in enumerate(self._level_to_var)
        }
        node = self.mk(level, self.one_node, self.zero_node)
        return Function(self, node)

    def add_vars(self, *names: str) -> "list[Function]":
        """Declare several variables at once, bottom of the order."""
        return [self.add_var(n) for n in names]

    def var(self, name: str) -> "Function":
        """Projection function of an existing variable."""
        from .function import Function

        level = self._var_to_level[name]
        return Function(self, self.mk(level, self.one_node, self.zero_node))

    def var_at_level(self, level: int) -> str:
        """Name of the variable currently at ``level``."""
        return self._level_to_var[level]

    def level_of_var(self, name: str) -> int:
        """Current level of variable ``name``."""
        return self._var_to_level[name]

    def var_node(self, name: str) -> Node:
        """Raw projection node of ``name`` (advanced API)."""
        return self.mk(self._var_to_level[name], self.one_node,
                       self.zero_node)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def mk(self, level: int, hi: Node, lo: Node) -> Node:
        """Find-or-create the reduced node ``(level, hi, lo)``.

        Applies the ROBDD reduction rule (``hi is lo`` collapses), so the
        result canonically represents ``var(level)·hi + var(level)'·lo``.
        Children must live strictly below ``level``.
        """
        if hi is lo:
            return hi
        if hi.level <= level or lo.level <= level:
            raise ValueError("children must be below the node level")
        subtable = self._subtables[level]
        key = (hi, lo)
        node = subtable.get(key)
        if node is None:
            node = Node(level, hi, lo)
            hi.ref += 1
            lo.ref += 1
            subtable[key] = node
            self._num_nodes += 1
        return node

    # ------------------------------------------------------------------
    # Constants as handles
    # ------------------------------------------------------------------

    @property
    def true(self) -> "Function":
        """The constant TRUE function."""
        from .function import Function

        return Function(self, self.one_node)

    @property
    def false(self) -> "Function":
        """The constant FALSE function."""
        from .function import Function

        return Function(self, self.zero_node)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Total number of internal nodes owned by the manager."""
        return self._num_nodes

    def level_sizes(self) -> list[int]:
        """Number of nodes per level, root-most first."""
        return [len(t) for t in self._subtables]

    # ------------------------------------------------------------------
    # Cache and function registry
    # ------------------------------------------------------------------

    def cache_lookup(self, key: tuple) -> Node | None:
        """Look up the computed table (advanced API)."""
        return self._cache.get(key)

    def cache_insert(self, key: tuple, result: Node) -> None:
        """Insert into the computed table (advanced API)."""
        self._cache[key] = result

    def register(self, function: "Function") -> None:
        """Track a Function handle as a garbage-collection root."""
        key = id(function)

        def drop(_ref: weakref.ref, _key: int = key,
                 _table: dict = self._functions) -> None:
            _table.pop(_key, None)

        self._functions[key] = weakref.ref(function, drop)

    def live_roots(self) -> list[Node]:
        """Root nodes of all live Function handles."""
        roots = []
        for ref in list(self._functions.values()):
            function = ref()
            if function is not None:
                roots.append(function.node)
        return roots

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    def collect_garbage(self) -> int:
        """Remove nodes unreachable from live Function handles.

        Returns the number of nodes reclaimed.  The computed table is
        dropped wholesale, so the next operations re-derive results.

        Only call this at a *safe point*: any raw :class:`Node` reference
        held outside a Function handle is invalidated.
        """
        marked: set[int] = set()
        stack = self.live_roots()
        while stack:
            node = stack.pop()
            if id(node) in marked or node.is_terminal:
                continue
            marked.add(id(node))
            stack.append(node.hi)
            stack.append(node.lo)
        reclaimed = 0
        for subtable in self._subtables:
            dead = [key for key, node in subtable.items()
                    if id(node) not in marked]
            for key in dead:
                del subtable[key]
                reclaimed += 1
        self._num_nodes -= reclaimed
        self._cache.clear()
        self._recount_refs()
        self.gc_count += 1
        return reclaimed

    def _recount_refs(self) -> None:
        """Recompute structural reference counts from scratch."""
        for subtable in self._subtables:
            for node in subtable.values():
                node.ref = 0
        self.zero_node.ref = 0
        self.one_node.ref = 0
        for subtable in self._subtables:
            for node in subtable.values():
                node.hi.ref += 1
                node.lo.ref += 1
        for root in self.live_roots():
            root.ref += 1
        self.zero_node.ref += 1
        self.one_node.ref += 1

    # ------------------------------------------------------------------
    # Convenience forwarding (implemented in sibling modules)
    # ------------------------------------------------------------------

    def ite(self, f: "Function", g: "Function", h: "Function") -> "Function":
        """If-then-else: ``f·g + f'·h``."""
        from .function import Function
        from .operations import ite_node

        return Function(self, ite_node(self, f.node, g.node, h.node))

    def apply(self, op: str, f: "Function", g: "Function") -> "Function":
        """Apply a named binary operator (``and``, ``or``, ``xor``, ...)."""
        from .function import Function
        from .operations import apply_node

        return Function(self, apply_node(self, op, f.node, g.node))

    def cube(self, assignment: dict[str, bool]) -> "Function":
        """Conjunction of literals, e.g. ``{"a": True, "b": False}``."""
        from .function import Function

        node = self.one_node
        for name in sorted(assignment,
                           key=lambda n: self._var_to_level[n],
                           reverse=True):
            level = self._var_to_level[name]
            if assignment[name]:
                node = self.mk(level, node, self.zero_node)
            else:
                node = self.mk(level, self.zero_node, node)
        return Function(self, node)

    def sat_count(self, f: "Function",
                  nvars: int | None = None) -> int:
        """Exact number of satisfying assignments over ``nvars`` variables."""
        from .counting import sat_count

        return sat_count(f, nvars)

    def reorder(self, order: Sequence[str] | None = None) -> None:
        """Reorder variables (sifting if ``order`` is None)."""
        from .reorder import set_order, sift

        if order is None:
            sift(self)
        else:
            set_order(self, order)

    def check_invariants(self) -> None:
        """Verify structural invariants (used by the test suite)."""
        seen: set[int] = set()
        count = 0
        for level, subtable in enumerate(self._subtables):
            for (hi, lo), node in subtable.items():
                assert node.level == level, "level field out of sync"
                assert node.hi is hi and node.lo is lo, "key out of sync"
                assert hi is not lo, "redundant node"
                assert hi.level > level and lo.level > level, \
                    "order violation"
                assert id(node) not in seen, "duplicate node"
                seen.add(id(node))
                count += 1
        assert count == self._num_nodes, "node count out of sync"
