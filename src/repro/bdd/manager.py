"""The BDD manager: variables, computed table, GC, over a node store.

The manager owns the semantic state — variable names and order, the
computed table, Function-handle roots, statistics, the governor — and
delegates the physical node graph to a pluggable *node store* backend
(:mod:`repro.bdd.backend`).  Canonicity is enforced by hash-consing in
the store's unique table, exactly like CUDD's; per-level subtables make
the adjacent-level swap of dynamic reordering straightforward.

Two stores ship: the reference ``ObjectStore`` (one
:class:`~repro.bdd.node.Node` object per BDD node, handles are the
nodes) and the flat ``ArrayStore`` (``array('q')`` columns, handles are
int ids).  ``Manager(backend="array")``, the ``REPRO_BACKEND``
environment variable, or the ``--backend`` CLI flag select one; every
algorithm goes through the store's accessors and works on both.

Reference counting is *structural*: a node's count tracks parent arcs
plus external references.  Normal operation only ever increments;
decrements happen during :meth:`Manager.collect_garbage` (which
recomputes counts from live :class:`~repro.bdd.function.Function`
handles) and during variable swaps (which maintain them incrementally).

Memory management is CUDD-style and opt-in:

* ``cache_limit`` bounds the computed table
  (:class:`~repro.bdd.computed.ComputedTable`) to a fixed number of
  buckets with overwrite-on-collision eviction.
* ``gc_threshold`` arms *automatic garbage collection*: when the node
  count crosses the threshold, the next **safe point** — the entry of a
  Function-level operation, never inside a kernel traversal holding raw
  node handles — runs :meth:`collect_garbage`.  Code that holds raw
  handles across Function-level calls can suspend collection with
  :meth:`defer_gc`.

:attr:`Manager.stats` snapshots per-operation cache hits/misses/
evictions, GC count/pauses/reclaimed nodes, peak live nodes, and the
reorder count; :meth:`reset_stats` rewinds all counters.
"""

from __future__ import annotations

import heapq
import itertools
import time
import weakref
from collections.abc import Iterable, Iterator, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from .backend import NodeStore, create_store
from .computed import CacheOpStats, ComputedTable
from .governor import Budget, Governor
from .sanitize import (Diagnostic, SanitizerError, check_manager,
                       sanitize_enabled, sanitize_node_limit,
                       sanitize_stride)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..store.store import BDDStore


@dataclass(frozen=True)
class ManagerStats:
    """Point-in-time snapshot of a manager's runtime counters.

    Obtained from :attr:`Manager.stats`; every later performance change
    measures itself against these numbers.
    """

    #: live internal nodes right now
    nodes: int
    #: historical maximum of live internal nodes
    peak_nodes: int
    #: declared variables
    num_vars: int
    #: entries currently memoized in the computed table
    cache_size: int
    #: configured computed-table bound (None: unbounded)
    cache_limit: int | None
    #: per-operation cache counters (op tag -> hits/misses/evictions)
    cache_per_op: dict[str, CacheOpStats] = field(default_factory=dict)
    #: garbage collections run (manual + automatic)
    gc_count: int = 0
    #: total seconds spent inside collect_garbage
    gc_pause_total: float = 0.0
    #: longest single GC pause in seconds
    gc_pause_max: float = 0.0
    #: total nodes reclaimed by GC
    gc_reclaimed: int = 0
    #: variable reorderings run
    reorder_count: int = 0
    #: governor aborts per op tag (budget/deadline/injected)
    aborts: dict[str, int] = field(default_factory=dict)
    #: degradation-ladder rungs taken, per kind (gc/subset/reorder/exact)
    degradations: dict[str, int] = field(default_factory=dict)
    #: highest live-node count observed while a budget was armed
    budget_peak_nodes: int = 0
    #: highest step count observed inside one armed budget window
    budget_peak_steps: int = 0
    #: node-store backend the manager runs on ("object", "array", ...)
    backend: str = "object"

    @property
    def total_aborts(self) -> int:
        return sum(self.aborts.values())

    @property
    def total_degradations(self) -> int:
        return sum(self.degradations.values())

    @property
    def cache_hits(self) -> int:
        return sum(s.hits for s in self.cache_per_op.values())

    @property
    def cache_misses(self) -> int:
        return sum(s.misses for s in self.cache_per_op.values())

    @property
    def cache_evictions(self) -> int:
        return sum(s.evictions for s in self.cache_per_op.values())

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> dict:
        """Plain-data snapshot (JSON-ready, e.g. for BENCH_*.json rows)."""
        return {
            "nodes": self.nodes,
            "peak_nodes": self.peak_nodes,
            "num_vars": self.num_vars,
            "cache_size": self.cache_size,
            "cache_limit": self.cache_limit,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_evictions": self.cache_evictions,
            "gc_count": self.gc_count,
            "gc_pause_total": self.gc_pause_total,
            "gc_pause_max": self.gc_pause_max,
            "gc_reclaimed": self.gc_reclaimed,
            "reorder_count": self.reorder_count,
            "aborts": dict(self.aborts),
            "degradations": dict(self.degradations),
            "budget_peak_nodes": self.budget_peak_nodes,
            "budget_peak_steps": self.budget_peak_steps,
            "backend": self.backend,
        }


class Manager:
    """Create and combine BDDs over a growing set of named variables.

    Parameters
    ----------
    vars:
        Variable names to declare up front.
    cache_limit:
        Bound on the computed table (None: unbounded, the default).
    gc_threshold:
        Node count at which automatic garbage collection arms itself;
        collection then runs at the next safe point.  None (default)
        disables automatic GC — :meth:`collect_garbage` stays available
        for explicit calls.
    backend:
        Node-store backend name (``"object"`` or ``"array"``); None
        (default) defers to the ``REPRO_BACKEND`` environment variable
        and then to ``"object"``.  See :mod:`repro.bdd.backend`.

    Example
    -------
    >>> m = Manager()
    >>> a, b = m.add_vars("a", "b")
    >>> f = a & ~b
    >>> m.sat_count(f)
    1
    """

    def __init__(self, vars: Iterable[str] = (), *,
                 cache_limit: int | None = None,
                 gc_threshold: int | None = None,
                 backend: str | None = None) -> None:
        #: the node-store backend owning the physical node graph
        self.store: NodeStore = create_store(backend)
        self._level_to_var: list[str] = []
        self._var_to_level: dict[str, int] = {}
        #: computed table shared by every memoized operation
        self.computed = ComputedTable(cache_limit)
        #: live Function handles (GC roots), keyed by object identity.
        #: A WeakSet would deduplicate *equal* handles (Function defines
        #: value equality), silently dropping roots when the surviving
        #: duplicate dies — hence the explicit id-keyed weak registry.
        self._functions: dict[int, weakref.ref] = {}
        #: per-root structural-metric memos, keyed by handle.  Valid
        #: between metric safe points — GC and variable reordering
        #: invalidate them wholesale (which also caps their growth:
        #: plain dicts, since int handles cannot be weakly referenced).
        self._size_cache: dict[Any, int] = {}
        self._support_cache: dict[Any, frozenset[int]] = {}
        #: statistics, useful in benchmarks
        self.gc_count = 0
        self.reorder_count = 0
        self._gc_pause_total = 0.0
        self._gc_pause_max = 0.0
        self._gc_reclaimed = 0
        self._gc_defer = 0
        #: governor aborts per op tag, recorded by Governor.checkpoint
        self._abort_counts: dict[str, int] = {}
        #: degradation-ladder rungs taken, per kind
        self._degradations: dict[str, int] = {}
        #: per-manager resource governor (budgets, deadline, injection)
        self.governor = Governor(self)
        # Safe points elapsed since the last REPRO_SANITIZE sweep.
        self._sanitize_tick = 0
        self._gc_threshold = gc_threshold
        # The live trigger starts at the threshold and is raised after
        # each collection (see collect_garbage) to avoid GC thrash when
        # most nodes are live.
        self._gc_trigger = gc_threshold
        for name in vars:
            self.add_var(name)

    # ------------------------------------------------------------------
    # Backend plumbing
    # ------------------------------------------------------------------

    @property
    def backend(self) -> str:
        """Name of the active node-store backend."""
        return self.store.name

    @property
    def zero_node(self) -> Any:
        """Handle of the FALSE terminal (internal node-level API)."""
        return self.store.zero

    @property
    def one_node(self) -> Any:
        """Handle of the TRUE terminal (internal node-level API)."""
        return self.store.one

    @property
    def _num_nodes(self) -> int:
        return self.store._count

    @_num_nodes.setter
    def _num_nodes(self, value: int) -> None:
        # Writable for the sanitizer's corruption tests, which skew the
        # count on purpose.
        self.store._count = value

    @property
    def _peak_nodes(self) -> int:
        return self.store._peak

    @_peak_nodes.setter
    def _peak_nodes(self, value: int) -> None:
        self.store._peak = value

    @property
    def _subtables(self):
        """The ObjectStore's per-level unique tables.

        Object-backend-only escape hatch for tests that inspect or
        corrupt the raw tables; the array backend has no equivalent
        attribute.
        """
        return self.store._subtables

    # ------------------------------------------------------------------
    # Variable management
    # ------------------------------------------------------------------

    @property
    def num_vars(self) -> int:
        """Number of declared variables."""
        return len(self._level_to_var)

    @property
    def var_names(self) -> list[str]:
        """Variable names in the current order, root-most first."""
        return list(self._level_to_var)

    def add_var(self, name: str, level: int | None = None) -> "Function":
        """Declare a new variable and return its projection function.

        ``level`` inserts the variable at a specific position in the
        order (default: at the bottom).  Inserting above existing levels
        is only allowed while the manager holds no internal nodes, since
        node levels are physical.
        """
        from .function import Function

        if name in self._var_to_level:
            raise ValueError(f"variable {name!r} already declared")
        if level is None:
            level = len(self._level_to_var)
        if level != len(self._level_to_var) and self.store.num_nodes:
            raise ValueError("cannot insert a variable above existing nodes")
        if level == len(self._level_to_var):
            # Appending at the bottom shifts nothing: O(1) instead of
            # rebuilding the name map (declaring n variables one by one
            # would otherwise cost O(n^2)).
            self._level_to_var.append(name)
            self.store.add_level(level)
            self._var_to_level[name] = level
        else:
            self._level_to_var.insert(level, name)
            self.store.add_level(level)
            self._var_to_level = {
                v: i for i, v in enumerate(self._level_to_var)
            }
        node = self.store.mk(level, self.store.one, self.store.zero)
        return Function(self, node)

    def add_vars(self, *names: str) -> "list[Function]":
        """Declare several variables at once, bottom of the order."""
        return [self.add_var(n) for n in names]

    def var(self, name: str) -> "Function":
        """Projection function of an existing variable."""
        from .function import Function

        level = self._var_to_level[name]
        return Function(self, self.store.mk(level, self.store.one,
                                            self.store.zero))

    def var_at_level(self, level: int) -> str:
        """Name of the variable currently at ``level``."""
        return self._level_to_var[level]

    def level_of_var(self, name: str) -> int:
        """Current level of variable ``name``."""
        return self._var_to_level[name]

    def var_handle(self, name: str) -> Any:
        """Raw projection handle of ``name`` (internal node-level API).

        The handle type is backend-defined (a ``Node`` on the object
        store, an ``int`` id on the array store); use the store's
        accessors to inspect it.
        """
        return self.store.mk(self._var_to_level[name], self.store.one,
                             self.store.zero)

    def var_node(self, name: str) -> Any:
        """Deprecated spelling of :meth:`var_handle`."""
        return self.var_handle(name)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------

    def mk(self, level: int, hi: Any, lo: Any) -> Any:
        """Find-or-create the reduced node ``(level, hi, lo)``.

        Applies the ROBDD reduction rule (``hi == lo`` collapses), so the
        result canonically represents ``var(level)·hi + var(level)'·lo``.
        Children must live strictly below ``level``.
        """
        return self.store.mk(level, hi, lo)

    # ------------------------------------------------------------------
    # Constants as handles
    # ------------------------------------------------------------------

    @property
    def true(self) -> "Function":
        """The constant TRUE function."""
        from .function import Function

        return Function(self, self.store.one)

    @property
    def false(self) -> "Function":
        """The constant FALSE function."""
        from .function import Function

        return Function(self, self.store.zero)

    # ------------------------------------------------------------------
    # Size accounting
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Total number of internal nodes owned by the manager."""
        return self.store.num_nodes

    def level_sizes(self) -> list[int]:
        """Number of nodes per level, root-most first."""
        return self.store.level_sizes()

    # ------------------------------------------------------------------
    # Memoized structural metrics
    # ------------------------------------------------------------------

    def node_size(self, node: Any) -> int:
        """Memoized ``|f|`` of the function rooted at ``node``.

        Backs :meth:`Function.__len__`; hot loops (image computation,
        reachability traces) query the size of the same root many times,
        so the graph walk runs once per root between metric safe points.
        """
        size = self._size_cache.get(node)
        if size is None:
            from .counting import bdd_size

            size = bdd_size(self.store, node)
            self._size_cache[node] = size
        return size

    def node_support_levels(self, node: Any) -> frozenset[int]:
        """Memoized support levels of the function rooted at ``node``."""
        levels = self._support_cache.get(node)
        if levels is None:
            from .traversal import support_levels

            levels = frozenset(support_levels(self.store, node))
            self._support_cache[node] = levels
        return levels

    def invalidate_metric_caches(self) -> None:
        """Drop the size/support memos.

        Called at the metric safe points: garbage collection (root
        identities may be recycled) and variable swaps (levels move, so
        cached support levels go stale).
        """
        self._size_cache.clear()
        self._support_cache.clear()

    # ------------------------------------------------------------------
    # Cache limit and function registry
    # ------------------------------------------------------------------

    @property
    def cache_limit(self) -> int | None:
        """Computed-table bound (None: unbounded)."""
        return self.computed.limit

    def set_cache_limit(self, limit: int | None) -> None:
        """Re-bound the computed table, dropping memoized results."""
        self.computed.set_limit(limit)

    def register(self, function: "Function") -> None:
        """Track a Function handle as a garbage-collection root."""
        key = id(function)

        def drop(_ref: weakref.ref, _key: int = key,
                 _table: dict = self._functions) -> None:
            _table.pop(_key, None)

        self._functions[key] = weakref.ref(function, drop)

    def live_root_handles(self) -> list[Any]:
        """Root handles of all live Function handles."""
        roots = []
        for ref in list(self._functions.values()):
            function = ref()
            if function is not None:
                roots.append(function.node)
        return roots

    def live_roots(self) -> list[Any]:
        """Deprecated spelling of :meth:`live_root_handles`."""
        return self.live_root_handles()

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------

    @property
    def gc_threshold(self) -> int | None:
        """Node count arming automatic GC (None: disabled)."""
        return self._gc_threshold

    @gc_threshold.setter
    def gc_threshold(self, value: int | None) -> None:
        if value is not None and value <= 0:
            raise ValueError("gc_threshold must be positive or None")
        self._gc_threshold = value
        self._gc_trigger = value

    def safe_point(self) -> None:
        """Run pending automatic GC if armed — called where no raw
        node handles are held outside Function handles.

        Every Function-level operation calls this on entry; node-level
        kernel traversals never do, so collection cannot invalidate raw
        handles mid-operation.
        """
        if self._gc_trigger is not None and not self._gc_defer \
                and self.store.num_nodes >= self._gc_trigger:
            self.collect_garbage()
        elif sanitize_enabled():
            # REPRO_SANITIZE=1: verify the whole graph at every
            # REPRO_SANITIZE_STRIDE-th safe point while it is small
            # enough to sweep cheaply.  A full sweep at *every* safe
            # point is linear in the graph per operation and multiplies
            # suite wall-clock by an order of magnitude; the stride
            # keeps corruption detection within one operation batch of
            # its cause.  (collect_garbage verifies unconditionally, so
            # the big-manager case is still covered at every
            # collection.)
            self._sanitize_tick += 1
            if self._sanitize_tick >= sanitize_stride() \
                    and self.store.num_nodes <= sanitize_node_limit():
                self._sanitize_tick = 0
                self.debug_check()

    @contextmanager
    def defer_gc(self) -> "Iterator[Manager]":
        """Suspend automatic GC while holding raw node handles.

        Advanced API for algorithms that keep raw handles across
        Function-level operations; nests freely.  A collection
        postponed by the deferral runs when the outermost block exits —
        also when the body raises, so an aborted algorithm cannot leave
        the manager with GC permanently wedged off.
        """
        self._gc_defer += 1
        try:
            yield self
        finally:
            self._gc_defer -= 1
            if not self._gc_defer:
                # The exit of the outermost deferral is a safe point:
                # the raw handles the block protected are out of scope
                # (or rooted in Function handles by now).  Run the
                # postponed collection rather than waiting for the next
                # operation.
                self.safe_point()

    @contextmanager
    def with_budget(self, *, node_budget: int | None = None,
                    step_budget: int | None = None,
                    deadline: float | None = None) -> "Iterator[Manager]":
        """Enforce resource budgets on all kernels inside the block.

        ``node_budget`` bounds live + fresh unique-table nodes,
        ``step_budget`` bounds kernel loop steps inside the block, and
        ``deadline`` is wall-clock seconds from entry.  A kernel that
        trips a bound raises :class:`~repro.bdd.governor.BudgetExceeded`
        or :class:`~repro.bdd.governor.DeadlineExceeded` and unwinds
        cleanly — the manager stays consistent (``debug_check`` passes)
        and the aborted operation can be re-run, under a larger budget
        or none.  Nests: the inner budget wins while its block is
        active; the outer one is restored on exit, body raising or not.
        """
        token = self.governor.arm(Budget(node_budget=node_budget,
                                         step_budget=step_budget,
                                         deadline=deadline))
        try:
            yield self
        finally:
            self.governor.restore(token)

    def record_degradation(self, kind: str) -> None:
        """Count a degradation-ladder rung taken on this manager.

        ``kind`` names the rung (``gc``, ``subset``, ``reorder``,
        ``exact``); the counters surface in :attr:`stats` and in
        benchmark trajectory rows.
        """
        self._degradations[kind] = self._degradations.get(kind, 0) + 1

    def collect_garbage(self) -> int:
        """Remove nodes unreachable from live Function handles.

        Returns the number of nodes reclaimed.  The computed table is
        dropped wholesale, so the next operations re-derive results —
        mandatory on stores that recycle node ids, where a stale cache
        entry could otherwise alias a fresh node.

        Only call this at a *safe point*: any raw node handle held
        outside a Function handle is invalidated.
        """
        start = time.perf_counter()
        self.invalidate_metric_caches()
        reclaimed = self.store.collect(self.live_root_handles())
        self.computed.clear()
        self.gc_count += 1
        self._gc_reclaimed += reclaimed
        pause = time.perf_counter() - start
        self._gc_pause_total += pause
        if pause > self._gc_pause_max:
            self._gc_pause_max = pause
        if self._gc_threshold is not None:
            # Raise the live trigger above the surviving population so a
            # mostly-live heap does not re-collect on every safe point.
            self._gc_trigger = max(self._gc_threshold,
                                   2 * self.store.num_nodes)
        if sanitize_enabled():
            self.debug_check()
        return reclaimed

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def stats(self) -> ManagerStats:
        """Snapshot of all runtime counters (see :class:`ManagerStats`)."""
        return ManagerStats(
            nodes=self.store.num_nodes,
            peak_nodes=self.store.peak_nodes,
            num_vars=self.num_vars,
            cache_size=len(self.computed),
            cache_limit=self.computed.limit,
            cache_per_op=self.computed.stats(),
            gc_count=self.gc_count,
            gc_pause_total=self._gc_pause_total,
            gc_pause_max=self._gc_pause_max,
            gc_reclaimed=self._gc_reclaimed,
            reorder_count=self.reorder_count,
            aborts=dict(self._abort_counts),
            degradations=dict(self._degradations),
            budget_peak_nodes=self.governor.budget_peak_nodes,
            budget_peak_steps=self.governor.budget_peak_steps,
            backend=self.store.name,
        )

    @property
    def governor_counters(self) -> tuple[int, int]:
        """``(total aborts, total degradations)`` as cheap plain ints.

        The full :attr:`stats` snapshot walks the computed table; this
        pair costs two small dict sums, which is what lets the serve
        session republish it after every request so other threads can
        read governor counters without touching the manager.
        """
        return (sum(self._abort_counts.values()),
                sum(self._degradations.values()))

    def reset_stats(self) -> None:
        """Rewind every statistics counter; entries and nodes survive."""
        self.computed.reset_stats()
        self.gc_count = 0
        self.reorder_count = 0
        self.store._peak = self.store.num_nodes
        self._gc_pause_total = 0.0
        self._gc_pause_max = 0.0
        self._gc_reclaimed = 0
        self._abort_counts.clear()
        self._degradations.clear()
        self.governor.reset_stats()

    # ------------------------------------------------------------------
    # Convenience forwarding (implemented in sibling modules)
    # ------------------------------------------------------------------

    def ite(self, f: "Function", g: "Function", h: "Function") -> "Function":
        """If-then-else: ``f·g + f'·h``."""
        from .function import Function
        from .operations import ite_node

        self.safe_point()
        return Function(self, ite_node(self, f.node, g.node, h.node))

    def apply(self, op: str, f: "Function", g: "Function") -> "Function":
        """Apply a named binary operator (``and``, ``or``, ``xor``, ...)."""
        from .function import Function
        from .operations import apply_node

        self.safe_point()
        return Function(self, apply_node(self, op, f.node, g.node))

    def conjoin(self, functions: Iterable["Function"]) -> "Function":
        """AND of many functions, combining the two smallest first.

        Balanced smallest-first combination is the standard trick for
        keeping intermediate BDDs small when conjoining many partitions
        (transition relations, McMillan factors).
        """
        return self._combine(functions, "and", self.true)

    def disjoin(self, functions: Iterable["Function"]) -> "Function":
        """OR of many functions, combining the two smallest first."""
        return self._combine(functions, "or", self.false)

    def _combine(self, functions: Iterable["Function"], op: str,
                 neutral: "Function") -> "Function":
        counter = itertools.count()
        heap: list[tuple[int, int, "Function"]] = []
        for function in functions:
            if function.manager is not self:
                raise ValueError("operands belong to different managers")
            heapq.heappush(heap, (len(function), next(counter), function))
        if not heap:
            return neutral
        while len(heap) > 1:
            _, _, a = heapq.heappop(heap)
            _, _, b = heapq.heappop(heap)
            combined = self.apply(op, a, b)
            heapq.heappush(heap, (len(combined), next(counter), combined))
        return heap[0][2]

    def cube(self, assignment: dict[str, bool]) -> "Function":
        """Conjunction of literals, e.g. ``{"a": True, "b": False}``."""
        from .function import Function

        self.safe_point()
        store = self.store
        node = store.one
        for name in sorted(assignment,
                           key=lambda n: self._var_to_level[n],
                           reverse=True):
            level = self._var_to_level[name]
            if assignment[name]:
                node = store.mk(level, node, store.zero)
            else:
                node = store.mk(level, store.zero, node)
        return Function(self, node)

    def sat_count(self, f: "Function",
                  nvars: int | None = None) -> int:
        """Exact number of satisfying assignments over ``nvars`` variables."""
        from .counting import sat_count

        return sat_count(f, nvars)

    def reorder(self, order: Sequence[str] | None = None) -> None:
        """Reorder variables (sifting if ``order`` is None)."""
        from .reorder import set_order, sift

        if order is None:
            sift(self)
        else:
            set_order(self, order)

    def save_function(self, store: "BDDStore", name: str,
                      function: "Function", *,
                      tags: Iterable[str] = ()) -> str:
        """Persist a function into an on-disk :class:`~repro.store.
        store.BDDStore` under ``name``; returns its content address.

        Convenience front door for :meth:`BDDStore.save` — see
        ``docs/persistence.md`` for the format and the durability
        contract.
        """
        return store.save(name, function, tags=tags)

    def load_function(self, store: "BDDStore", name: str,
                      *, declare: bool = True) -> "Function":
        """Load a persisted function into this manager by name.

        Unknown variables are declared at the bottom of the order
        unless ``declare`` is False; a corrupt object raises
        :class:`~repro.store.errors.StoreCorruptError` instead of ever
        producing a silently wrong BDD.
        """
        return store.load(self, name, declare=declare)

    def debug_check(self, raise_on_error: bool = True,
                    check_cache: bool = True) -> "list[Diagnostic]":
        """Verify every structural invariant of the node graph.

        The CUDD ``Cudd_DebugCheck`` equivalent (see
        :mod:`repro.bdd.sanitize` for the invariant list): variable
        ordering along arcs, reduction, unique-table hash-consing
        consistency, computed-table liveness and op-tag registration,
        and GC/root bookkeeping against a fresh reachability sweep.
        Works on every store backend through the store protocol.

        Returns the diagnostics found (empty list: graph is sound).
        With ``raise_on_error`` (the default) a non-empty result raises
        :class:`~repro.bdd.sanitize.SanitizerError` instead.  Under
        ``REPRO_SANITIZE=1`` this runs automatically after every
        garbage collection and at GC safe points on managers small
        enough to sweep (``REPRO_SANITIZE_LIMIT``, default 5000 nodes).
        """
        diagnostics = check_manager(self, check_cache=check_cache)
        if diagnostics and raise_on_error:
            raise SanitizerError(diagnostics)
        return diagnostics

    def check_invariants(self) -> None:
        """Verify structural invariants (used by the test suite)."""
        store = self.store
        level_of = store.level_of
        hi_of, lo_of = store.hi_of, store.lo_of
        key_of = store.key_of
        seen: set[int] = set()
        count = 0
        for level, key_hi, key_lo, node in store.iter_table():
            assert level_of(node) == level, "level field out of sync"
            assert hi_of(node) == key_hi and lo_of(node) == key_lo, \
                "key out of sync"
            assert key_hi != key_lo, "redundant node"
            assert level_of(key_hi) > level and level_of(key_lo) > level, \
                "order violation"
            assert key_of(node) not in seen, "duplicate node"
            seen.add(key_of(node))
            count += 1
        assert count == store.num_nodes, "node count out of sync"
