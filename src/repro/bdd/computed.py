"""The computed table: a bounded, op-tagged operation cache.

CUDD bounds its computed table to a fixed number of buckets and resolves
collisions by *overwriting* the incumbent entry — losing a memoized
result only costs recomputation, never correctness, because the unique
table re-canonicalizes anything that is re-derived.  This module
reproduces that policy:

* ``limit=None`` — unbounded ``dict`` storage (the seed behaviour).
* ``limit=N`` — a fixed array of ``N`` buckets indexed by ``hash(key)
  % N``; inserting into an occupied bucket evicts the previous entry
  (CUDD's "overwrite on collision").

Every lookup/insert carries an *op tag* (``"and"``, ``"ite"``,
``"exists"``, ...) so hit/miss/eviction counts are kept per operation;
:meth:`ComputedTable.stats` snapshots them for
:attr:`repro.bdd.manager.Manager.stats`.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import Any, Hashable

#: Canonical op tags.  Every computed-table insert must use a tag from
#: this registry (lint rule RPR003 checks literal tags statically; the
#: graph sanitizer checks stored entries at runtime), so per-op cache
#: statistics stay meaningful and a rogue insert is attributable.
REGISTERED_OPS: set[str] = {
    # binary operators (repro.bdd.operations._OP_TABLES)
    "and", "or", "xor", "xnor", "nand", "nor", "imp", "diff",
    # unary / ternary kernels
    "not", "ite", "cof", "vcomp",
    # containment predicate
    "leq",
    # quantification kernels
    "exists", "forall", "andex",
    # generalized-cofactor kernels
    "constrain", "restrict",
}


def register_op(tag: str) -> str:
    """Register (and return) a computed-table op tag.

    Idempotent; call at import time next to the kernel that uses the
    tag.  Returns the tag so it can be bound to a module constant.
    """
    REGISTERED_OPS.add(tag)
    return tag


@dataclass(frozen=True)
class CacheOpStats:
    """Hit/miss/eviction counters of one operation tag."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups (hits + misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the table (0.0 when idle)."""
        total = self.lookups
        return self.hits / total if total else 0.0


# Indices into the mutable per-op counter records.
_HITS, _MISSES, _EVICTIONS = 0, 1, 2


class ComputedTable:
    """Memoization table shared by all manager-level BDD operations.

    Keys are arbitrary hashable tuples built by the operation
    implementations (by convention ``(op, operand, ...)``); values are
    canonical nodes — or plain values for predicate caches such as the
    containment test.  The ``op`` argument of :meth:`lookup` and
    :meth:`insert` only attributes statistics; it does not partition the
    key space.
    """

    __slots__ = ("_limit", "_entries", "_slots", "_occupied", "_ops")

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit <= 0:
            raise ValueError("cache_limit must be positive or None")
        self._limit = limit
        self._entries: dict[Hashable, Any] = {}
        #: bounded storage: (key, result, op) per bucket
        self._slots: list[tuple[Hashable, Any, str] | None] = \
            [None] * limit if limit is not None else []
        self._occupied = 0
        #: op tag -> [hits, misses, evictions]
        self._ops: dict[str, list[int]] = {}

    # ------------------------------------------------------------------
    # Configuration
    # ------------------------------------------------------------------

    @property
    def limit(self) -> int | None:
        """Maximum number of entries (None: unbounded)."""
        return self._limit

    def set_limit(self, limit: int | None) -> None:
        """Re-bound the table, rehashing the entries that still fit.

        Statistics are preserved; shrinking may silently drop entries
        whose buckets collide (not counted as evictions — resizing is a
        policy change, not a capacity decision).
        """
        if limit is not None and limit <= 0:
            raise ValueError("cache_limit must be positive or None")
        if self._limit is None:
            # Unbounded storage does not record op tags; recover them
            # from the conventional ``(op, ...)`` key shape.
            survivors = [(key, result,
                          key[0] if isinstance(key, tuple) and key
                          and isinstance(key[0], str) else "?")
                         for key, result in self._entries.items()]
        else:
            survivors = [slot for slot in self._slots if slot is not None]
        self._limit = limit
        self._entries = {}
        self._slots = [None] * limit if limit is not None else []
        self._occupied = 0
        for key, result, op in survivors:
            if limit is None:
                self._entries[key] = result
            else:
                index = hash(key) % limit
                if self._slots[index] is None:
                    self._occupied += 1
                self._slots[index] = (key, result, op)

    # ------------------------------------------------------------------
    # The memoization protocol
    # ------------------------------------------------------------------

    def lookup(self, op: str, key: Hashable) -> Any | None:
        """Return the memoized result for ``key``, or None on a miss."""
        record = self._ops.get(op)
        if record is None:
            record = self._ops[op] = [0, 0, 0]
        if self._limit is None:
            result = self._entries.get(key)
            if result is None:
                record[_MISSES] += 1
            else:
                record[_HITS] += 1
            return result
        slot = self._slots[hash(key) % self._limit]
        if slot is not None and slot[0] == key:
            record[_HITS] += 1
            return slot[1]
        record[_MISSES] += 1
        return None

    def insert(self, op: str, key: Hashable, result: Any) -> None:
        """Memoize ``result`` under ``key``, evicting on bucket clash."""
        if self._limit is None:
            self._entries[key] = result
            return
        index = hash(key) % self._limit
        slot = self._slots[index]
        if slot is None:
            self._occupied += 1
        elif slot[0] != key:
            record = self._ops.get(slot[2])
            if record is None:
                record = self._ops[slot[2]] = [0, 0, 0]
            record[_EVICTIONS] += 1
        self._slots[index] = (key, result, op)

    def clear(self) -> int:
        """Drop every entry (GC / reordering flush); returns the count.

        Flushes are not counted as evictions: an eviction is a capacity
        decision, a flush invalidates results whose nodes may die.
        """
        dropped = len(self)
        if self._limit is None:
            self._entries.clear()
        else:
            self._slots = [None] * self._limit
            self._occupied = 0
        return dropped

    def __len__(self) -> int:
        return self._occupied if self._limit is not None \
            else len(self._entries)

    def entries(self) -> Iterator[tuple[str, Hashable, Any]]:
        """Iterate ``(op, key, result)`` over the stored entries.

        Bounded storage records the op tag per slot; unbounded storage
        recovers it from the conventional ``(op, ...)`` key shape (a
        non-conforming key yields ``"?"``).  Used by the graph
        sanitizer; not a hot path.
        """
        if self._limit is None:
            for key, result in self._entries.items():
                op = key[0] if isinstance(key, tuple) and key \
                    and isinstance(key[0], str) else "?"
                yield op, key, result
        else:
            for slot in self._slots:
                if slot is not None:
                    key, result, op = slot
                    yield op, key, result

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, CacheOpStats]:
        """Immutable per-op snapshot of the hit/miss/eviction counters."""
        return {op: CacheOpStats(hits=r[_HITS], misses=r[_MISSES],
                                 evictions=r[_EVICTIONS])
                for op, r in sorted(self._ops.items())}

    def totals(self) -> CacheOpStats:
        """Aggregate counters across every operation tag."""
        hits = misses = evictions = 0
        for record in self._ops.values():
            hits += record[_HITS]
            misses += record[_MISSES]
            evictions += record[_EVICTIONS]
        return CacheOpStats(hits=hits, misses=misses, evictions=evictions)

    def reset_stats(self) -> None:
        """Zero all counters (entries are kept)."""
        self._ops.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bound = "unbounded" if self._limit is None else f"/{self._limit}"
        return f"<ComputedTable {len(self)}{bound} entries>"
