"""BDD node objects.

A :class:`Node` is an internal, identity-hashed record.  User code should
manipulate :class:`repro.bdd.function.Function` handles instead; the node
layer is exposed because the approximation and decomposition algorithms of
the paper are defined directly on the node graph.

Nodes do not use complement arcs.  The paper presents its algorithms
"ignoring complement arcs for the sake of simplicity" and adds complement
handling only as an implementation caveat; this package makes the same
simplification throughout (see DESIGN.md).
"""

from __future__ import annotations

import sys

#: Level assigned to the two terminal nodes.  It compares greater than any
#: variable level, so ``min`` over levels always finds the top variable.
TERMINAL_LEVEL: int = sys.maxsize


class Node:
    """A node of a reduced ordered BDD.

    Attributes
    ----------
    level:
        Position of the node's variable in the current order (0 is the
        root-most level).  Terminals carry :data:`TERMINAL_LEVEL`.
    hi:
        The *then* child (variable = 1 branch); ``None`` for terminals.
    lo:
        The *else* child (variable = 0 branch); ``None`` for terminals.
    ref:
        Structural reference count: number of parent arcs plus the number
        of external references registered by the manager.  Maintained by
        the manager; only consulted during garbage collection and variable
        reordering.
    value:
        ``0`` or ``1`` for terminals, ``None`` for internal nodes.
    """

    __slots__ = ("level", "hi", "lo", "ref", "value", "__weakref__")

    def __init__(self, level: int, hi: "Node | None", lo: "Node | None",
                 value: int | None = None) -> None:
        self.level = level
        self.hi = hi
        self.lo = lo
        self.ref = 0
        self.value = value

    @property
    def is_terminal(self) -> bool:
        """True for the constant nodes ZERO and ONE."""
        return self.value is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_terminal:
            return f"<Terminal {self.value}>"
        return f"<Node L{self.level} @{id(self):#x}>"
