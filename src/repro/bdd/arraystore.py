"""Flat array-backed node store: struct-of-arrays over ``array('q')``.

Handles are plain ``int`` node ids.  Ids 0 and 1 are the FALSE/TRUE
terminals; internal nodes start at id 2.  The four node fields live in
parallel signed 64-bit columns::

    _level[id]   physical level (TERMINAL_LEVEL for terminals,
                 FREE_LEVEL for recycled slots)
    _hi[id]      id of the hi child (-1 for terminals)
    _lo[id]      id of the lo child (-1 for terminals)
    _ref[id]     structural reference count

The unique table is one ``dict[int, int]`` per level mapping the packed
child pair ``(hi << 32) | lo`` to the node id — Python dicts hash small
ints essentially for free, which stands in for the open-addressed table
of a C implementation while keeping collision handling out of our
hands.  The packing assumes ids stay below 2**32 (4 billion nodes —
far past what this interpreter-bound code can hold in memory).

Swept slots go on a free list and are recycled by later ``mk`` calls,
so the columns never need compaction.  Recycling is sound because the
manager clears the computed table and metric caches at every point a
slot can be freed (garbage collection and adjacent-level swaps); a
stale id can therefore never be confused with its new occupant.  Freed
slots carry the ``FREE_LEVEL`` sentinel, so dereferencing a stale
handle fails the ``mk`` level check instead of silently mixing nodes.

Compared with :class:`~repro.bdd.backend.ObjectStore` this trades
per-node Python objects (56+ bytes, pointer chasing, refcount traffic
on every access) for 32 bytes across four C arrays and int arithmetic
— see ``docs/backends.md`` for the measured difference.  When numpy is
importable, garbage collection additionally sweeps the columns with
zero-copy vectorized scans (``_sweep_vectorized``); a pure-Python
fallback keeps the store dependency-free.
"""

from __future__ import annotations

from array import array
from collections.abc import Callable, Iterable, Iterator
from functools import partial
from operator import gt
from typing import Any

from .backend import NodeStore
from .node import TERMINAL_LEVEL

try:  # Optional: vectorized GC sweep over the columns (see collect).
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None  # type: ignore[assignment]

__all__ = ["ArrayStore", "FREE_LEVEL", "VECTOR_SWEEP"]

#: Level sentinel stored in recycled slots; no valid level is negative,
#: so any structural check on a stale handle fails fast.
FREE_LEVEL = -1

#: True when garbage collection uses the numpy column scans; False on
#: interpreters without numpy (the portable sweep takes over).
VECTOR_SWEEP = _np is not None

_LO_MASK = (1 << 32) - 1


class ArrayStore(NodeStore):
    """Struct-of-arrays node store with integer handles."""

    name = "array"
    # Cache keys mix node ids with op tags and plain ints (levels,
    # frozensets of levels); the store cannot tell which ints are
    # handles, so the sanitizer's cache-liveness sweep is skipped.
    # Sound because the computed table is cleared wholesale whenever
    # ids can be recycled.
    checks_cache_liveness = False

    def __init__(self) -> None:
        self.zero = 0
        self.one = 1
        self._level = array("q", (TERMINAL_LEVEL, TERMINAL_LEVEL))
        self._hi = array("q", (-1, -1))
        self._lo = array("q", (-1, -1))
        # Terminals are permanent: one artificial reference each.
        self._ref = array("q", (1, 1))
        #: tables[level] maps (hi << 32) | lo -> node id
        self._tables: list[dict[int, int]] = []
        self._free: list[int] = []
        self._count = 0
        self._peak = 0
        # Hot accessors: bound C-level array subscript (stable across
        # appends — the array object itself never changes).
        self.level_of = self._level.__getitem__
        self.hi_of = self._hi.__getitem__
        self.lo_of = self._lo.__getitem__
        self.ref_of = self._ref.__getitem__
        # partial(gt, 2)(h) == (2 > h): terminal test without a Python
        # frame, and a TypeError (not a silent truthy NotImplemented)
        # on a non-int handle.
        self.is_terminal = partial(gt, 2)
        self.key_of = int

    # -- node construction and lookup ----------------------------------

    def mk(self, level: int, hi: int, lo: int) -> int:
        if hi == lo:
            return hi
        table = self._tables[level]
        key = (hi << 32) | lo
        node = table.get(key, -1)
        if node >= 0:
            # A hit implies valid children: a live node's children are
            # below its level by construction and kept live by the ref
            # counts, so the level check below could never fire here —
            # skipping it keeps the hot path to one dict probe.
            return node
        levels = self._level
        if levels[hi] <= level or levels[lo] <= level:
            raise ValueError("children must be below the node level")
        if self._free:
            node = self._free.pop()
            levels[node] = level
            self._hi[node] = hi
            self._lo[node] = lo
            self._ref[node] = 0
        else:
            node = len(levels)
            levels.append(level)
            self._hi.append(hi)
            self._lo.append(lo)
            self._ref.append(0)
        self._ref[hi] += 1
        self._ref[lo] += 1
        table[key] = node
        self._count += 1
        if self._count > self._peak:
            self._peak = self._count
        return node

    def find(self, level: int, hi: int, lo: int) -> int | None:
        if hi == lo:
            return hi
        return self._tables[level].get((hi << 32) | lo)

    def value_of(self, handle: int) -> int | None:
        return handle if handle < 2 else None

    # -- size accounting -----------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._count

    @property
    def peak_nodes(self) -> int:
        return self._peak

    @property
    def num_levels(self) -> int:
        return len(self._tables)

    def level_sizes(self) -> list[int]:
        return [len(t) for t in self._tables]

    def add_level(self, level: int) -> None:
        self._tables.insert(level, {})

    # -- iteration -----------------------------------------------------

    def iter_nodes(self) -> Iterator[int]:
        for table in self._tables:
            yield from table.values()

    def iter_table(self) -> Iterator[tuple[int, int, int, int]]:
        for level, table in enumerate(self._tables):
            for key, node in table.items():
                yield level, key >> 32, key & _LO_MASK, node

    def is_live(self, handle: Any) -> bool:
        if not isinstance(handle, int) \
                or not 0 <= handle < len(self._level):
            return False
        if handle < 2:
            return True
        level = self._level[handle]
        if not 0 <= level < len(self._tables):
            return False
        key = (self._hi[handle] << 32) | self._lo[handle]
        return self._tables[level].get(key, -1) == handle

    # -- vectorized analytics ------------------------------------------

    def sat_count_vector(self, root: int, nvars: int) -> int | None:
        """Exact ``||root||`` over ``nvars`` variables via column sweeps.

        One bottom-up pass over the *whole store*: per level, the
        counts of every live node are computed in one gather
        ``(counts[hi] + counts[lo]) >> 1`` over the flat columns (the
        scaled count ``S[v] = ||v|| * 2^level(v)`` of any node is even,
        so the shift is exact).  With numpy that is a C-speed
        vectorized scan; without it a dependency-free Python loop over
        the same columns.  Because the sweep prices by store size, not
        function size, callers should prefer it when the function
        spans a sizeable fraction of the store — e.g. a traversal's
        reached set (:func:`repro.bdd.counting.sat_count` applies that
        heuristic).

        Returns None when ``nvars`` is below the store's level count —
        then some *live* node could exceed ``nvars`` and per-function
        support validation (which the whole-store sweep cannot do) is
        required; the caller falls back to the per-node map.
        """
        tables = self._tables
        if nvars < len(tables):
            return None
        if root < 2:
            return root << nvars
        hi_col, lo_col = self._hi, self._lo
        # int64 gathers: counts reach 2^nvars and sums 2^(nvars+1), so
        # the numpy path is exact only through nvars == 61; beyond
        # that, arbitrary-precision Python takes over.
        if _np is not None and nvars <= 61:
            counts = _np.zeros(len(self._level), dtype=_np.int64)
            counts[1] = 1 << nvars
            hi_np = _np.frombuffer(hi_col, dtype=_np.int64)
            lo_np = _np.frombuffer(lo_col, dtype=_np.int64)
            for level in range(len(tables) - 1, -1, -1):
                table = tables[level]
                if not table:
                    continue
                ids = _np.fromiter(table.values(), dtype=_np.int64,
                                   count=len(table))
                counts[ids] = (counts[hi_np[ids]]
                               + counts[lo_np[ids]]) >> 1
            return int(counts[root])
        counts_list = [0] * len(self._level)
        counts_list[1] = 1 << nvars
        for level in range(len(tables) - 1, -1, -1):
            for node in tables[level].values():
                counts_list[node] = (counts_list[hi_col[node]]
                                     + counts_list[lo_col[node]]) >> 1
        return counts_list[root]

    # -- garbage collection and reordering -----------------------------

    def collect(self, roots: Iterable[int]) -> int:
        roots = list(roots)
        hi_col, lo_col = self._hi, self._lo
        # Dense int ids let the mark set be a flat byte map — O(1)
        # unhashed probes, no per-entry allocation.  Object stores
        # cannot do this; it is one of the structural wins of the flat
        # layout (docs/backends.md).
        marked = bytearray(len(self._level))
        stack = [root for root in roots if root >= 2]
        while stack:
            node = stack.pop()
            if marked[node]:
                continue
            marked[node] = 1
            hi = hi_col[node]
            if hi >= 2 and not marked[hi]:
                stack.append(hi)
            lo = lo_col[node]
            if lo >= 2 and not marked[lo]:
                stack.append(lo)
        if _np is not None:
            reclaimed = self._sweep_vectorized(marked, roots)
        else:
            reclaimed = self._sweep_portable(marked)
            self._recount_refs(roots)
        self._count -= reclaimed
        return reclaimed

    def _sweep_vectorized(self, marked: bytearray,
                          roots: list[int]) -> int:
        """Dead-slot sweep and ref recount as C-speed column scans.

        ``numpy.frombuffer`` gives zero-copy int64 views over the
        ``array('q')`` columns, so finding dead slots is one boolean
        scan and the reference recount is two ``bincount`` histograms —
        both proportional work that an object graph has to do one
        attribute access at a time.  The views are function-local:
        nothing appends to the columns while they exist (appending
        would raise ``BufferError`` on an exporting array).
        """
        n = len(self._level)
        level_np = _np.frombuffer(self._level, dtype=_np.int64)
        hi_np = _np.frombuffer(self._hi, dtype=_np.int64)
        lo_np = _np.frombuffer(self._lo, dtype=_np.int64)
        ref_np = _np.frombuffer(self._ref, dtype=_np.int64)
        live = level_np >= 0  # terminals carry TERMINAL_LEVEL >= 0
        live[:2] = False
        marked_np = _np.frombuffer(marked, dtype=_np.uint8) != 0
        dead_ids = _np.nonzero(live & ~marked_np)[0]
        survivors = _np.nonzero(live & marked_np)[0]
        levels, hi_col, lo_col = self._level, self._hi, self._lo
        tables = self._tables
        for node in dead_ids.tolist():
            # Packed keys are arbitrary-precision Python ints; rebuild
            # them outside numpy so an id past 2**31 cannot wrap the
            # signed-64-bit shift.
            del tables[levels[node]][(hi_col[node] << 32)
                                     | lo_col[node]]
        level_np[dead_ids] = FREE_LEVEL
        self._free.extend(dead_ids.tolist())
        counts = _np.bincount(hi_np[survivors], minlength=n)
        counts += _np.bincount(lo_np[survivors], minlength=n)
        ref_np[:] = counts
        ref = self._ref
        for root in roots:
            ref[root] += 1
        ref[0] += 1
        ref[1] += 1
        return len(dead_ids)

    def _sweep_portable(self, marked: bytearray) -> int:
        """Pure-Python dead-slot sweep (no-numpy fallback)."""
        reclaimed = 0
        levels = self._level
        free = self._free
        for table in self._tables:
            dead = [key for key, node in table.items()
                    if not marked[node]]
            for key in dead:
                node = table.pop(key)
                levels[node] = FREE_LEVEL
                free.append(node)
                reclaimed += 1
        return reclaimed

    def _recount_refs(self, roots: list[int]) -> None:
        """Recompute structural reference counts from scratch."""
        ref = self._ref
        # Zero the whole column in one C-level copy (a memset, in
        # effect) instead of a Python loop over every slot.
        ref[:] = array("q", bytes(ref.itemsize * len(ref)))
        hi_col, lo_col = self._hi, self._lo
        for table in self._tables:
            for node in table.values():
                ref[hi_col[node]] += 1
                ref[lo_col[node]] += 1
        for root in roots:
            ref[root] += 1
        ref[0] += 1
        ref[1] += 1

    def swap_adjacent(self, level: int) -> None:
        upper = self._tables[level]
        lower = self._tables[level + 1]
        levels, hi_col, lo_col, ref = \
            self._level, self._hi, self._lo, self._ref

        # Phase 1: classify the upper-level nodes before touching
        # anything.
        dependent: list[tuple[int, ...]] = []
        independent: list[int] = []
        for node in list(upper.values()):
            hi, lo = hi_col[node], lo_col[node]
            if levels[hi] == level + 1 or levels[lo] == level + 1:
                if levels[hi] == level + 1:
                    f11, f10 = hi_col[hi], lo_col[hi]
                else:
                    f11 = f10 = hi
                if levels[lo] == level + 1:
                    f01, f00 = hi_col[lo], lo_col[lo]
                else:
                    f01 = f00 = lo
                dependent.append((node, hi, lo, f11, f10, f01, f00))
            else:
                independent.append(node)

        # Phase 2: relabel.  Lower-level nodes rise to `level`;
        # independent upper nodes sink to `level + 1`.  Table keys are
        # child pairs, unchanged by relabelling.
        risen = list(lower.values())
        upper.clear()
        lower.clear()
        for node in risen:
            levels[node] = level
            upper[(hi_col[node] << 32) | lo_col[node]] = node
        for node in independent:
            levels[node] = level + 1
            lower[(hi_col[node] << 32) | lo_col[node]] = node

        # Phase 3: rewrite dependent nodes in place.
        maybe_dead: list[int] = []
        for node, old_hi, old_lo, f11, f10, f01, f00 in dependent:
            new_hi = self.mk(level + 1, f11, f01)
            new_lo = self.mk(level + 1, f10, f00)
            ref[new_hi] += 1
            ref[new_lo] += 1
            ref[old_hi] -= 1
            ref[old_lo] -= 1
            maybe_dead.append(old_hi)
            maybe_dead.append(old_lo)
            hi_col[node] = new_hi
            lo_col[node] = new_lo
            upper[(new_hi << 32) | new_lo] = node

        # Phase 4: reclaim nodes orphaned by the rewrites.
        for node in maybe_dead:
            self._reclaim(node)

    def _reclaim(self, node: int) -> None:
        """Free ``node`` and recursively its orphaned descendants."""
        levels, hi_col, lo_col, ref = \
            self._level, self._hi, self._lo, self._ref
        stack = [node]
        while stack:
            node = stack.pop()
            if node < 2 or ref[node]:
                continue
            level = levels[node]
            if level < 0:
                # Already reclaimed via another parent.
                continue
            table = self._tables[level]
            key = (hi_col[node] << 32) | lo_col[node]
            if table.get(key, -1) != node:
                continue
            del table[key]
            self._count -= 1
            levels[node] = FREE_LEVEL
            self._free.append(node)
            hi, lo = hi_col[node], lo_col[node]
            ref[hi] -= 1
            ref[lo] -= 1
            stack.append(hi)
            stack.append(lo)

    # -- sanitizer support ---------------------------------------------

    def describe(self, handle: object) -> str:
        if not isinstance(handle, int):
            return f"non-handle {handle!r}"
        if handle < 2:
            return f"terminal {handle}"
        if 0 <= handle < len(self._level):
            return f"id {handle} L{self._level[handle]}"
        return f"id {handle} (out of range)"

    def check(self, report: Callable[[str, str], None]) -> None:
        n = len(self._level)
        if not len(self._hi) == len(self._lo) == len(self._ref) == n:
            report("table",
                   f"column length mismatch: level={n} "
                   f"hi={len(self._hi)} lo={len(self._lo)} "
                   f"ref={len(self._ref)}")
            return
        for terminal in (0, 1):
            if self._level[terminal] != TERMINAL_LEVEL \
                    or self._hi[terminal] != -1 \
                    or self._lo[terminal] != -1:
                report("terminal",
                       f"terminal {terminal} corrupted: "
                       f"level={self._level[terminal]} "
                       f"hi={self._hi[terminal]} "
                       f"lo={self._lo[terminal]}")
        for slot in self._free:
            if not 2 <= slot < n:
                report("table", f"free-list id {slot} out of range")
            elif self._level[slot] != FREE_LEVEL:
                report("table",
                       f"free-list id {slot} has live level "
                       f"{self._level[slot]}")
        # Every allocated slot is either a terminal, free, or in the
        # unique table at its recorded level.
        in_free = set(self._free)
        for slot in range(2, n):
            if self._level[slot] == FREE_LEVEL:
                if slot not in in_free:
                    report("table",
                           f"id {slot} freed but not on the free list")
            elif not self.is_live(slot):
                report("table",
                       f"id {slot} allocated but absent from the "
                       f"unique table")

    def cache_handles(self, value: Any) -> Iterator[int]:
        # Integer handles are indistinguishable from other ints inside
        # cache keys; see ``checks_cache_liveness``.
        return iter(())
