"""Dynamic variable reordering: adjacent-level swap and sifting.

The implementation follows Rudell (ICCAD 93), the algorithm behind
CUDD's dynamic reordering that the paper's experiments keep "always
turned on".  A swap of levels ``l`` and ``l+1`` rewrites the affected
nodes *in place*, preserving node identity (and therefore every live
:class:`~repro.bdd.function.Function` handle) while exchanging the two
variables in the order.

Reordering is a *safe-point* operation: raw node references held outside
Function handles must not be kept across a call, and the computed table
is invalidated.
"""

from __future__ import annotations

from collections.abc import Sequence

from .manager import Manager
from .node import Node

#: A sifting direction aborts early when the size exceeds this multiple
#: of the best size seen for the variable.
MAX_GROWTH = 1.2


def swap_adjacent(manager: Manager, level: int) -> None:
    """Exchange the variables at ``level`` and ``level + 1``.

    Node identity is preserved: every node keeps representing the same
    boolean function afterwards.  Structural reference counts must be
    accurate on entry (see :func:`sift`); dead nodes are reclaimed.
    """
    manager.invalidate_metric_caches()
    upper = manager._subtables[level]
    lower = manager._subtables[level + 1]

    # Phase 1: classify the upper-level nodes before touching anything.
    dependent: list[tuple[Node, Node, Node, Node, Node, Node, Node]] = []
    independent: list[Node] = []
    for node in list(upper.values()):
        hi, lo = node.hi, node.lo
        if hi.level == level + 1 or lo.level == level + 1:
            if hi.level == level + 1:
                f11, f10 = hi.hi, hi.lo
            else:
                f11 = f10 = hi
            if lo.level == level + 1:
                f01, f00 = lo.hi, lo.lo
            else:
                f01 = f00 = lo
            dependent.append((node, hi, lo, f11, f10, f01, f00))
        else:
            independent.append(node)

    # Phase 2: relabel.  Lower-level nodes (testing the variable that
    # moves up) rise to `level`; independent upper nodes sink to
    # `level + 1`.  Functions are untouched — only the physical level
    # changes along with the variable it denotes.
    risen = list(lower.values())
    upper.clear()
    lower.clear()
    for node in risen:
        node.level = level
        upper[(node.hi, node.lo)] = node
    for node in independent:
        node.level = level + 1
        lower[(node.hi, node.lo)] = node

    # Phase 3: rewrite dependent nodes in place.  Each becomes a node
    # testing the risen variable, with children testing the sunk one.
    def mk_low(hi: Node, lo: Node) -> Node:
        return manager.mk(level + 1, hi, lo)

    maybe_dead: list[Node] = []
    for node, old_hi, old_lo, f11, f10, f01, f00 in dependent:
        new_hi = mk_low(f11, f01)
        new_lo = mk_low(f10, f00)
        new_hi.ref += 1
        new_lo.ref += 1
        old_hi.ref -= 1
        old_lo.ref -= 1
        maybe_dead.append(old_hi)
        maybe_dead.append(old_lo)
        node.hi = new_hi
        node.lo = new_lo
        upper[(new_hi, new_lo)] = node

    # Phase 4: reclaim nodes orphaned by the rewrites.
    for node in maybe_dead:
        _reclaim(manager, node)

    # Phase 5: the variable maps follow the physical exchange.
    names = manager._level_to_var
    names[level], names[level + 1] = names[level + 1], names[level]
    manager._var_to_level[names[level]] = level
    manager._var_to_level[names[level + 1]] = level + 1


def _reclaim(manager: Manager, node: Node) -> None:
    """Delete ``node`` and recursively its orphaned descendants."""
    stack = [node]
    while stack:
        node = stack.pop()
        if node.ref or node.is_terminal:
            continue
        subtable = manager._subtables[node.level]
        key = (node.hi, node.lo)
        if subtable.get(key) is not node:
            # Already reclaimed via another parent (the stack can reach a
            # shared dead descendant more than once).
            continue
        del subtable[key]
        manager._num_nodes -= 1
        node.hi.ref -= 1
        node.lo.ref -= 1
        stack.append(node.hi)
        stack.append(node.lo)


def sift(manager: Manager, max_vars: int | None = None) -> int:
    """Rudell sifting: move each variable to its locally best level.

    Variables are processed in decreasing order of their level
    population; each is swapped to the bottom and the top of the order,
    then parked at the position that minimized the total node count.
    Returns the final total node count.
    """
    manager.computed.clear()
    manager.collect_garbage()
    n = manager.num_vars
    if n < 2:
        return len(manager)
    by_population = sorted(range(n),
                           key=lambda l: -len(manager._subtables[l]))
    names = [manager._level_to_var[l] for l in by_population]
    if max_vars is not None:
        names = names[:max_vars]
    for name in names:
        _sift_one(manager, name)
    manager.computed.clear()
    manager.reorder_count += 1
    return len(manager)


def _sift_one(manager: Manager, name: str) -> None:
    """Move one variable through the order and park it at the best spot."""
    n = manager.num_vars
    start = manager._var_to_level[name]
    best_size = len(manager)
    best_level = start
    limit = best_size * MAX_GROWTH
    # Go toward the closer end first, then sweep to the other end.
    first_down = start >= n // 2

    def down() -> None:
        nonlocal best_size, best_level, limit
        while manager._var_to_level[name] < n - 1:
            swap_adjacent(manager, manager._var_to_level[name])
            size = len(manager)
            if size < best_size:
                best_size = size
                limit = size * MAX_GROWTH
            if size <= best_size:
                best_level = manager._var_to_level[name]
            if size > limit:
                break

    def up() -> None:
        nonlocal best_size, best_level, limit
        while manager._var_to_level[name] > 0:
            swap_adjacent(manager, manager._var_to_level[name] - 1)
            size = len(manager)
            if size < best_size:
                best_size = size
                limit = size * MAX_GROWTH
            if size <= best_size:
                best_level = manager._var_to_level[name]
            if size > limit:
                break

    if first_down:
        down()
        up()
    else:
        up()
        down()
    # Park at the best level seen.
    while manager._var_to_level[name] < best_level:
        swap_adjacent(manager, manager._var_to_level[name])
    while manager._var_to_level[name] > best_level:
        swap_adjacent(manager, manager._var_to_level[name] - 1)


def set_order(manager: Manager, order: Sequence[str]) -> None:
    """Reorder the variables to exactly ``order`` (root-most first)."""
    if sorted(order) != sorted(manager._level_to_var):
        raise ValueError("order must be a permutation of the variables")
    manager.computed.clear()
    manager.collect_garbage()
    for target, name in enumerate(order):
        current = manager._var_to_level[name]
        while current > target:
            swap_adjacent(manager, current - 1)
            current -= 1
    manager.computed.clear()
    manager.reorder_count += 1
