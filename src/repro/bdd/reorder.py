"""Dynamic variable reordering: adjacent-level swap and sifting.

The implementation follows Rudell (ICCAD 93), the algorithm behind
CUDD's dynamic reordering that the paper's experiments keep "always
turned on".  A swap of levels ``l`` and ``l+1`` rewrites the affected
nodes *in place*, preserving handle identity (and therefore every live
:class:`~repro.bdd.function.Function` handle) while exchanging the two
variables in the order.  The physical rewrite (phases 1–4) lives in the
node store — :meth:`~repro.bdd.backend.NodeStore.swap_adjacent` — and
this module owns the semantic bookkeeping around it: cache
invalidation and the variable-name maps.

Reordering is a *safe-point* operation: raw node handles held outside
Function handles must not be kept across a call, and the computed table
is invalidated — on every single swap, because stores with integer
handles recycle the ids of nodes the swap reclaims, and a stale cache
entry could otherwise alias a fresh node.
"""

from __future__ import annotations

from collections.abc import Sequence

from .manager import Manager

#: A sifting direction aborts early when the size exceeds this multiple
#: of the best size seen for the variable.
MAX_GROWTH = 1.2


def swap_adjacent(manager: Manager, level: int) -> None:
    """Exchange the variables at ``level`` and ``level + 1``.

    Handle identity is preserved: every handle keeps representing the
    same boolean function afterwards.  Structural reference counts must
    be accurate on entry (see :func:`sift`); dead nodes are reclaimed
    by the store, which may recycle their ids — hence the wholesale
    computed-table drop before the rewrite.
    """
    manager.invalidate_metric_caches()
    manager.computed.clear()
    manager.store.swap_adjacent(level)

    # The variable maps follow the physical exchange.
    names = manager._level_to_var
    names[level], names[level + 1] = names[level + 1], names[level]
    manager._var_to_level[names[level]] = level
    manager._var_to_level[names[level + 1]] = level + 1


def sift(manager: Manager, max_vars: int | None = None) -> int:
    """Rudell sifting: move each variable to its locally best level.

    Variables are processed in decreasing order of their level
    population; each is swapped to the bottom and the top of the order,
    then parked at the position that minimized the total node count.
    Returns the final total node count.
    """
    manager.computed.clear()
    manager.collect_garbage()
    n = manager.num_vars
    if n < 2:
        return len(manager)
    sizes = manager.level_sizes()
    by_population = sorted(range(n), key=lambda l: -sizes[l])
    names = [manager._level_to_var[l] for l in by_population]
    if max_vars is not None:
        names = names[:max_vars]
    for name in names:
        _sift_one(manager, name)
    manager.computed.clear()
    manager.reorder_count += 1
    return len(manager)


def _sift_one(manager: Manager, name: str) -> None:
    """Move one variable through the order and park it at the best spot."""
    n = manager.num_vars
    start = manager._var_to_level[name]
    best_size = len(manager)
    best_level = start
    limit = best_size * MAX_GROWTH
    # Go toward the closer end first, then sweep to the other end.
    first_down = start >= n // 2

    def down() -> None:
        nonlocal best_size, best_level, limit
        while manager._var_to_level[name] < n - 1:
            swap_adjacent(manager, manager._var_to_level[name])
            size = len(manager)
            if size < best_size:
                best_size = size
                limit = size * MAX_GROWTH
            if size <= best_size:
                best_level = manager._var_to_level[name]
            if size > limit:
                break

    def up() -> None:
        nonlocal best_size, best_level, limit
        while manager._var_to_level[name] > 0:
            swap_adjacent(manager, manager._var_to_level[name] - 1)
            size = len(manager)
            if size < best_size:
                best_size = size
                limit = size * MAX_GROWTH
            if size <= best_size:
                best_level = manager._var_to_level[name]
            if size > limit:
                break

    if first_down:
        down()
        up()
    else:
        up()
        down()
    # Park at the best level seen.
    while manager._var_to_level[name] < best_level:
        swap_adjacent(manager, manager._var_to_level[name])
    while manager._var_to_level[name] > best_level:
        swap_adjacent(manager, manager._var_to_level[name] - 1)


def set_order(manager: Manager, order: Sequence[str]) -> None:
    """Reorder the variables to exactly ``order`` (root-most first)."""
    if sorted(order) != sorted(manager._level_to_var):
        raise ValueError("order must be a permutation of the variables")
    manager.computed.clear()
    manager.collect_garbage()
    for target, name in enumerate(order):
        current = manager._var_to_level[name]
        while current > target:
            swap_adjacent(manager, current - 1)
            current -= 1
    manager.computed.clear()
    manager.reorder_count += 1
