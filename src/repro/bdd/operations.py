"""Core BDD operations on raw handles: ITE, apply, compose, cofactor.

All functions here are memoized through the manager's op-tagged
:class:`~repro.bdd.computed.ComputedTable`.
Results are canonical handles in the same manager.  The node-level API
is used by the approximation/decomposition algorithms; user code should
go through :class:`~repro.bdd.function.Function`.

Every kernel is *generic over the node store*: it lifts the store's
accessor callables (``level_of``, ``hi_of``, ``lo_of``, ``mk``, ...)
into locals at entry and manipulates opaque handles from there — the
same loop runs over ``Node`` objects on the object backend and over
plain ints on the array backend.  Handles are compared with ``==``
(never ``is``: int ids are not identity-stable), and commutative cache
keys are normalized by ``store.key_of`` order.

Every kernel is also *iterative*: recursion frames live on an explicit
Python list instead of the interpreter stack, so operations work on
BDDs of any depth (chain-shaped BDDs tens of thousands of levels deep)
at CPython's default recursion limit.  The scheme is the standard
two-phase one — an *expand* frame examines operands (terminal cases,
computed-table lookup, cofactor split) and pushes a *rebuild* frame
below its children's expand frames; the rebuild frame later pops the
finished child results off a value stack, rebuilds through the unique
table, and memoizes.  See docs/algorithms.md, "Iterative kernels".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .governor import CHECK_STRIDE
from .manager import Manager

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .backend import NodeStore
    from .computed import ComputedTable

#: Strided-checkpoint mask: kernels tally loop iterations in a local
#: counter and call the governor checkpoint when ``ticks & _MASK == 0``
#: (every CHECK_STRIDE-th iteration; the stride is a power of two so the
#: hot-loop test is a single AND).
_MASK = CHECK_STRIDE - 1

#: Truth tables of the supported binary operators, as
#: (op(0,0), op(0,1), op(1,0), op(1,1)).
_OP_TABLES: dict[str, tuple[int, int, int, int]] = {
    "and": (0, 0, 0, 1),
    "or": (0, 1, 1, 1),
    "xor": (0, 1, 1, 0),
    "xnor": (1, 0, 0, 1),
    "nand": (1, 1, 1, 0),
    "nor": (1, 0, 0, 0),
    "imp": (1, 1, 0, 1),
    "diff": (0, 0, 1, 0),
}

#: Operators that commute — their cache keys are argument-order
#: normalized to double the hit rate.
_COMMUTATIVE = frozenset({"and", "or", "xor", "xnor", "nand", "nor"})

#: Frame tags of the explicit-stack kernels.  _EXPAND frames carry
#: operands still to be examined; the other tags name a pending
#: second-phase step whose inputs are already on the value stack.
_EXPAND, _REBUILD, _FORWARD, _AFTER_HI = 0, 1, 2, 3


def top_level(store: "NodeStore", *nodes: Any) -> int:
    """Root-most level among the arguments."""
    level_of = store.level_of
    return min(level_of(node) for node in nodes)


def cofactors_at(store: "NodeStore", node: Any,
                 level: int) -> tuple[Any, Any]:
    """(hi, lo) cofactors of ``node`` with respect to ``level``."""
    if store.level_of(node) == level:
        return store.hi_of(node), store.lo_of(node)
    return node, node


def apply_node(manager: Manager, op: str, f: Any, g: Any) -> Any:
    """Apply a named binary boolean operator to two BDDs."""
    try:
        table = _OP_TABLES[op]
    except KeyError:
        raise ValueError(f"unknown operator {op!r}") from None
    store = manager.store
    one, zero = store.one, store.zero
    terminals = (zero, one)
    level_of, hi_of, lo_of = store.level_of, store.hi_of, store.lo_of
    is_term, value_of = store.is_terminal, store.value_of
    key_of = store.key_of
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    mk = store.mk

    commutative = op in _COMMUTATIVE
    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f, g)]
    push = stack.append
    values: list[Any] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("apply")
        frame = stack.pop()
        if frame[0] == _EXPAND:
            f, g = frame[1], frame[2]
            if is_term(f) and is_term(g):
                emit(terminals[table[2 * value_of(f) + value_of(g)]])
                continue
            # Operator-specific terminal shortcuts.
            result = None
            if op == "and":
                if f == zero or g == zero:
                    result = zero
                elif f == one:
                    result = g
                elif g == one or f == g:
                    result = f
            elif op == "or":
                if f == one or g == one:
                    result = one
                elif f == zero:
                    result = g
                elif g == zero or f == g:
                    result = f
            elif op == "xor":
                if f == zero:
                    result = g
                elif g == zero:
                    result = f
                elif f == g:
                    result = zero
            elif op == "diff":
                if f == zero or g == one or f == g:
                    result = zero
                elif g == zero:
                    result = f
            if result is not None:
                emit(result)
                continue
            if commutative and key_of(f) > key_of(g):
                f, g = g, f
            key = (op, f, g)
            cached = cache_get(op, key)
            if cached is not None:
                emit(cached)
                continue
            f_level, g_level = level_of(f), level_of(g)
            level = f_level if f_level < g_level else g_level
            f_hi, f_lo = (hi_of(f), lo_of(f)) if f_level == level \
                else (f, f)
            g_hi, g_lo = (hi_of(g), lo_of(g)) if g_level == level \
                else (g, g)
            push((_REBUILD, key, level))
            push((_EXPAND, f_lo, g_lo))
            push((_EXPAND, f_hi, g_hi))
        else:  # _REBUILD
            lo = values.pop()
            hi = values.pop()
            result = mk(frame[2], hi, lo)
            cache_put(op, frame[1], result)
            emit(result)
    return values[0]


def not_node(manager: Manager, f: Any) -> Any:
    """Complement a BDD (no complement arcs: O(|f|) new nodes)."""
    store = manager.store
    one, zero = store.one, store.zero
    level_of, hi_of, lo_of = store.level_of, store.hi_of, store.lo_of
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    mk = store.mk

    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f)]
    push = stack.append
    values: list[Any] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("not")
        frame = stack.pop()
        if frame[0] == _EXPAND:
            f = frame[1]
            if f == zero:
                emit(one)
                continue
            if f == one:
                emit(zero)
                continue
            key = ("not", f)
            cached = cache_get("not", key)
            if cached is not None:
                emit(cached)
                continue
            push((_REBUILD, key, f))
            push((_EXPAND, lo_of(f)))
            push((_EXPAND, hi_of(f)))
        else:  # _REBUILD
            f = frame[2]
            lo = values.pop()
            hi = values.pop()
            result = mk(level_of(f), hi, lo)
            cache_put("not", frame[1], result)
            cache_put("not", ("not", result), f)
            emit(result)
    return values[0]


def ite_node(manager: Manager, f: Any, g: Any, h: Any) -> Any:
    """If-then-else ``f·g + f'·h`` with standard terminal cases."""
    store = manager.store
    one, zero = store.one, store.zero
    level_of, hi_of, lo_of = store.level_of, store.hi_of, store.lo_of
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    mk = store.mk

    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f, g, h)]
    push = stack.append
    values: list[Any] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("ite")
        frame = stack.pop()
        if frame[0] == _EXPAND:
            f, g, h = frame[1], frame[2], frame[3]
            if f == one:
                emit(g)
                continue
            if f == zero:
                emit(h)
                continue
            if g == h:
                emit(g)
                continue
            if g == one and h == zero:
                emit(f)
                continue
            if g == zero and h == one:
                emit(not_node(manager, f))
                continue
            if f == g:  # ite(f, f, h) = f + h
                g = one
            elif f == h:  # ite(f, g, f) = f & g
                h = zero
            key = ("ite", f, g, h)
            cached = cache_get("ite", key)
            if cached is not None:
                emit(cached)
                continue
            f_level = level_of(f)
            g_level = level_of(g)
            h_level = level_of(h)
            level = f_level
            if g_level < level:
                level = g_level
            if h_level < level:
                level = h_level
            f_hi, f_lo = (hi_of(f), lo_of(f)) if f_level == level \
                else (f, f)
            g_hi, g_lo = (hi_of(g), lo_of(g)) if g_level == level \
                else (g, g)
            h_hi, h_lo = (hi_of(h), lo_of(h)) if h_level == level \
                else (h, h)
            push((_REBUILD, key, level))
            push((_EXPAND, f_lo, g_lo, h_lo))
            push((_EXPAND, f_hi, g_hi, h_hi))
        else:  # _REBUILD
            lo = values.pop()
            hi = values.pop()
            result = mk(frame[2], hi, lo)
            cache_put("ite", frame[1], result)
            emit(result)
    return values[0]


class _ManagerLeqCache:
    """Adapter memoizing containment queries in the manager's computed
    table (op tag ``"leq"``) behind :func:`leq_node`'s dict protocol."""

    __slots__ = ("_computed",)

    def __init__(self, computed: "ComputedTable") -> None:
        self._computed = computed

    def get(self, key: tuple[Any, Any]) -> bool | None:
        return self._computed.lookup("leq", ("leq", key[0], key[1]))

    def __setitem__(self, key: tuple[Any, Any], value: bool) -> None:
        self._computed.insert("leq", ("leq", key[0], key[1]), value)


def leq_node(manager: Manager, f: Any, g: Any,
             cache: dict[tuple[Any, Any], bool] | None = None) -> bool:
    """Containment test ``f <= g`` (f implies g) without building BDDs.

    ``cache`` may be supplied to share memoization across many queries
    (RUA's markNodes performs one containment test per node); by default
    queries memoize in the manager's computed table.

    The conjunction short-circuits like the recursive formulation did:
    when the then-branch refutes containment, the else-branch is never
    explored.
    """
    store = manager.store
    one, zero = store.one, store.zero
    level_of, hi_of, lo_of = store.level_of, store.hi_of, store.lo_of
    if cache is None:
        cache = _ManagerLeqCache(manager.computed)
    cache_get = cache.get
    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f, g)]
    push = stack.append
    values: list[bool] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("leq")
        frame = stack.pop()
        tag = frame[0]
        if tag == _EXPAND:
            f, g = frame[1], frame[2]
            if f == zero or g == one or f == g:
                emit(True)
                continue
            if f == one or g == zero:
                emit(False)
                continue
            key = (f, g)
            cached = cache_get(key)
            if cached is not None:
                emit(cached)
                continue
            f_level, g_level = level_of(f), level_of(g)
            level = f_level if f_level < g_level else g_level
            f_hi, f_lo = (hi_of(f), lo_of(f)) if f_level == level \
                else (f, f)
            g_hi, g_lo = (hi_of(g), lo_of(g)) if g_level == level \
                else (g, g)
            push((_AFTER_HI, key, f_lo, g_lo))
            push((_EXPAND, f_hi, g_hi))
        elif tag == _AFTER_HI:
            key = frame[1]
            if not values.pop():
                cache[key] = False
                emit(False)
                continue
            push((_REBUILD, key))
            push((_EXPAND, frame[2], frame[3]))
        else:  # _REBUILD: record the else-branch verdict
            result = values[-1]
            cache[frame[1]] = result
    return values[0]


def cofactor_node(manager: Manager, f: Any,
                  levels: dict[int, bool]) -> Any:
    """Restrict the variables at ``levels`` to the given constants."""
    if not levels:
        return f
    frozen = tuple(sorted(levels.items()))
    max_level = frozen[-1][0]
    store = manager.store
    level_of, hi_of, lo_of = store.level_of, store.hi_of, store.lo_of
    is_term = store.is_terminal
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    mk = store.mk

    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f)]
    push = stack.append
    values: list[Any] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("cof")
        frame = stack.pop()
        tag = frame[0]
        if tag == _EXPAND:
            f = frame[1]
            if is_term(f) or level_of(f) > max_level:
                emit(f)
                continue
            key = ("cof", f, frozen)
            cached = cache_get("cof", key)
            if cached is not None:
                emit(cached)
                continue
            value = levels.get(level_of(f))
            if value is None:
                push((_REBUILD, key, level_of(f)))
                push((_EXPAND, lo_of(f)))
                push((_EXPAND, hi_of(f)))
            elif value:
                push((_FORWARD, key))
                push((_EXPAND, hi_of(f)))
            else:
                push((_FORWARD, key))
                push((_EXPAND, lo_of(f)))
        elif tag == _REBUILD:
            lo = values.pop()
            hi = values.pop()
            result = mk(frame[2], hi, lo)
            cache_put("cof", frame[1], result)
            emit(result)
        else:  # _FORWARD: memoize the single child's result as our own
            cache_put("cof", frame[1], values[-1])
    return values[0]


def vector_compose_node(manager: Manager, f: Any,
                        substitution: dict[int, Any]) -> Any:
    """Simultaneously substitute ``substitution[level]`` for each variable.

    Implemented by the standard formulation:
    ``f = ite(sub(x), compose(f_hi), compose(f_lo))`` at substituted
    levels, rebuilding with ITE below to keep canonicity when the
    substituted functions overlap the remaining variables.
    """
    if not substitution:
        return f
    frozen = tuple(sorted(substitution.items()))
    max_level = frozen[-1][0]
    store = manager.store
    one, zero = store.one, store.zero
    level_of, hi_of, lo_of = store.level_of, store.hi_of, store.lo_of
    is_term = store.is_terminal
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    mk = store.mk

    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f)]
    push = stack.append
    values: list[Any] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("vcomp")
        frame = stack.pop()
        if frame[0] == _EXPAND:
            f = frame[1]
            if is_term(f) or level_of(f) > max_level:
                emit(f)
                continue
            key = ("vcomp", f, frozen)
            cached = cache_get("vcomp", key)
            if cached is not None:
                emit(cached)
                continue
            push((_REBUILD, key, level_of(f)))
            push((_EXPAND, lo_of(f)))
            push((_EXPAND, hi_of(f)))
        else:  # _REBUILD
            level = frame[2]
            lo = values.pop()
            hi = values.pop()
            replacement = substitution.get(level)
            if replacement is None:
                # The variable itself survives; rebuild with ITE because
                # hi/lo may now depend on variables at or above level.
                var = mk(level, one, zero)
                result = ite_node(manager, var, hi, lo)
            else:
                result = ite_node(manager, replacement, hi, lo)
            cache_put("vcomp", frame[1], result)
            emit(result)
    return values[0]
