"""Core BDD operations on raw nodes: ITE, apply, compose, cofactor.

All functions here are memoized through the manager's op-tagged
:class:`~repro.bdd.computed.ComputedTable`.
Results are canonical nodes in the same manager.  The node-level API is
used by the approximation/decomposition algorithms; user code should go
through :class:`~repro.bdd.function.Function`.

Every kernel is *iterative*: recursion frames live on an explicit Python
list instead of the interpreter stack, so operations work on BDDs of any
depth (chain-shaped BDDs tens of thousands of levels deep) at CPython's
default recursion limit.  The scheme is the standard two-phase one — an
*expand* frame examines operands (terminal cases, computed-table lookup,
cofactor split) and pushes a *rebuild* frame below its children's expand
frames; the rebuild frame later pops the finished child results off a
value stack, rebuilds through the unique table, and memoizes.  See
docs/algorithms.md, "Iterative kernels".
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .governor import CHECK_STRIDE
from .manager import Manager
from .node import Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .computed import ComputedTable

#: Strided-checkpoint mask: kernels tally loop iterations in a local
#: counter and call the governor checkpoint when ``ticks & _MASK == 0``
#: (every CHECK_STRIDE-th iteration; the stride is a power of two so the
#: hot-loop test is a single AND).
_MASK = CHECK_STRIDE - 1

#: Truth tables of the supported binary operators, as
#: (op(0,0), op(0,1), op(1,0), op(1,1)).
_OP_TABLES: dict[str, tuple[int, int, int, int]] = {
    "and": (0, 0, 0, 1),
    "or": (0, 1, 1, 1),
    "xor": (0, 1, 1, 0),
    "xnor": (1, 0, 0, 1),
    "nand": (1, 1, 1, 0),
    "nor": (1, 0, 0, 0),
    "imp": (1, 1, 0, 1),
    "diff": (0, 0, 1, 0),
}

#: Operators that commute — their cache keys are argument-order
#: normalized to double the hit rate.
_COMMUTATIVE = frozenset({"and", "or", "xor", "xnor", "nand", "nor"})

#: Frame tags of the explicit-stack kernels.  _EXPAND frames carry
#: operands still to be examined; the other tags name a pending
#: second-phase step whose inputs are already on the value stack.
_EXPAND, _REBUILD, _FORWARD, _AFTER_HI = 0, 1, 2, 3


def top_level(*nodes: Node) -> int:
    """Root-most level among the arguments."""
    return min(node.level for node in nodes)


def cofactors_at(node: Node, level: int) -> tuple[Node, Node]:
    """(hi, lo) cofactors of ``node`` with respect to ``level``."""
    if node.level == level:
        return node.hi, node.lo
    return node, node


def apply_node(manager: Manager, op: str, f: Node, g: Node) -> Node:
    """Apply a named binary boolean operator to two BDDs."""
    try:
        table = _OP_TABLES[op]
    except KeyError:
        raise ValueError(f"unknown operator {op!r}") from None
    one, zero = manager.one_node, manager.zero_node
    terminals = (zero, one)
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    mk = manager.mk

    commutative = op in _COMMUTATIVE
    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f, g)]
    push = stack.append
    values: list[Node] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("apply")
        frame = stack.pop()
        if frame[0] == _EXPAND:
            f, g = frame[1], frame[2]
            if f.is_terminal and g.is_terminal:
                emit(terminals[table[2 * f.value + g.value]])
                continue
            # Operator-specific terminal shortcuts.
            result = None
            if op == "and":
                if f is zero or g is zero:
                    result = zero
                elif f is one:
                    result = g
                elif g is one or f is g:
                    result = f
            elif op == "or":
                if f is one or g is one:
                    result = one
                elif f is zero:
                    result = g
                elif g is zero or f is g:
                    result = f
            elif op == "xor":
                if f is zero:
                    result = g
                elif g is zero:
                    result = f
                elif f is g:
                    result = zero
            elif op == "diff":
                if f is zero or g is one or f is g:
                    result = zero
                elif g is zero:
                    result = f
            if result is not None:
                emit(result)
                continue
            if commutative and id(f) > id(g):
                f, g = g, f
            key = (op, f, g)
            cached = cache_get(op, key)
            if cached is not None:
                emit(cached)
                continue
            level = f.level if f.level < g.level else g.level
            f_hi, f_lo = (f.hi, f.lo) if f.level == level else (f, f)
            g_hi, g_lo = (g.hi, g.lo) if g.level == level else (g, g)
            push((_REBUILD, key, level))
            push((_EXPAND, f_lo, g_lo))
            push((_EXPAND, f_hi, g_hi))
        else:  # _REBUILD
            lo = values.pop()
            hi = values.pop()
            result = mk(frame[2], hi, lo)
            cache_put(op, frame[1], result)
            emit(result)
    return values[0]


def not_node(manager: Manager, f: Node) -> Node:
    """Complement a BDD (no complement arcs: O(|f|) new nodes)."""
    one, zero = manager.one_node, manager.zero_node
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    mk = manager.mk

    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f)]
    push = stack.append
    values: list[Node] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("not")
        frame = stack.pop()
        if frame[0] == _EXPAND:
            f = frame[1]
            if f is zero:
                emit(one)
                continue
            if f is one:
                emit(zero)
                continue
            key = ("not", f)
            cached = cache_get("not", key)
            if cached is not None:
                emit(cached)
                continue
            push((_REBUILD, key, f))
            push((_EXPAND, f.lo))
            push((_EXPAND, f.hi))
        else:  # _REBUILD
            f = frame[2]
            lo = values.pop()
            hi = values.pop()
            result = mk(f.level, hi, lo)
            cache_put("not", frame[1], result)
            cache_put("not", ("not", result), f)
            emit(result)
    return values[0]


def ite_node(manager: Manager, f: Node, g: Node, h: Node) -> Node:
    """If-then-else ``f·g + f'·h`` with standard terminal cases."""
    one, zero = manager.one_node, manager.zero_node
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    mk = manager.mk

    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f, g, h)]
    push = stack.append
    values: list[Node] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("ite")
        frame = stack.pop()
        if frame[0] == _EXPAND:
            f, g, h = frame[1], frame[2], frame[3]
            if f is one:
                emit(g)
                continue
            if f is zero:
                emit(h)
                continue
            if g is h:
                emit(g)
                continue
            if g is one and h is zero:
                emit(f)
                continue
            if g is zero and h is one:
                emit(not_node(manager, f))
                continue
            if f is g:  # ite(f, f, h) = f + h
                g = one
            elif f is h:  # ite(f, g, f) = f & g
                h = zero
            key = ("ite", f, g, h)
            cached = cache_get("ite", key)
            if cached is not None:
                emit(cached)
                continue
            level = f.level
            if g.level < level:
                level = g.level
            if h.level < level:
                level = h.level
            f_hi, f_lo = (f.hi, f.lo) if f.level == level else (f, f)
            g_hi, g_lo = (g.hi, g.lo) if g.level == level else (g, g)
            h_hi, h_lo = (h.hi, h.lo) if h.level == level else (h, h)
            push((_REBUILD, key, level))
            push((_EXPAND, f_lo, g_lo, h_lo))
            push((_EXPAND, f_hi, g_hi, h_hi))
        else:  # _REBUILD
            lo = values.pop()
            hi = values.pop()
            result = mk(frame[2], hi, lo)
            cache_put("ite", frame[1], result)
            emit(result)
    return values[0]


class _ManagerLeqCache:
    """Adapter memoizing containment queries in the manager's computed
    table (op tag ``"leq"``) behind :func:`leq_node`'s dict protocol."""

    __slots__ = ("_computed",)

    def __init__(self, computed: "ComputedTable") -> None:
        self._computed = computed

    def get(self, key: tuple[Node, Node]) -> bool | None:
        return self._computed.lookup("leq", ("leq", key[0], key[1]))

    def __setitem__(self, key: tuple[Node, Node], value: bool) -> None:
        self._computed.insert("leq", ("leq", key[0], key[1]), value)


def leq_node(manager: Manager, f: Node, g: Node,
             cache: dict[tuple[Node, Node], bool] | None = None) -> bool:
    """Containment test ``f <= g`` (f implies g) without building BDDs.

    ``cache`` may be supplied to share memoization across many queries
    (RUA's markNodes performs one containment test per node); by default
    queries memoize in the manager's computed table.

    The conjunction short-circuits like the recursive formulation did:
    when the then-branch refutes containment, the else-branch is never
    explored.
    """
    one, zero = manager.one_node, manager.zero_node
    if cache is None:
        cache = _ManagerLeqCache(manager.computed)
    cache_get = cache.get
    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f, g)]
    push = stack.append
    values: list[bool] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("leq")
        frame = stack.pop()
        tag = frame[0]
        if tag == _EXPAND:
            f, g = frame[1], frame[2]
            if f is zero or g is one or f is g:
                emit(True)
                continue
            if f is one or g is zero:
                emit(False)
                continue
            key = (f, g)
            cached = cache_get(key)
            if cached is not None:
                emit(cached)
                continue
            level = f.level if f.level < g.level else g.level
            f_hi, f_lo = (f.hi, f.lo) if f.level == level else (f, f)
            g_hi, g_lo = (g.hi, g.lo) if g.level == level else (g, g)
            push((_AFTER_HI, key, f_lo, g_lo))
            push((_EXPAND, f_hi, g_hi))
        elif tag == _AFTER_HI:
            key = frame[1]
            if not values.pop():
                cache[key] = False
                emit(False)
                continue
            push((_REBUILD, key))
            push((_EXPAND, frame[2], frame[3]))
        else:  # _REBUILD: record the else-branch verdict
            result = values[-1]
            cache[frame[1]] = result
    return values[0]


def cofactor_node(manager: Manager, f: Node,
                  levels: dict[int, bool]) -> Node:
    """Restrict the variables at ``levels`` to the given constants."""
    if not levels:
        return f
    frozen = tuple(sorted(levels.items()))
    max_level = frozen[-1][0]
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    mk = manager.mk

    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f)]
    push = stack.append
    values: list[Node] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("cof")
        frame = stack.pop()
        tag = frame[0]
        if tag == _EXPAND:
            f = frame[1]
            if f.is_terminal or f.level > max_level:
                emit(f)
                continue
            key = ("cof", f, frozen)
            cached = cache_get("cof", key)
            if cached is not None:
                emit(cached)
                continue
            value = levels.get(f.level)
            if value is None:
                push((_REBUILD, key, f.level))
                push((_EXPAND, f.lo))
                push((_EXPAND, f.hi))
            elif value:
                push((_FORWARD, key))
                push((_EXPAND, f.hi))
            else:
                push((_FORWARD, key))
                push((_EXPAND, f.lo))
        elif tag == _REBUILD:
            lo = values.pop()
            hi = values.pop()
            result = mk(frame[2], hi, lo)
            cache_put("cof", frame[1], result)
            emit(result)
        else:  # _FORWARD: memoize the single child's result as our own
            cache_put("cof", frame[1], values[-1])
    return values[0]


def vector_compose_node(manager: Manager, f: Node,
                        substitution: dict[int, Node]) -> Node:
    """Simultaneously substitute ``substitution[level]`` for each variable.

    Implemented by the standard formulation:
    ``f = ite(sub(x), compose(f_hi), compose(f_lo))`` at substituted
    levels, rebuilding with ITE below to keep canonicity when the
    substituted functions overlap the remaining variables.
    """
    if not substitution:
        return f
    frozen = tuple(sorted(substitution.items()))
    max_level = frozen[-1][0]
    one, zero = manager.one_node, manager.zero_node
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    mk = manager.mk

    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f)]
    push = stack.append
    values: list[Node] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("vcomp")
        frame = stack.pop()
        if frame[0] == _EXPAND:
            f = frame[1]
            if f.is_terminal or f.level > max_level:
                emit(f)
                continue
            key = ("vcomp", f, frozen)
            cached = cache_get("vcomp", key)
            if cached is not None:
                emit(cached)
                continue
            push((_REBUILD, key, f.level))
            push((_EXPAND, f.lo))
            push((_EXPAND, f.hi))
        else:  # _REBUILD
            level = frame[2]
            lo = values.pop()
            hi = values.pop()
            replacement = substitution.get(level)
            if replacement is None:
                # The variable itself survives; rebuild with ITE because
                # hi/lo may now depend on variables at or above level.
                var = mk(level, one, zero)
                result = ite_node(manager, var, hi, lo)
            else:
                result = ite_node(manager, replacement, hi, lo)
            cache_put("vcomp", frame[1], result)
            emit(result)
    return values[0]
