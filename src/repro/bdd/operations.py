"""Core BDD operations on raw nodes: ITE, apply, compose, cofactor.

All functions here are memoized through the manager's op-tagged
:class:`~repro.bdd.computed.ComputedTable`.
Results are canonical nodes in the same manager.  The node-level API is
used by the approximation/decomposition algorithms; user code should go
through :class:`~repro.bdd.function.Function`.
"""

from __future__ import annotations

from .manager import Manager
from .node import Node

#: Truth tables of the supported binary operators, as
#: (op(0,0), op(0,1), op(1,0), op(1,1)).
_OP_TABLES: dict[str, tuple[int, int, int, int]] = {
    "and": (0, 0, 0, 1),
    "or": (0, 1, 1, 1),
    "xor": (0, 1, 1, 0),
    "xnor": (1, 0, 0, 1),
    "nand": (1, 1, 1, 0),
    "nor": (1, 0, 0, 0),
    "imp": (1, 1, 0, 1),
    "diff": (0, 0, 1, 0),
}

#: Operators that commute — their cache keys are argument-order
#: normalized to double the hit rate.
_COMMUTATIVE = frozenset({"and", "or", "xor", "xnor", "nand", "nor"})


def top_level(*nodes: Node) -> int:
    """Root-most level among the arguments."""
    return min(node.level for node in nodes)


def cofactors_at(node: Node, level: int) -> tuple[Node, Node]:
    """(hi, lo) cofactors of ``node`` with respect to ``level``."""
    if node.level == level:
        return node.hi, node.lo
    return node, node


def apply_node(manager: Manager, op: str, f: Node, g: Node) -> Node:
    """Apply a named binary boolean operator to two BDDs."""
    try:
        table = _OP_TABLES[op]
    except KeyError:
        raise ValueError(f"unknown operator {op!r}") from None
    one, zero = manager.one_node, manager.zero_node
    terminals = (zero, one)
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert

    commutative = op in _COMMUTATIVE

    def rec(f: Node, g: Node) -> Node:
        if f.is_terminal and g.is_terminal:
            return terminals[table[2 * f.value + g.value]]
        # Operator-specific terminal shortcuts.
        if op == "and":
            if f is zero or g is zero:
                return zero
            if f is one:
                return g
            if g is one or f is g:
                return f
        elif op == "or":
            if f is one or g is one:
                return one
            if f is zero:
                return g
            if g is zero or f is g:
                return f
        elif op == "xor":
            if f is zero:
                return g
            if g is zero:
                return f
            if f is g:
                return zero
        elif op == "diff":
            if f is zero or g is one or f is g:
                return zero
            if g is zero:
                return f
        if commutative and id(f) > id(g):
            f, g = g, f
        key = (op, f, g)
        cached = cache_get(op, key)
        if cached is not None:
            return cached
        level = top_level(f, g)
        f_hi, f_lo = cofactors_at(f, level)
        g_hi, g_lo = cofactors_at(g, level)
        result = manager.mk(level, rec(f_hi, g_hi), rec(f_lo, g_lo))
        cache_put(op, key, result)
        return result

    return rec(f, g)


def not_node(manager: Manager, f: Node) -> Node:
    """Complement a BDD (no complement arcs: O(|f|) new nodes)."""
    one, zero = manager.one_node, manager.zero_node
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert

    def rec(f: Node) -> Node:
        if f is zero:
            return one
        if f is one:
            return zero
        key = ("not", f)
        cached = cache_get("not", key)
        if cached is not None:
            return cached
        result = manager.mk(f.level, rec(f.hi), rec(f.lo))
        cache_put("not", key, result)
        cache_put("not", ("not", result), f)
        return result

    return rec(f)


def ite_node(manager: Manager, f: Node, g: Node, h: Node) -> Node:
    """If-then-else ``f·g + f'·h`` with standard terminal cases."""
    one, zero = manager.one_node, manager.zero_node
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert

    def rec(f: Node, g: Node, h: Node) -> Node:
        if f is one:
            return g
        if f is zero:
            return h
        if g is h:
            return g
        if g is one and h is zero:
            return f
        if g is zero and h is one:
            return not_node(manager, f)
        if f is g:  # ite(f, f, h) = f + h
            g = one
        elif f is h:  # ite(f, g, f) = f & g
            h = zero
        key = ("ite", f, g, h)
        cached = cache_get("ite", key)
        if cached is not None:
            return cached
        level = top_level(f, g, h)
        f_hi, f_lo = cofactors_at(f, level)
        g_hi, g_lo = cofactors_at(g, level)
        h_hi, h_lo = cofactors_at(h, level)
        result = manager.mk(level, rec(f_hi, g_hi, h_hi),
                            rec(f_lo, g_lo, h_lo))
        cache_put("ite", key, result)
        return result

    return rec(f, g, h)


class _ManagerLeqCache:
    """Adapter memoizing containment queries in the manager's computed
    table (op tag ``"leq"``) behind :func:`leq_node`'s dict protocol."""

    __slots__ = ("_computed",)

    def __init__(self, computed) -> None:
        self._computed = computed

    def get(self, key: tuple[Node, Node]) -> bool | None:
        return self._computed.lookup("leq", ("leq", key[0], key[1]))

    def __setitem__(self, key: tuple[Node, Node], value: bool) -> None:
        self._computed.insert("leq", ("leq", key[0], key[1]), value)


def leq_node(manager: Manager, f: Node, g: Node,
             cache: dict[tuple[Node, Node], bool] | None = None) -> bool:
    """Containment test ``f <= g`` (f implies g) without building BDDs.

    ``cache`` may be supplied to share memoization across many queries
    (RUA's markNodes performs one containment test per node); by default
    queries memoize in the manager's computed table.
    """
    one, zero = manager.one_node, manager.zero_node
    if cache is None:
        cache = _ManagerLeqCache(manager.computed)

    def rec(f: Node, g: Node) -> bool:
        if f is zero or g is one or f is g:
            return True
        if f is one or g is zero:
            return False
        key = (f, g)
        cached = cache.get(key)
        if cached is not None:
            return cached
        level = top_level(f, g)
        f_hi, f_lo = cofactors_at(f, level)
        g_hi, g_lo = cofactors_at(g, level)
        result = rec(f_hi, g_hi) and rec(f_lo, g_lo)
        cache[key] = result
        return result

    return rec(f, g)


def cofactor_node(manager: Manager, f: Node,
                  levels: dict[int, bool]) -> Node:
    """Restrict the variables at ``levels`` to the given constants."""
    if not levels:
        return f
    frozen = tuple(sorted(levels.items()))
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert

    def rec(f: Node) -> Node:
        if f.is_terminal or f.level > frozen[-1][0]:
            return f
        key = ("cof", f, frozen)
        cached = cache_get("cof", key)
        if cached is not None:
            return cached
        value = levels.get(f.level)
        if value is None:
            result = manager.mk(f.level, rec(f.hi), rec(f.lo))
        elif value:
            result = rec(f.hi)
        else:
            result = rec(f.lo)
        cache_put("cof", key, result)
        return result

    return rec(f)


def vector_compose_node(manager: Manager, f: Node,
                        substitution: dict[int, Node]) -> Node:
    """Simultaneously substitute ``substitution[level]`` for each variable.

    Implemented by the standard recursive formulation:
    ``f = ite(sub(x), compose(f_hi), compose(f_lo))`` at substituted
    levels, rebuilding with ITE below to keep canonicity when the
    substituted functions overlap the remaining variables.
    """
    if not substitution:
        return f
    frozen = tuple(sorted(substitution.items()))
    max_level = frozen[-1][0]
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert

    def rec(f: Node) -> Node:
        if f.is_terminal or f.level > max_level:
            return f
        key = ("vcomp", f, frozen)
        cached = cache_get("vcomp", key)
        if cached is not None:
            return cached
        hi = rec(f.hi)
        lo = rec(f.lo)
        replacement = substitution.get(f.level)
        if replacement is None:
            # The variable itself survives; rebuild with ITE because hi/lo
            # may now depend on variables at or above f.level.
            var = manager.mk(f.level, manager.one_node, manager.zero_node)
            result = ite_node(manager, var, hi, lo)
        else:
            result = ite_node(manager, replacement, hi, lo)
        cache_put("vcomp", key, result)
        return result

    return rec(f)
