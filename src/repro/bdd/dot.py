"""DOT (Graphviz) export for debugging and documentation figures."""

from __future__ import annotations

from typing import TYPE_CHECKING

from .node import Node
from .traversal import nodes_by_level

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .function import Function


def to_dot(function: Function, name: str = "f") -> str:
    """Render a Function as a Graphviz digraph string.

    Solid arcs are *then* arcs and dashed arcs are *else* arcs, matching
    the conventions of Figure 1 of the paper.
    """
    manager = function.manager
    root = function.node
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    ids: dict[Node, str] = {}

    def node_id(node: Node) -> str:
        if node not in ids:
            if node.is_terminal:
                ids[node] = f"t{node.value}"
            else:
                ids[node] = f"n{len(ids)}"
        return ids[node]

    internal = nodes_by_level(root)
    by_level: dict[int, list] = {}
    for node in internal:
        by_level.setdefault(node.level, []).append(node)
    for level in sorted(by_level):
        var = manager.var_at_level(level)
        members = " ".join(f'"{node_id(n)}"' for n in by_level[level])
        lines.append(f"  {{ rank=same; {members} }}")
        for node in by_level[level]:
            lines.append(f'  "{node_id(node)}" [label="{var}"];')
    for value in (0, 1):
        terminal = manager.one_node if value else manager.zero_node
        if terminal in ids or root is terminal:
            lines.append(f'  "t{value}" [shape=box,label="{value}"];')
    for node in internal:
        lines.append(f'  "{node_id(node)}" -> "{node_id(node.hi)}";')
        lines.append(
            f'  "{node_id(node)}" -> "{node_id(node.lo)}" [style=dashed];')
    if root.is_terminal:
        lines.append(f'  "t{root.value}" [shape=box,label="{root.value}"];')
    lines.append("}")
    return "\n".join(lines)
