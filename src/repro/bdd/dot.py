"""DOT (Graphviz) export for debugging and documentation figures."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .traversal import nodes_by_level

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .function import Function


def to_dot(function: "Function", name: str = "f") -> str:
    """Render a Function as a Graphviz digraph string.

    Solid arcs are *then* arcs and dashed arcs are *else* arcs, matching
    the conventions of Figure 1 of the paper.
    """
    manager = function.manager
    store = manager.store
    level_of, hi_of, lo_of = store.level_of, store.hi_of, store.lo_of
    is_term, value_of, key_of = \
        store.is_terminal, store.value_of, store.key_of
    root = function.node
    lines = [f"digraph {name} {{", "  rankdir=TB;"]
    ids: dict[Any, str] = {}

    def node_id(node: Any) -> str:
        key = key_of(node)
        if key not in ids:
            if is_term(node):
                ids[key] = f"t{value_of(node)}"
            else:
                ids[key] = f"n{len(ids)}"
        return ids[key]

    internal = nodes_by_level(store, root)
    by_level: dict[int, list] = {}
    for node in internal:
        by_level.setdefault(level_of(node), []).append(node)
    for level in sorted(by_level):
        var = manager.var_at_level(level)
        members = " ".join(f'"{node_id(n)}"' for n in by_level[level])
        lines.append(f"  {{ rank=same; {members} }}")
        for node in by_level[level]:
            lines.append(f'  "{node_id(node)}" [label="{var}"];')
    for value in (0, 1):
        terminal = store.one if value else store.zero
        if key_of(terminal) in ids or root == terminal:
            lines.append(f'  "t{value}" [shape=box,label="{value}"];')
    for node in internal:
        lines.append(f'  "{node_id(node)}" -> "{node_id(hi_of(node))}";')
        lines.append(
            f'  "{node_id(node)}" -> "{node_id(lo_of(node))}" [style=dashed];')
    if is_term(root):
        lines.append(
            f'  "t{value_of(root)}" [shape=box,label="{value_of(root)}"];')
    lines.append("}")
    return "\n".join(lines)
