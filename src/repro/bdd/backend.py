"""The NodeStore backend API: the Manager <-> kernel boundary.

A *node store* owns the physical representation of the BDD node graph
— the unique table, the reference counts, the terminal constants — and
hands out opaque **handles**.  Everything above the store (the manager,
the kernels, the approximation/decomposition algorithms) manipulates
handles exclusively through the store's accessors, so the node layout
can change without touching a single algorithm:

* :class:`ObjectStore` (the reference backend) keeps one
  :class:`~repro.bdd.node.Node` object per BDD node; handles *are* the
  node objects, exactly the seed representation.
* :class:`~repro.bdd.arraystore.ArrayStore` keeps ``level``/``hi``/
  ``lo``/``ref`` in flat ``array('q')`` columns indexed by node id;
  handles are plain ``int`` ids and the terminals are the fixed ids
  0 and 1.

Handle contract
---------------
Handles are equality-comparable and hashable; two handles are equal iff
they denote the same node (hash-consing makes this function equality).
Code must compare handles with ``==``, **never** ``is`` — identity
holds for ``Node`` objects but not for ``int`` ids (CPython only
interns small integers).  ``store.key_of(h)`` returns a stable integer
for ordering and identity-keyed maps (``id`` for objects, the id
itself for ints).

Hot accessors (``level_of``, ``hi_of``, ``lo_of``, ``mk``, ...) are
*bound callables* published as instance attributes, so kernels can
lift them into locals before their loops — the same idiom they already
use for the computed table.

Backend selection
-----------------
``Manager(..., backend="array")`` picks a store explicitly; otherwise
the ``REPRO_BACKEND`` environment variable decides (default
``"object"``).  :func:`create_store` is the factory; third-party
backends can be added to :data:`BACKENDS`.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable, Iterator
from operator import attrgetter
from typing import Any

from .node import Node, TERMINAL_LEVEL

__all__ = [
    "NodeStore",
    "ObjectStore",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "resolve_backend",
    "create_store",
]

#: Backend chosen when neither the ``backend=`` argument nor the
#: ``REPRO_BACKEND`` environment variable says otherwise.
DEFAULT_BACKEND = "object"


class NodeStore:
    """Abstract node-store protocol (see the module docstring).

    Subclasses must initialize the public attributes below and
    implement every method.  Handles are backend-defined opaque values
    (``Node`` objects, ``int`` ids, ...).

    Attributes
    ----------
    name:
        Backend name as used by ``Manager(backend=...)``.
    zero, one:
        Handles of the constant FALSE / TRUE terminals.  Terminals are
        permanent: they always carry one artificial reference.
    level_of, hi_of, lo_of, ref_of:
        Single-argument accessor callables mapping a handle to its
        field.  Terminals carry :data:`~repro.bdd.node.TERMINAL_LEVEL`.
    key_of:
        Handle -> stable int; identity key for ordering, hashing and
        mark sets (``id`` for object handles, the id itself for ints).
    checks_cache_liveness:
        True when :meth:`cache_handles` can recover every handle buried
        in a computed-table entry, enabling the sanitizer's
        cache-liveness sweep.  Integer-handle stores cannot tell a
        handle from any other int in a key, so they opt out (sound
        because the computed table is cleared wholesale at every point
        where ids are recycled — GC and variable swaps).
    """

    name: str
    zero: Any
    one: Any
    level_of: Callable[[Any], int]
    hi_of: Callable[[Any], Any]
    lo_of: Callable[[Any], Any]
    ref_of: Callable[[Any], int]
    key_of: Callable[[Any], int]
    #: handle -> True for the two constant handles
    is_terminal: Callable[[Any], bool]
    checks_cache_liveness: bool = True

    # -- node construction and lookup ----------------------------------

    def mk(self, level: int, hi: Any, lo: Any) -> Any:
        """Find-or-create the reduced node ``(level, hi, lo)``."""
        raise NotImplementedError

    def find(self, level: int, hi: Any, lo: Any) -> Any | None:
        """Unique-table lookup without creating (None on a miss)."""
        raise NotImplementedError

    def value_of(self, handle: Any) -> int | None:
        """0/1 for terminals, None for internal handles."""
        raise NotImplementedError

    # -- size accounting -----------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Live internal nodes."""
        raise NotImplementedError

    @property
    def peak_nodes(self) -> int:
        """Historical maximum of live internal nodes."""
        raise NotImplementedError

    @property
    def num_levels(self) -> int:
        """Number of declared levels (variables)."""
        raise NotImplementedError

    def level_sizes(self) -> list[int]:
        """Nodes per level, root-most first."""
        raise NotImplementedError

    def add_level(self, level: int) -> None:
        """Insert an empty level at position ``level``.

        The manager guarantees insertion above existing levels only
        happens while the store holds no internal nodes.
        """
        raise NotImplementedError

    # -- iteration (sanitize / reorder / io) ---------------------------

    def iter_nodes(self) -> Iterator[Any]:
        """Every live internal handle, level by level."""
        raise NotImplementedError

    def iter_table(self) -> Iterator[tuple[int, Any, Any, Any]]:
        """Unique-table rows as ``(level, key_hi, key_lo, handle)``.

        ``key_hi``/``key_lo`` are the children *as recorded in the
        table key* — on a healthy store they equal ``hi_of(handle)`` /
        ``lo_of(handle)``; the sanitizer diffs them.
        """
        raise NotImplementedError

    def is_live(self, handle: Any) -> bool:
        """A terminal of this store, or present in its unique table."""
        raise NotImplementedError

    # -- garbage collection and reordering -----------------------------

    def collect(self, roots: Iterable[Any]) -> int:
        """Sweep nodes unreachable from ``roots``; returns the count.

        Also recomputes every structural reference count from scratch
        (parent arcs, plus one per root, plus the permanent terminal
        reference).  Handle identity of surviving nodes is preserved
        for object handles; integer ids of swept nodes may be recycled
        by later :meth:`mk` calls — which is why the manager clears the
        computed table and metric caches at every collection.
        """
        raise NotImplementedError

    def swap_adjacent(self, level: int) -> None:
        """Exchange levels ``level`` and ``level + 1`` in place.

        Every handle keeps denoting the same boolean function.
        Structural reference counts must be accurate on entry and are
        maintained; nodes orphaned by the rewrite are reclaimed.  The
        manager wrapper (:func:`repro.bdd.reorder.swap_adjacent`) owns
        cache invalidation and the variable-name maps.
        """
        raise NotImplementedError

    # -- sanitizer support ---------------------------------------------

    def describe(self, handle: Any) -> str:
        """Short human-readable tag for diagnostics."""
        raise NotImplementedError

    def check(self, report: Callable[[str, str], None]) -> None:
        """Backend-specific invariant checks (terminals, columns).

        ``report(check_name, message)`` records one diagnostic; the
        generic graph checks live in :mod:`repro.bdd.sanitize`.
        """
        raise NotImplementedError

    def cache_handles(self, value: Any) -> Iterator[Any]:
        """Handles buried in a computed-table key or result.

        Only meaningful when :attr:`checks_cache_liveness` is True.
        """
        raise NotImplementedError


class ObjectStore(NodeStore):
    """The reference backend: one ``Node`` object per BDD node.

    Handles are the :class:`~repro.bdd.node.Node` objects themselves —
    identity-hashed, so handle equality is object identity.  The unique
    table is one dict per level keyed by the ``(hi, lo)`` child pair,
    exactly the seed representation.
    """

    name = "object"
    checks_cache_liveness = True

    def __init__(self) -> None:
        self.zero = Node(TERMINAL_LEVEL, None, None, value=0)
        self.one = Node(TERMINAL_LEVEL, None, None, value=1)
        # Terminals must never be collected.
        self.zero.ref = 1
        self.one.ref = 1
        #: subtables[level] maps (hi, lo) -> Node
        self._subtables: list[dict[tuple[Node, Node], Node]] = []
        self._count = 0
        self._peak = 0
        # Hot accessors as C-level callables (attribute getters).
        self.level_of = attrgetter("level")
        self.hi_of = attrgetter("hi")
        self.lo_of = attrgetter("lo")
        self.ref_of = attrgetter("ref")
        self.is_terminal = attrgetter("is_terminal")
        self.key_of = id

    # -- node construction and lookup ----------------------------------

    def mk(self, level: int, hi: Node, lo: Node) -> Node:
        if hi is lo:
            return hi
        if hi.level <= level or lo.level <= level:
            raise ValueError("children must be below the node level")
        subtable = self._subtables[level]
        key = (hi, lo)
        node = subtable.get(key)
        if node is None:
            node = Node(level, hi, lo)
            hi.ref += 1
            lo.ref += 1
            subtable[key] = node
            self._count += 1
            if self._count > self._peak:
                self._peak = self._count
        return node

    def find(self, level: int, hi: Node, lo: Node) -> Node | None:
        if hi is lo:
            return hi
        return self._subtables[level].get((hi, lo))

    def value_of(self, handle: Node) -> int | None:
        return handle.value

    # -- size accounting -----------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._count

    @property
    def peak_nodes(self) -> int:
        return self._peak

    @property
    def num_levels(self) -> int:
        return len(self._subtables)

    def level_sizes(self) -> list[int]:
        return [len(t) for t in self._subtables]

    def add_level(self, level: int) -> None:
        self._subtables.insert(level, {})

    # -- iteration -----------------------------------------------------

    def iter_nodes(self) -> Iterator[Node]:
        for subtable in self._subtables:
            yield from subtable.values()

    def iter_table(self) -> Iterator[tuple[int, Node, Node, Node]]:
        for level, subtable in enumerate(self._subtables):
            for key, node in subtable.items():
                # A corrupt table can hold malformed keys; keep the
                # sweep total so the sanitizer reports instead of
                # crashing.
                if isinstance(key, tuple) and len(key) == 2:
                    yield level, key[0], key[1], node
                else:  # pragma: no cover - pathological corruption
                    yield level, None, None, node

    def is_live(self, handle: Node) -> bool:
        if handle is self.zero or handle is self.one:
            return True
        if handle.value is not None \
                or not 0 <= handle.level < len(self._subtables):
            return False
        return self._subtables[handle.level].get(
            (handle.hi, handle.lo)) is handle

    # -- garbage collection and reordering -----------------------------

    def collect(self, roots: Iterable[Node]) -> int:
        roots = list(roots)
        marked: set[int] = set()
        stack = list(roots)
        while stack:
            node = stack.pop()
            if id(node) in marked or node.value is not None:
                continue
            marked.add(id(node))
            stack.append(node.hi)
            stack.append(node.lo)
        reclaimed = 0
        for subtable in self._subtables:
            dead = [key for key, node in subtable.items()
                    if id(node) not in marked]
            for key in dead:
                del subtable[key]
                reclaimed += 1
        self._count -= reclaimed
        self._recount_refs(roots)
        return reclaimed

    def _recount_refs(self, roots: list[Node]) -> None:
        """Recompute structural reference counts from scratch."""
        for subtable in self._subtables:
            for node in subtable.values():
                node.ref = 0
        self.zero.ref = 0
        self.one.ref = 0
        for subtable in self._subtables:
            for node in subtable.values():
                node.hi.ref += 1
                node.lo.ref += 1
        for root in roots:
            root.ref += 1
        self.zero.ref += 1
        self.one.ref += 1

    def swap_adjacent(self, level: int) -> None:
        upper = self._subtables[level]
        lower = self._subtables[level + 1]

        # Phase 1: classify the upper-level nodes before touching
        # anything.
        dependent: list[tuple[Node, ...]] = []
        independent: list[Node] = []
        for node in list(upper.values()):
            hi, lo = node.hi, node.lo
            if hi.level == level + 1 or lo.level == level + 1:
                if hi.level == level + 1:
                    f11, f10 = hi.hi, hi.lo
                else:
                    f11 = f10 = hi
                if lo.level == level + 1:
                    f01, f00 = lo.hi, lo.lo
                else:
                    f01 = f00 = lo
                dependent.append((node, hi, lo, f11, f10, f01, f00))
            else:
                independent.append(node)

        # Phase 2: relabel.  Lower-level nodes (testing the variable
        # that moves up) rise to `level`; independent upper nodes sink
        # to `level + 1`.  Functions are untouched — only the physical
        # level changes along with the variable it denotes.
        risen = list(lower.values())
        upper.clear()
        lower.clear()
        for node in risen:
            node.level = level
            upper[(node.hi, node.lo)] = node
        for node in independent:
            node.level = level + 1
            lower[(node.hi, node.lo)] = node

        # Phase 3: rewrite dependent nodes in place.  Each becomes a
        # node testing the risen variable, with children testing the
        # sunk one.
        maybe_dead: list[Node] = []
        for node, old_hi, old_lo, f11, f10, f01, f00 in dependent:
            new_hi = self.mk(level + 1, f11, f01)
            new_lo = self.mk(level + 1, f10, f00)
            new_hi.ref += 1
            new_lo.ref += 1
            old_hi.ref -= 1
            old_lo.ref -= 1
            maybe_dead.append(old_hi)
            maybe_dead.append(old_lo)
            node.hi = new_hi
            node.lo = new_lo
            upper[(new_hi, new_lo)] = node

        # Phase 4: reclaim nodes orphaned by the rewrites.
        for node in maybe_dead:
            self._reclaim(node)

    def _reclaim(self, node: Node) -> None:
        """Delete ``node`` and recursively its orphaned descendants."""
        stack = [node]
        while stack:
            node = stack.pop()
            if node.ref or node.value is not None:
                continue
            subtable = self._subtables[node.level]
            key = (node.hi, node.lo)
            if subtable.get(key) is not node:
                # Already reclaimed via another parent (the stack can
                # reach a shared dead descendant more than once).
                continue
            del subtable[key]
            self._count -= 1
            node.hi.ref -= 1
            node.lo.ref -= 1
            stack.append(node.hi)
            stack.append(node.lo)

    # -- sanitizer support ---------------------------------------------

    def describe(self, handle: object) -> str:
        if not isinstance(handle, Node):
            # A corrupt table can hold anything; describe, don't crash.
            return f"non-node {handle!r}"
        if handle.is_terminal:
            return f"terminal {handle.value}"
        return f"node@{id(handle):#x} L{handle.level}"

    def check(self, report: Callable[[str, str], None]) -> None:
        for terminal, value in ((self.zero, 0), (self.one, 1)):
            if terminal.value != value or terminal.hi is not None \
                    or terminal.lo is not None:
                report("terminal",
                       f"terminal {value} corrupted: "
                       f"value={terminal.value!r} hi={terminal.hi!r} "
                       f"lo={terminal.lo!r}")

    def cache_handles(self, value: Any) -> Iterator[Node]:
        """Every Node buried in a (possibly nested) cache entry."""
        stack = [value]
        while stack:
            item = stack.pop()
            if isinstance(item, Node):
                yield item
            elif isinstance(item, (tuple, list, frozenset, set)):
                stack.extend(item)
            elif isinstance(item, dict):
                stack.extend(item.keys())
                stack.extend(item.values())


#: Backend registry: name -> zero-argument store factory.  "array" is
#: resolved lazily to keep this module import-light.
BACKENDS: dict[str, Callable[[], NodeStore]] = {
    "object": ObjectStore,
}


def resolve_backend(backend: str | None = None) -> str:
    """Pick the backend name: argument, then env, then the default."""
    if backend is None:
        backend = os.environ.get("REPRO_BACKEND", "").strip() \
            or DEFAULT_BACKEND
    return backend


def create_store(backend: str | None = None) -> NodeStore:
    """Instantiate the node store selected by ``backend``.

    ``None`` defers to the ``REPRO_BACKEND`` environment variable and
    then to :data:`DEFAULT_BACKEND`.  Unknown names raise ``ValueError``
    with the registered alternatives.
    """
    name = resolve_backend(backend)
    if name == "array" and "array" not in BACKENDS:
        from .arraystore import ArrayStore

        BACKENDS["array"] = ArrayStore
    try:
        factory = BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(set(BACKENDS) | {"array"}))
        raise ValueError(
            f"unknown BDD backend {name!r} (known: {known})") from None
    return factory()
