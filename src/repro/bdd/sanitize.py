"""The runtime graph sanitizer — a ``Cudd_DebugCheck`` equivalent.

:func:`check_manager` sweeps a manager and verifies every structural
invariant the algorithms assume:

* **ordering** — levels strictly increase along every arc toward the
  terminals;
* **reduction** — no redundant nodes (``lo == hi``);
* **unique-table consistency** — each node sits in the subtable of its
  own level under the key matching its child fields, and no two nodes
  share a ``(level, hi, lo)`` triple (hash-consing canonicity);
* **dangling arcs** — every child of a table node is a terminal of this
  manager or itself present in its unique table;
* **computed-table hygiene** — every cached entry references only live
  nodes (on stores that can recover handles from cache entries; see
  ``NodeStore.checks_cache_liveness``), carries a registered op tag
  (:data:`~repro.bdd.computed.REGISTERED_OPS`), and holds a completed
  result (never ``None`` — kernels must not leave in-progress markers
  behind, in particular not across a governor abort);
* **bookkeeping** — the node counter matches the unique table, every
  live GC root is present, and no node's structural reference count is
  below a fresh parent-arc recount;
* **backend extras** — each store contributes its own representation
  checks (terminal fields; for the array store also column lengths and
  free-list consistency) via ``NodeStore.check``.

The sweep itself is generic over the node-store protocol
(:mod:`repro.bdd.backend`): it walks ``store.iter_table()`` and reads
handles through the store's accessors, so the same checks run on the
object graph and on the flat array store.

Diagnostics are precise (level, repr, counts) so a mutation test — or a
real regression — pins the corruption to the check that caught it.

Set ``REPRO_SANITIZE=1`` to arm the sanitizer at runtime: every
garbage collection verifies the surviving graph, and every
``REPRO_SANITIZE_STRIDE``-th GC safe point (default 50) verifies
managers up to ``REPRO_SANITIZE_LIMIT`` nodes (default 5000) — full
sweeps at every safe point, or on big managers, would dominate the
run.  :class:`SanitizerError` carries the full diagnostic list.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from .computed import REGISTERED_OPS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .manager import Manager

#: Safe-point sweeps are skipped above this many live nodes unless
#: REPRO_SANITIZE_LIMIT overrides it.
DEFAULT_NODE_LIMIT = 5000

#: Safe points between armed sweeps unless REPRO_SANITIZE_STRIDE
#: overrides it (1 = sweep at every safe point).
DEFAULT_STRIDE = 50


@dataclass(frozen=True)
class Diagnostic:
    """One invariant violation found by the sanitizer."""

    #: machine-readable check name, e.g. ``"order"`` or ``"duplicate"``
    check: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.message}"


class SanitizerError(AssertionError):
    """Raised by ``debug_check`` when the graph is corrupt."""

    def __init__(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics = diagnostics
        lines = "\n".join(f"  {d}" for d in diagnostics)
        super().__init__(
            f"manager failed debug_check with "
            f"{len(diagnostics)} diagnostic(s):\n{lines}")


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests auto-armed checking."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def sanitize_node_limit() -> int:
    """Node bound for safe-point sweeps (``REPRO_SANITIZE_LIMIT``)."""
    try:
        return int(os.environ["REPRO_SANITIZE_LIMIT"])
    except (KeyError, ValueError):
        return DEFAULT_NODE_LIMIT


def sanitize_stride() -> int:
    """Safe points between armed sweeps (``REPRO_SANITIZE_STRIDE``).

    1 sweeps at every safe point (maximum precision, maximum cost);
    the default trades detection latency of a few dozen operations for
    an overhead small enough to run the whole suite sanitized.
    """
    try:
        return max(1, int(os.environ["REPRO_SANITIZE_STRIDE"]))
    except (KeyError, ValueError):
        return DEFAULT_STRIDE


def check_manager(manager: "Manager",
                  check_cache: bool = True) -> list[Diagnostic]:
    """Run every invariant check; returns the diagnostics (empty: ok)."""
    out: list[Diagnostic] = []
    report = out.append
    store = manager.store
    level_of, hi_of, lo_of = store.level_of, store.hi_of, store.lo_of
    ref_of, key_of = store.ref_of, store.key_of
    is_term = store.is_terminal
    is_live = store.is_live
    describe = store.describe

    # -- backend-specific representation checks ------------------------
    store.check(lambda check, message: report(Diagnostic(check, message)))

    def fields_of(handle: Any) -> tuple[int, bool] | None:
        """(level, is_terminal) of a handle, None when unreadable.

        A corrupt table can record children that are not valid handles
        at all (wrong type, out-of-range id); the sanitizer must
        describe them, not crash on the accessor.
        """
        try:
            return level_of(handle), is_term(handle)
        except (IndexError, TypeError, AttributeError, OverflowError):
            return None

    # -- unique table --------------------------------------------------
    count = 0
    triples: dict[tuple[int, int, int], Any] = {}
    arcs: dict[Any, int] = {}
    for level, key_hi, key_lo, node in store.iter_table():
        count += 1
        where = describe(node)
        if is_term(node):
            report(Diagnostic(
                "table", f"{where} at level {level}: terminal "
                f"stored in the unique table"))
            continue
        node_level = level_of(node)
        if node_level != level:
            report(Diagnostic(
                "level-sync",
                f"{where} stored in subtable {level} but carries "
                f"level {node_level}"))
        hi, lo = hi_of(node), lo_of(node)
        if not (hi == key_hi and lo == key_lo):
            report(Diagnostic(
                "key-sync",
                f"{where}: children ({describe(hi)}, "
                f"{describe(lo)}) disagree with its "
                f"unique-table key ({describe(key_hi)}, "
                f"{describe(key_lo)})"))
        if hi == lo:
            report(Diagnostic(
                "redundant",
                f"{where}: hi and lo are the same node "
                f"({describe(hi)}); redundant nodes must be "
                f"collapsed by reduction"))
        for label, child in (("hi", hi), ("lo", lo)):
            if child is None:
                report(Diagnostic(
                    "dangling",
                    f"{where}: {label} child is None"))
                continue
            fields = fields_of(child)
            if fields is None:
                report(Diagnostic(
                    "dangling",
                    f"{where}: {label} child {describe(child)} "
                    f"is not a valid handle"))
                continue
            child_level, child_term = fields
            if not child_term and child_level <= node_level:
                report(Diagnostic(
                    "order",
                    f"{where}: {label} child {describe(child)} "
                    f"does not lie strictly below level "
                    f"{node_level}"))
            if not is_live(child):
                report(Diagnostic(
                    "dangling",
                    f"{where}: {label} child {describe(child)} "
                    f"is not in the unique table"))
            arcs[child] = arcs.get(child, 0) + 1
        try:
            triple = (node_level, key_of(hi), key_of(lo))
        except (TypeError, ValueError):
            triple = None
        if triple is not None:
            other = triples.get(triple)
            if other is not None and not other == node:
                report(Diagnostic(
                    "duplicate",
                    f"duplicate (level, hi, lo) triple at level "
                    f"{node_level}: {where} duplicates "
                    f"{describe(other)} — hash-consing is broken"))
            else:
                triples[triple] = node

    # -- node accounting ----------------------------------------------
    if count != manager._num_nodes:
        report(Diagnostic(
            "count",
            f"unique table holds {count} nodes but the manager "
            f"counter says {manager._num_nodes}"))

    # -- reference counts ----------------------------------------------
    # Structural refs only ever exceed the fresh parent-arc recount
    # (external Function roots are added on top at GC time), so a ref
    # below the recount means a decrement was lost or misapplied.
    for node in store.iter_nodes():
        expected = arcs.get(node, 0)
        if ref_of(node) < expected:
            report(Diagnostic(
                "refcount",
                f"{describe(node)}: ref={ref_of(node)} below its "
                f"{expected} parent arc(s)"))

    # -- root tracking vs. a fresh reachability sweep -------------------
    reachable: set[int] = set()
    stack = list(manager.live_root_handles())
    for root in stack:
        if not is_live(root):
            report(Diagnostic(
                "root",
                f"live Function root {describe(root)} is not in the "
                f"unique table — GC root tracking is out of sync"))
    while stack:
        node = stack.pop()
        if node is None or fields_of(node) is None or is_term(node) \
                or key_of(node) in reachable:
            continue
        reachable.add(key_of(node))
        stack.append(hi_of(node))
        stack.append(lo_of(node))
    if len(reachable) > count:
        report(Diagnostic(
            "root",
            f"reachability sweep found {len(reachable)} internal "
            f"nodes but the unique table holds only {count}"))

    # -- computed table ------------------------------------------------
    if check_cache:
        cache_liveness = store.checks_cache_liveness
        for op, key, result in manager.computed.entries():
            if result is None:
                # lookup() signals a miss with None, so a None result is
                # unreachable garbage — and the signature of a kernel
                # that parked an in-progress marker and aborted.
                report(Diagnostic(
                    "cache-incomplete",
                    f"computed-table entry for op {op!r} key {key!r} "
                    f"holds None instead of a completed result"))
            if op != "?" and op not in REGISTERED_OPS:
                report(Diagnostic(
                    "cache-op",
                    f"computed-table entry {key!r} uses unregistered "
                    f"op tag {op!r}"))
            if cache_liveness:
                for node in store.cache_handles((key, result)):
                    if not is_live(node):
                        report(Diagnostic(
                            "cache-dangling",
                            f"computed-table entry for op {op!r} "
                            f"references {describe(node)} which is "
                            f"not in the unique table"))
                        break
    return out
