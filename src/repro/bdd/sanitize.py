"""The runtime graph sanitizer — a ``Cudd_DebugCheck`` equivalent.

:func:`check_manager` sweeps a manager and verifies every structural
invariant the algorithms assume:

* **ordering** — levels strictly increase along every arc toward the
  terminals;
* **reduction** — no redundant nodes (``lo is hi``);
* **unique-table consistency** — each node sits in the subtable of its
  own level under the key matching its child fields, and no two nodes
  share a ``(level, hi, lo)`` triple (hash-consing canonicity);
* **dangling arcs** — every child of a table node is a terminal of this
  manager or itself present in its subtable;
* **computed-table hygiene** — every cached entry references only live
  nodes, carries a registered op tag
  (:data:`~repro.bdd.computed.REGISTERED_OPS`), and holds a completed
  result (never ``None`` — kernels must not leave in-progress markers
  behind, in particular not across a governor abort);
* **bookkeeping** — the node counter matches the subtables, every live
  GC root is present, and no node's structural reference count is
  below a fresh parent-arc recount.

Diagnostics are precise (level, repr, counts) so a mutation test — or a
real regression — pins the corruption to the check that caught it.

Set ``REPRO_SANITIZE=1`` to arm the sanitizer at runtime: every
garbage collection verifies the surviving graph, and every
``REPRO_SANITIZE_STRIDE``-th GC safe point (default 50) verifies
managers up to ``REPRO_SANITIZE_LIMIT`` nodes (default 5000) — full
sweeps at every safe point, or on big managers, would dominate the
run.  :class:`SanitizerError` carries the full diagnostic list.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator

from .computed import REGISTERED_OPS
from .node import Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .manager import Manager

#: Safe-point sweeps are skipped above this many live nodes unless
#: REPRO_SANITIZE_LIMIT overrides it.
DEFAULT_NODE_LIMIT = 5000

#: Safe points between armed sweeps unless REPRO_SANITIZE_STRIDE
#: overrides it (1 = sweep at every safe point).
DEFAULT_STRIDE = 50


@dataclass(frozen=True)
class Diagnostic:
    """One invariant violation found by the sanitizer."""

    #: machine-readable check name, e.g. ``"order"`` or ``"duplicate"``
    check: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.message}"


class SanitizerError(AssertionError):
    """Raised by ``debug_check`` when the graph is corrupt."""

    def __init__(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics = diagnostics
        lines = "\n".join(f"  {d}" for d in diagnostics)
        super().__init__(
            f"manager failed debug_check with "
            f"{len(diagnostics)} diagnostic(s):\n{lines}")


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests auto-armed checking."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


def sanitize_node_limit() -> int:
    """Node bound for safe-point sweeps (``REPRO_SANITIZE_LIMIT``)."""
    try:
        return int(os.environ["REPRO_SANITIZE_LIMIT"])
    except (KeyError, ValueError):
        return DEFAULT_NODE_LIMIT


def sanitize_stride() -> int:
    """Safe points between armed sweeps (``REPRO_SANITIZE_STRIDE``).

    1 sweeps at every safe point (maximum precision, maximum cost);
    the default trades detection latency of a few dozen operations for
    an overhead small enough to run the whole suite sanitized.
    """
    try:
        return max(1, int(os.environ["REPRO_SANITIZE_STRIDE"]))
    except (KeyError, ValueError):
        return DEFAULT_STRIDE


def _iter_nodes_in(value: Any) -> Iterator[Node]:
    """Every Node buried in a (possibly nested) cache key or result."""
    stack = [value]
    while stack:
        item = stack.pop()
        if isinstance(item, Node):
            yield item
        elif isinstance(item, (tuple, list, frozenset, set)):
            stack.extend(item)
        elif isinstance(item, dict):
            stack.extend(item.keys())
            stack.extend(item.values())


def _describe(node: object) -> str:
    if not isinstance(node, Node):
        # A corrupt table can hold anything; describe, don't crash.
        return f"non-node {node!r}"
    if node.is_terminal:
        return f"terminal {node.value}"
    return f"node@{id(node):#x} L{node.level}"


def check_manager(manager: "Manager",
                  check_cache: bool = True) -> list[Diagnostic]:
    """Run every invariant check; returns the diagnostics (empty: ok)."""
    out: list[Diagnostic] = []
    report = out.append
    zero, one = manager.zero_node, manager.one_node
    subtables = manager._subtables
    num_levels = len(subtables)

    # -- terminals -----------------------------------------------------
    for terminal, value in ((zero, 0), (one, 1)):
        if terminal.value != value or terminal.hi is not None \
                or terminal.lo is not None:
            report(Diagnostic(
                "terminal",
                f"terminal {value} corrupted: value={terminal.value!r} "
                f"hi={terminal.hi!r} lo={terminal.lo!r}"))

    def is_live(node: Node) -> bool:
        """A terminal of this manager, or present in its subtable."""
        if node is zero or node is one:
            return True
        if node.is_terminal or not 0 <= node.level < num_levels:
            return False
        return subtables[node.level].get((node.hi, node.lo)) is node

    # -- unique table --------------------------------------------------
    count = 0
    triples: dict[tuple[int, int, int], Node] = {}
    arcs: dict[Node, int] = {}
    for level, subtable in enumerate(subtables):
        for (key_hi, key_lo), node in subtable.items():
            count += 1
            where = _describe(node)
            if node.is_terminal:
                report(Diagnostic(
                    "table", f"{where} at level {level}: terminal "
                    f"stored in the unique table"))
                continue
            if node.level != level:
                report(Diagnostic(
                    "level-sync",
                    f"{where} stored in subtable {level} but carries "
                    f"level {node.level}"))
            if node.hi is not key_hi or node.lo is not key_lo:
                report(Diagnostic(
                    "key-sync",
                    f"{where}: children ({_describe(node.hi)}, "
                    f"{_describe(node.lo)}) disagree with its "
                    f"unique-table key ({_describe(key_hi)}, "
                    f"{_describe(key_lo)})"))
            if node.hi is node.lo:
                report(Diagnostic(
                    "redundant",
                    f"{where}: hi and lo are the same node "
                    f"({_describe(node.hi)}); redundant nodes must be "
                    f"collapsed by reduction"))
            for label, child in (("hi", node.hi), ("lo", node.lo)):
                if child is None:
                    report(Diagnostic(
                        "dangling",
                        f"{where}: {label} child is None"))
                    continue
                if not child.is_terminal and child.level <= node.level:
                    report(Diagnostic(
                        "order",
                        f"{where}: {label} child {_describe(child)} "
                        f"does not lie strictly below level "
                        f"{node.level}"))
                if not is_live(child):
                    report(Diagnostic(
                        "dangling",
                        f"{where}: {label} child {_describe(child)} "
                        f"is not in the unique table"))
                arcs[child] = arcs.get(child, 0) + 1
            triple = (node.level, id(node.hi), id(node.lo))
            other = triples.get(triple)
            if other is not None and other is not node:
                report(Diagnostic(
                    "duplicate",
                    f"duplicate (level, hi, lo) triple at level "
                    f"{node.level}: {where} duplicates "
                    f"{_describe(other)} — hash-consing is broken"))
            else:
                triples[triple] = node

    # -- node accounting ----------------------------------------------
    if count != manager._num_nodes:
        report(Diagnostic(
            "count",
            f"unique table holds {count} nodes but the manager "
            f"counter says {manager._num_nodes}"))

    # -- reference counts ----------------------------------------------
    # Structural refs only ever exceed the fresh parent-arc recount
    # (external Function roots are added on top at GC time), so a ref
    # below the recount means a decrement was lost or misapplied.
    for subtable in subtables:
        for node in subtable.values():
            expected = arcs.get(node, 0)
            if node.ref < expected:
                report(Diagnostic(
                    "refcount",
                    f"{_describe(node)}: ref={node.ref} below its "
                    f"{expected} parent arc(s)"))

    # -- root tracking vs. a fresh reachability sweep -------------------
    reachable: set[int] = set()
    stack = list(manager.live_roots())
    for root in stack:
        if not is_live(root):
            report(Diagnostic(
                "root",
                f"live Function root {_describe(root)} is not in the "
                f"unique table — GC root tracking is out of sync"))
    while stack:
        node = stack.pop()
        if node.is_terminal or id(node) in reachable:
            continue
        reachable.add(id(node))
        if node.hi is not None:
            stack.append(node.hi)
        if node.lo is not None:
            stack.append(node.lo)
    if len(reachable) > count:
        report(Diagnostic(
            "root",
            f"reachability sweep found {len(reachable)} internal "
            f"nodes but the unique table holds only {count}"))

    # -- computed table ------------------------------------------------
    if check_cache:
        for op, key, result in manager.computed.entries():
            if result is None:
                # lookup() signals a miss with None, so a None result is
                # unreachable garbage — and the signature of a kernel
                # that parked an in-progress marker and aborted.
                report(Diagnostic(
                    "cache-incomplete",
                    f"computed-table entry for op {op!r} key {key!r} "
                    f"holds None instead of a completed result"))
            if op != "?" and op not in REGISTERED_OPS:
                report(Diagnostic(
                    "cache-op",
                    f"computed-table entry {key!r} uses unregistered "
                    f"op tag {op!r}"))
            for node in _iter_nodes_in((key, result)):
                if not is_live(node):
                    report(Diagnostic(
                        "cache-dangling",
                        f"computed-table entry for op {op!r} "
                        f"references {_describe(node)} which is not "
                        f"in the unique table"))
                    break
    return out
