"""Function handles: the user-facing face of a BDD.

A :class:`Function` pairs a manager with a root *handle* in the
manager's node store and registers itself as a garbage-collection root.
It overloads the Python boolean operators, so formulas read naturally::

    f = (a & b) | ~c
    g = f ^ a

Handles referring to the same manager compare equal iff their root
handles are equal — which, by canonicity, means the functions are
equal.  The root handle's concrete type is backend-defined (a ``Node``
object on the object store, an ``int`` id on the array store); code
below never touches node fields directly, only the store's accessors.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Any

from .manager import Manager


class Function:
    """A boolean function represented by a BDD root in a manager."""

    __slots__ = ("manager", "node", "__weakref__")

    def __init__(self, manager: Manager, node: Any) -> None:
        self.manager = manager
        self.node = node
        manager.register(self)

    # ------------------------------------------------------------------
    # Identity and predicates
    # ------------------------------------------------------------------

    @property
    def handle(self) -> Any:
        """The root handle in the manager's node store (internal API).

        Preferred, backend-neutral spelling of :attr:`node`; inspect it
        through ``function.manager.store``'s accessors.
        """
        return self.node

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Function):
            return NotImplemented
        return self.manager is other.manager and self.node == other.node

    def __ne__(self, other: object) -> bool:
        eq = self.__eq__(other)
        return NotImplemented if eq is NotImplemented else not eq

    def __hash__(self) -> int:
        return hash((id(self.manager),
                     self.manager.store.key_of(self.node)))

    @property
    def is_true(self) -> bool:
        """True iff this is the constant TRUE."""
        return self.node == self.manager.store.one

    @property
    def is_false(self) -> bool:
        """True iff this is the constant FALSE."""
        return self.node == self.manager.store.zero

    @property
    def is_constant(self) -> bool:
        """True iff this is TRUE or FALSE."""
        return self.manager.store.is_terminal(self.node)

    @property
    def var(self) -> str:
        """Name of the top variable (raises on constants)."""
        if self.is_constant:
            raise ValueError("constant function has no top variable")
        return self.manager.var_at_level(
            self.manager.store.level_of(self.node))

    @property
    def level(self) -> int:
        """Level of the top variable (terminal level for constants)."""
        return self.manager.store.level_of(self.node)

    # ------------------------------------------------------------------
    # Boolean connectives
    # ------------------------------------------------------------------

    def _wrap(self, node: Any) -> "Function":
        return Function(self.manager, node)

    def _coerce(self, other: "Function | bool") -> "Function":
        if isinstance(other, bool):
            return self.manager.true if other else self.manager.false
        if not isinstance(other, Function):
            raise TypeError(f"cannot combine BDD with {type(other)!r}")
        if other.manager is not self.manager:
            raise ValueError("operands belong to different managers")
        return other

    def __invert__(self) -> "Function":
        from .operations import not_node

        self.manager.safe_point()
        return self._wrap(not_node(self.manager, self.node))

    def __and__(self, other: "Function | bool") -> "Function":
        from .operations import apply_node

        other = self._coerce(other)
        self.manager.safe_point()
        return self._wrap(apply_node(self.manager, "and",
                                     self.node, other.node))

    __rand__ = __and__

    def __or__(self, other: "Function | bool") -> "Function":
        from .operations import apply_node

        other = self._coerce(other)
        self.manager.safe_point()
        return self._wrap(apply_node(self.manager, "or",
                                     self.node, other.node))

    __ror__ = __or__

    def __xor__(self, other: "Function | bool") -> "Function":
        from .operations import apply_node

        other = self._coerce(other)
        self.manager.safe_point()
        return self._wrap(apply_node(self.manager, "xor",
                                     self.node, other.node))

    __rxor__ = __xor__

    def __sub__(self, other: "Function | bool") -> "Function":
        """Set difference: ``self & ~other``."""
        from .operations import apply_node

        other = self._coerce(other)
        self.manager.safe_point()
        return self._wrap(apply_node(self.manager, "diff",
                                     self.node, other.node))

    def implies(self, other: "Function | bool") -> "Function":
        """Logical implication ``self -> other``."""
        from .operations import apply_node

        other = self._coerce(other)
        self.manager.safe_point()
        return self._wrap(apply_node(self.manager, "imp",
                                     self.node, other.node))

    def equiv(self, other: "Function | bool") -> "Function":
        """Logical equivalence ``self <-> other``."""
        from .operations import apply_node

        other = self._coerce(other)
        self.manager.safe_point()
        return self._wrap(apply_node(self.manager, "xnor",
                                     self.node, other.node))

    def ite(self, g: "Function", h: "Function") -> "Function":
        """``self·g + self'·h``."""
        from .operations import ite_node

        g = self._coerce(g)
        h = self._coerce(h)
        self.manager.safe_point()
        return self._wrap(ite_node(self.manager, self.node, g.node, h.node))

    # ------------------------------------------------------------------
    # Containment
    # ------------------------------------------------------------------

    def __le__(self, other: "Function | bool") -> bool:
        """Implication test: every minterm of self is in other."""
        from .operations import leq_node

        other = self._coerce(other)
        self.manager.safe_point()
        return leq_node(self.manager, self.node, other.node)

    def __ge__(self, other: "Function | bool") -> bool:
        other = self._coerce(other)
        return other.__le__(self)

    def __lt__(self, other: "Function | bool") -> bool:
        other = self._coerce(other)
        return self != other and self.__le__(other)

    def __gt__(self, other: "Function | bool") -> bool:
        other = self._coerce(other)
        return other.__lt__(self)

    # ------------------------------------------------------------------
    # Structure and evaluation
    # ------------------------------------------------------------------

    @property
    def hi(self) -> "Function":
        """Positive cofactor with respect to the top variable."""
        if self.is_constant:
            return self
        return self._wrap(self.manager.store.hi_of(self.node))

    @property
    def lo(self) -> "Function":
        """Negative cofactor with respect to the top variable."""
        if self.is_constant:
            return self
        return self._wrap(self.manager.store.lo_of(self.node))

    def cofactor(self, assignment: dict[str, bool]) -> "Function":
        """Restrict variables to constants."""
        from .operations import cofactor_node

        self.manager.safe_point()
        levels = {self.manager.level_of_var(n): v
                  for n, v in assignment.items()}
        return self._wrap(cofactor_node(self.manager, self.node, levels))

    def compose(self, substitution: "dict[str, Function]") -> "Function":
        """Simultaneously substitute functions for variables."""
        from .operations import vector_compose_node

        self.manager.safe_point()
        levels = {self.manager.level_of_var(n): g.node
                  for n, g in substitution.items()}
        return self._wrap(vector_compose_node(self.manager, self.node,
                                              levels))

    def rename(self, mapping: dict[str, str]) -> "Function":
        """Substitute variables for variables (must not collide)."""
        substitution = {old: self.manager.var(new)
                        for old, new in mapping.items()}
        return self.compose(substitution)

    def swap_variables(self, pairs: dict[str, str]) -> "Function":
        """Exchange variable pairs simultaneously (x<->y renaming).

        Unlike :meth:`rename`, which maps old names to new ones one-way
        (and rejects collisions implicitly), this swaps both directions
        — the operation used to move a set between present- and
        next-state variables.
        """
        substitution: dict[str, Function] = {}
        for a, b in pairs.items():
            substitution[a] = self.manager.var(b)
            substitution[b] = self.manager.var(a)
        return self.compose(substitution)

    def essential_variables(self) -> dict[str, bool]:
        """Variables with a forced polarity: x is essential-positive
        when f implies x (and dually).  Useful for preprocessing care
        sets."""
        out: dict[str, bool] = {}
        if self.is_false:
            return out
        for name in self.support():
            if self.cofactor({name: False}).is_false:
                out[name] = True
            elif self.cofactor({name: True}).is_false:
                out[name] = False
        return out

    def __call__(self, **assignment: bool) -> bool:
        """Evaluate under a (complete-on-support) assignment."""
        store = self.manager.store
        is_term = store.is_terminal
        level_of = store.level_of
        hi_of, lo_of = store.hi_of, store.lo_of
        node = self.node
        levels = {self.manager.level_of_var(n): v
                  for n, v in assignment.items()}
        while not is_term(node):
            try:
                value = levels[level_of(node)]
            except KeyError:
                name = self.manager.var_at_level(level_of(node))
                raise ValueError(f"assignment misses variable {name!r}")
            node = hi_of(node) if value else lo_of(node)
        return bool(store.value_of(node))

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------

    def exists(self, names: Iterable[str]) -> "Function":
        """Existential quantification over the named variables."""
        from .quantify import exists_node

        self.manager.safe_point()
        levels = frozenset(self.manager.level_of_var(n) for n in names)
        return self._wrap(exists_node(self.manager, self.node, levels))

    def forall(self, names: Iterable[str]) -> "Function":
        """Universal quantification over the named variables."""
        from .quantify import forall_node

        self.manager.safe_point()
        levels = frozenset(self.manager.level_of_var(n) for n in names)
        return self._wrap(forall_node(self.manager, self.node, levels))

    def and_exists(self, other: "Function",
                   names: Iterable[str]) -> "Function":
        """Relational product: ``exists names . self & other``."""
        from .quantify import and_exists_node

        other = self._coerce(other)
        self.manager.safe_point()
        levels = frozenset(self.manager.level_of_var(n) for n in names)
        return self._wrap(and_exists_node(self.manager, self.node,
                                          other.node, levels))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        """Number of internal nodes in this BDD (``|f|`` in the paper).

        Memoized per root by the manager (see
        :meth:`~repro.bdd.manager.Manager.node_size`).
        """
        return self.manager.node_size(self.node)

    def support(self) -> set[str]:
        """Set of variables the function depends on (memoized per root)."""
        return {self.manager.var_at_level(l)
                for l in self.manager.node_support_levels(self.node)}

    def sat_count(self, nvars: int | None = None) -> int:
        """Number of minterms (``||f||``) over ``nvars`` variables."""
        from .counting import sat_count

        return sat_count(self, nvars)

    def density(self, nvars: int | None = None) -> float:
        """Minterms per node — the paper's delta(f)."""
        from .counting import density

        return density(self, nvars)

    def pick_one(self) -> dict[str, bool] | None:
        """Some satisfying assignment over the support, or None."""
        store = self.manager.store
        zero = store.zero
        is_term = store.is_terminal
        level_of = store.level_of
        hi_of, lo_of = store.hi_of, store.lo_of
        node = self.node
        if node == zero:
            return None
        out: dict[str, bool] = {}
        while not is_term(node):
            name = self.manager.var_at_level(level_of(node))
            hi = hi_of(node)
            if hi != zero:
                out[name] = True
                node = hi
            else:
                out[name] = False
                node = lo_of(node)
        return out

    def iter_minterms(self, names: Iterable[str] | None = None
                      ) -> Iterator[dict[str, bool]]:
        """Iterate all satisfying assignments over ``names``.

        Defaults to the support of the function.  Exponential: use only
        on small functions (tests, examples).
        """
        manager = self.manager
        store = manager.store
        zero, one = store.zero, store.one
        level_of = store.level_of
        hi_of, lo_of = store.hi_of, store.lo_of
        if names is None:
            names = sorted(self.support(), key=manager.level_of_var)
        else:
            names = list(names)
        levels = [manager.level_of_var(n) for n in names]
        order = sorted(range(len(names)), key=lambda i: levels[i])
        total = len(order)

        root = self.node
        if root == zero:
            return
        if total == 0:
            if root != one:
                raise ValueError(
                    "function depends on variables outside names")
            yield {}
            return
        partial: dict[str, bool] = {}
        # One frame per assigned variable on the current path; each
        # frame owns the iterator over its variable's polarities and
        # the corresponding ``partial`` entry.
        stack = [(root, 0, iter((False, True)))]
        while stack:
            node, idx, polarities = stack[-1]
            pos = order[idx]
            name, level = names[pos], levels[pos]
            try:
                value = next(polarities)
            except StopIteration:
                stack.pop()
                partial.pop(name, None)
                continue
            if not store.is_terminal(node) and level_of(node) == level:
                child = hi_of(node) if value else lo_of(node)
            else:
                child = node
            partial[name] = value
            if child == zero:
                continue
            if idx + 1 == total:
                if child != one:
                    raise ValueError(
                        "function depends on variables outside names")
                yield dict(partial)
                continue
            stack.append((child, idx + 1, iter((False, True))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_true:
            return "<Function TRUE>"
        if self.is_false:
            return "<Function FALSE>"
        return f"<Function top={self.var!r} nodes={len(self)}>"
