"""Higher-level operations: n-ary combiners, variable permutation.

The n-ary conjoin/disjoin use balanced (smallest-first) combination —
the standard trick for keeping intermediate BDDs small when conjoining
many partitions (transition relations, McMillan factors).
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Iterable

from .function import Function
from .manager import Manager


def conjoin_all(manager: Manager,
                functions: Iterable[Function]) -> Function:
    """AND of many functions, combining the two smallest first."""
    return _combine(manager, functions, "and", manager.true)


def disjoin_all(manager: Manager,
                functions: Iterable[Function]) -> Function:
    """OR of many functions, combining the two smallest first."""
    return _combine(manager, functions, "or", manager.false)


def _combine(manager: Manager, functions: Iterable[Function], op: str,
             neutral: Function) -> Function:
    counter = itertools.count()
    heap: list[tuple[int, int, Function]] = []
    for function in functions:
        if function.manager is not manager:
            raise ValueError("operands belong to different managers")
        heapq.heappush(heap, (len(function), next(counter), function))
    if not heap:
        return neutral
    while len(heap) > 1:
        _, _, a = heapq.heappop(heap)
        _, _, b = heapq.heappop(heap)
        combined = manager.apply(op, a, b)
        heapq.heappush(heap, (len(combined), next(counter), combined))
    return heap[0][2]


def swap_variables(function: Function, pairs: dict[str, str]
                   ) -> Function:
    """Exchange variable pairs simultaneously (x<->y renaming).

    Unlike :meth:`Function.rename`, which maps old names to new ones
    one-way (and rejects collisions implicitly), this swaps both
    directions — the operation used to move a set between present- and
    next-state variables.
    """
    manager = function.manager
    substitution = {}
    for a, b in pairs.items():
        substitution[a] = manager.var(b)
        substitution[b] = manager.var(a)
    return function.compose(substitution)


def essential_variables(function: Function) -> dict[str, bool]:
    """Variables with a forced polarity: x is essential-positive when
    f implies x (and dually).  Useful for preprocessing care sets."""
    out: dict[str, bool] = {}
    if function.is_false:
        return out
    for name in function.support():
        if function.cofactor({name: False}).is_false:
            out[name] = True
        elif function.cofactor({name: True}).is_false:
            out[name] = False
    return out
