"""Higher-level operations: n-ary combiners, variable permutation.

The n-ary combiners live on the manager (:meth:`Manager.conjoin`,
:meth:`Manager.disjoin`); the module-level functions remain as thin
aliases for existing call sites.
"""

from __future__ import annotations

from collections.abc import Iterable

from .function import Function
from .manager import Manager


def conjoin_all(manager: Manager,
                functions: Iterable[Function]) -> Function:
    """AND of many functions; alias of :meth:`Manager.conjoin`."""
    return manager.conjoin(functions)


def disjoin_all(manager: Manager,
                functions: Iterable[Function]) -> Function:
    """OR of many functions; alias of :meth:`Manager.disjoin`."""
    return manager.disjoin(functions)


def swap_variables(function: Function, pairs: dict[str, str]
                   ) -> Function:
    """Exchange variable pairs simultaneously (x<->y renaming).

    Unlike :meth:`Function.rename`, which maps old names to new ones
    one-way (and rejects collisions implicitly), this swaps both
    directions — the operation used to move a set between present- and
    next-state variables.
    """
    manager = function.manager
    substitution = {}
    for a, b in pairs.items():
        substitution[a] = manager.var(b)
        substitution[b] = manager.var(a)
    return function.compose(substitution)


def essential_variables(function: Function) -> dict[str, bool]:
    """Variables with a forced polarity: x is essential-positive when
    f implies x (and dually).  Useful for preprocessing care sets."""
    out: dict[str, bool] = {}
    if function.is_false:
        return out
    for name in function.support():
        if function.cofactor({name: False}).is_false:
            out[name] = True
        elif function.cofactor({name: True}).is_false:
            out[name] = False
    return out
