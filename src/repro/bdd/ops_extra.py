"""Deprecated shim module: these operations moved into the core API.

``conjoin_all``/``disjoin_all`` live on the manager
(:meth:`~repro.bdd.manager.Manager.conjoin`,
:meth:`~repro.bdd.manager.Manager.disjoin`); ``swap_variables`` and
``essential_variables`` are :class:`~repro.bdd.function.Function`
methods now.  The module-level functions remain as thin aliases for
one release and emit :class:`DeprecationWarning`; new code should call
the methods directly.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable

from .function import Function
from .manager import Manager


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"repro.bdd.ops_extra.{old} is deprecated; use {new} instead",
        DeprecationWarning, stacklevel=3)


def conjoin_all(manager: Manager,
                functions: Iterable[Function]) -> Function:
    """Deprecated alias of :meth:`Manager.conjoin`."""
    _deprecated("conjoin_all", "Manager.conjoin")
    return manager.conjoin(functions)


def disjoin_all(manager: Manager,
                functions: Iterable[Function]) -> Function:
    """Deprecated alias of :meth:`Manager.disjoin`."""
    _deprecated("disjoin_all", "Manager.disjoin")
    return manager.disjoin(functions)


def swap_variables(function: Function, pairs: dict[str, str]
                   ) -> Function:
    """Deprecated alias of :meth:`Function.swap_variables`."""
    _deprecated("swap_variables", "Function.swap_variables")
    return function.swap_variables(pairs)


def essential_variables(function: Function) -> dict[str, bool]:
    """Deprecated alias of :meth:`Function.essential_variables`."""
    _deprecated("essential_variables", "Function.essential_variables")
    return function.essential_variables()
