"""Generalized cofactors: *constrain* (Coudert–Madre) and *restrict*.

``restrict(f, c)`` returns a function that agrees with ``f`` wherever the
care set ``c`` holds, choosing values off the care set to shrink the BDD.
Its basic optimization is the *remapping* step of Figure 1 of the paper:
when one child of the care set is empty, the corresponding child of ``f``
is replaced by the sibling, which both removes the child's exclusive
nodes and makes the parent node redundant.

``constrain(f, c)`` is the original generalized cofactor: it has the
stronger algebraic property ``constrain(f, c) = f`` on ``c`` *minterm by
minterm via the closest-assignment map*, which makes it useful for
decomposition (it satisfies ``c & constrain(f, c) == c & f`` and, unlike
restrict, ``exists . constrain`` laws), but it may *grow* the BDD because
it can pull variables not in the support of ``f`` into the result.
"""

from __future__ import annotations

from .manager import Manager
from .node import Node
from .operations import cofactors_at, top_level
from .quantify import exists_node


def constrain_node(manager: Manager, f: Node, c: Node) -> Node:
    """Coudert–Madre generalized cofactor ``f || c``."""
    one, zero = manager.one_node, manager.zero_node
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert

    def rec(f: Node, c: Node) -> Node:
        if c is zero:
            # The care set is empty: the result is arbitrary; return f to
            # keep the recursion total (callers never use this branch's
            # value on the care set, which is empty).
            return f
        if f is c:
            # The function and the care set coincide: on the care set
            # the value is 1, and off it the value is free.
            return one
        if c is one or f.is_terminal:
            return f
        key = ("constrain", f, c)
        cached = cache_get("constrain", key)
        if cached is not None:
            return cached
        level = top_level(f, c)
        f_hi, f_lo = cofactors_at(f, level)
        c_hi, c_lo = cofactors_at(c, level)
        if c_hi is zero:
            result = rec(f_lo, c_lo)
        elif c_lo is zero:
            result = rec(f_hi, c_hi)
        else:
            result = manager.mk(level, rec(f_hi, c_hi), rec(f_lo, c_lo))
        cache_put("constrain", key, result)
        return result

    return rec(f, c)


def restrict_node(manager: Manager, f: Node, c: Node) -> Node:
    """Coudert–Madre restrict ``f ⇓ c`` (the "remapping" minimizer).

    Unlike constrain, when the care set splits on a variable that ``f``
    does not test, the two care branches are merged (``c_hi | c_lo``)
    instead of splitting ``f`` — so the result's support is contained in
    the support of ``f`` and the result is usually no larger.
    """
    one, zero = manager.one_node, manager.zero_node
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert

    def rec(f: Node, c: Node) -> Node:
        if c is zero:
            return f
        if f is c:
            return one
        if c is one or f.is_terminal:
            return f
        key = ("restrict", f, c)
        cached = cache_get("restrict", key)
        if cached is not None:
            return cached
        if c.level < f.level:
            # f does not depend on the top variable of c: merge branches.
            merged = exists_node(manager, c, frozenset({c.level}))
            result = rec(f, merged)
        else:
            level = f.level
            f_hi, f_lo = f.hi, f.lo
            c_hi, c_lo = cofactors_at(c, level)
            if c_hi is zero:
                # Remapping step (Figure 1): the then-branch is don't
                # care, replace the whole node by the else cofactor.
                result = rec(f_lo, c_lo)
            elif c_lo is zero:
                result = rec(f_hi, c_hi)
            else:
                result = manager.mk(level, rec(f_hi, c_hi),
                                    rec(f_lo, c_lo))
        cache_put("restrict", key, result)
        return result

    return rec(f, c)


def constrain(f, c):
    """Function-level constrain; see :func:`constrain_node`."""
    from .function import Function

    if f.manager is not c.manager:
        raise ValueError("operands belong to different managers")
    f.manager.safe_point()
    return Function(f.manager, constrain_node(f.manager, f.node, c.node))


def restrict(f, c):
    """Function-level restrict; see :func:`restrict_node`."""
    from .function import Function

    if f.manager is not c.manager:
        raise ValueError("operands belong to different managers")
    f.manager.safe_point()
    return Function(f.manager, restrict_node(f.manager, f.node, c.node))
