"""Generalized cofactors: *constrain* (Coudert–Madre) and *restrict*.

``restrict(f, c)`` returns a function that agrees with ``f`` wherever the
care set ``c`` holds, choosing values off the care set to shrink the BDD.
Its basic optimization is the *remapping* step of Figure 1 of the paper:
when one child of the care set is empty, the corresponding child of ``f``
is replaced by the sibling, which both removes the child's exclusive
nodes and makes the parent node redundant.

``constrain(f, c)`` is the original generalized cofactor: it has the
stronger algebraic property ``constrain(f, c) = f`` on ``c`` *minterm by
minterm via the closest-assignment map*, which makes it useful for
decomposition (it satisfies ``c & constrain(f, c) == c & f`` and, unlike
restrict, ``exists . constrain`` laws), but it may *grow* the BDD because
it can pull variables not in the support of ``f`` into the result.

Both traversals run on explicit stacks (docs/algorithms.md, "Iterative
kernels") and are generic over the node-store backend — handles go
through the store's accessor callables and compare with ``==``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from .governor import CHECK_STRIDE
from .manager import Manager
from .quantify import exists_node

# Strided-checkpoint mask (see repro.bdd.operations).
_MASK = CHECK_STRIDE - 1

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .function import Function

# Frame tags of the explicit-stack traversals (same scheme as
# repro.bdd.operations).
_EXPAND, _REBUILD, _FORWARD = 0, 1, 2


def constrain_node(manager: Manager, f: Any, c: Any) -> Any:
    """Coudert–Madre generalized cofactor ``f || c``."""
    store = manager.store
    one, zero = store.one, store.zero
    level_of, hi_of, lo_of = store.level_of, store.hi_of, store.lo_of
    is_term = store.is_terminal
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    mk = store.mk
    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f, c)]
    push = stack.append
    values: list[Any] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("constrain")
        frame = stack.pop()
        tag = frame[0]
        if tag == _EXPAND:
            f, c = frame[1], frame[2]
            if c == zero:
                # The care set is empty: the result is arbitrary; return
                # f to keep the walk total (callers never use this
                # branch's value on the care set, which is empty).
                emit(f)
                continue
            if f == c:
                # The function and the care set coincide: on the care
                # set the value is 1, and off it the value is free.
                emit(one)
                continue
            if c == one or is_term(f):
                emit(f)
                continue
            key = ("constrain", f, c)
            cached = cache_get("constrain", key)
            if cached is not None:
                emit(cached)
                continue
            f_level, c_level = level_of(f), level_of(c)
            level = f_level if f_level < c_level else c_level
            f_hi, f_lo = (hi_of(f), lo_of(f)) if f_level == level \
                else (f, f)
            c_hi, c_lo = (hi_of(c), lo_of(c)) if c_level == level \
                else (c, c)
            if c_hi == zero:
                push((_FORWARD, key))
                push((_EXPAND, f_lo, c_lo))
            elif c_lo == zero:
                push((_FORWARD, key))
                push((_EXPAND, f_hi, c_hi))
            else:
                push((_REBUILD, key, level))
                push((_EXPAND, f_lo, c_lo))
                push((_EXPAND, f_hi, c_hi))
        elif tag == _REBUILD:
            lo = values.pop()
            hi = values.pop()
            result = mk(frame[2], hi, lo)
            cache_put("constrain", frame[1], result)
            emit(result)
        else:  # _FORWARD: one-branch descent, memoized under our key
            cache_put("constrain", frame[1], values[-1])
    return values[0]


def restrict_node(manager: Manager, f: Any, c: Any) -> Any:
    """Coudert–Madre restrict ``f ⇓ c`` (the "remapping" minimizer).

    Unlike constrain, when the care set splits on a variable that ``f``
    does not test, the two care branches are merged (``c_hi | c_lo``)
    instead of splitting ``f`` — so the result's support is contained in
    the support of ``f`` and the result is usually no larger.
    """
    store = manager.store
    one, zero = store.one, store.zero
    level_of, hi_of, lo_of = store.level_of, store.hi_of, store.lo_of
    is_term = store.is_terminal
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    mk = store.mk
    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f, c)]
    push = stack.append
    values: list[Any] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("restrict")
        frame = stack.pop()
        tag = frame[0]
        if tag == _EXPAND:
            f, c = frame[1], frame[2]
            if c == zero:
                emit(f)
                continue
            if f == c:
                emit(one)
                continue
            if c == one or is_term(f):
                emit(f)
                continue
            key = ("restrict", f, c)
            cached = cache_get("restrict", key)
            if cached is not None:
                emit(cached)
                continue
            f_level, c_level = level_of(f), level_of(c)
            if c_level < f_level:
                # f does not depend on the top variable of c: merge the
                # care branches and retry on the merged care set.
                merged = exists_node(manager, c, frozenset({c_level}))
                push((_FORWARD, key))
                push((_EXPAND, f, merged))
                continue
            level = f_level
            f_hi, f_lo = hi_of(f), lo_of(f)
            c_hi, c_lo = (hi_of(c), lo_of(c)) if c_level == level \
                else (c, c)
            if c_hi == zero:
                # Remapping step (Figure 1): the then-branch is don't
                # care, replace the whole node by the else cofactor.
                push((_FORWARD, key))
                push((_EXPAND, f_lo, c_lo))
            elif c_lo == zero:
                push((_FORWARD, key))
                push((_EXPAND, f_hi, c_hi))
            else:
                push((_REBUILD, key, level))
                push((_EXPAND, f_lo, c_lo))
                push((_EXPAND, f_hi, c_hi))
        elif tag == _REBUILD:
            lo = values.pop()
            hi = values.pop()
            result = mk(frame[2], hi, lo)
            cache_put("restrict", frame[1], result)
            emit(result)
        else:  # _FORWARD
            cache_put("restrict", frame[1], values[-1])
    return values[0]


def constrain(f: "Function", c: "Function") -> "Function":
    """Function-level constrain; see :func:`constrain_node`."""
    from .function import Function

    if f.manager is not c.manager:
        raise ValueError("operands belong to different managers")
    f.manager.safe_point()
    return Function(f.manager, constrain_node(f.manager, f.node, c.node))


def restrict(f: "Function", c: "Function") -> "Function":
    """Function-level restrict; see :func:`restrict_node`."""
    from .function import Function

    if f.manager is not c.manager:
        raise ValueError("operands belong to different managers")
    f.manager.safe_point()
    return Function(f.manager, restrict_node(f.manager, f.node, c.node))
