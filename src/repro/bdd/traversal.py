"""Graph traversal helpers over raw BDD nodes.

These are the building blocks of the paper's algorithms: collecting the
node set of a function, counting internal references (the paper's
*functionRef*), and iterating nodes in level order.
"""

from __future__ import annotations

from collections.abc import Iterator

from .node import Node


def collect_nodes(root: Node) -> list[Node]:
    """All internal nodes reachable from ``root`` (excludes terminals)."""
    seen: set[Node] = set()
    out: list[Node] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_terminal or node in seen:
            continue
        seen.add(node)
        out.append(node)
        stack.append(node.hi)
        stack.append(node.lo)
    return out


def collect_node_set(root: Node) -> set[Node]:
    """Set of internal nodes reachable from ``root``."""
    return set(collect_nodes(root))


def support_levels(root: Node) -> set[int]:
    """Levels of the variables the function depends on."""
    return {node.level for node in collect_nodes(root)}


def function_refs(root: Node) -> dict[Node, int]:
    """Number of arcs into each node from *within* the function.

    This is the paper's *functionRef*: for every node reachable from
    ``root`` (terminals included), the count of parent arcs among the
    reachable internal nodes.  The root itself gets 0 internal arcs.
    """
    refs: dict[Node, int] = {root: 0}
    for node in collect_nodes(root):
        for child in (node.hi, node.lo):
            refs[child] = refs.get(child, 0) + 1
    return refs


def nodes_by_level(root: Node) -> list[Node]:
    """Reachable internal nodes sorted by level (a topological order).

    Arcs always point from a smaller to a strictly larger level, so level
    order is topological for the rooted DAG.
    """
    return sorted(collect_nodes(root), key=lambda n: n.level)


def iter_paths(root: Node, manager) -> Iterator[tuple[dict[int, bool], int]]:
    """Iterate (partial level assignment, terminal value) per BDD path.

    Exponential in general; used in tests and on small examples only.
    """
    path: dict[int, bool] = {}

    def rec(node: Node) -> Iterator[tuple[dict[int, bool], int]]:
        if node.is_terminal:
            yield dict(path), node.value
            return
        for value, child in ((True, node.hi), (False, node.lo)):
            path[node.level] = value
            yield from rec(child)
            del path[node.level]

    yield from rec(root)
