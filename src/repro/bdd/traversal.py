"""Graph traversal helpers over raw BDD nodes.

These are the building blocks of the paper's algorithms: collecting the
node set of a function, counting internal references (the paper's
*functionRef*), and iterating nodes in level order.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from .node import Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .manager import Manager


def collect_nodes(root: Node) -> list[Node]:
    """All internal nodes reachable from ``root`` (excludes terminals)."""
    seen: set[Node] = set()
    out: list[Node] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.is_terminal or node in seen:
            continue
        seen.add(node)
        out.append(node)
        stack.append(node.hi)
        stack.append(node.lo)
    return out


def collect_node_set(root: Node) -> set[Node]:
    """Set of internal nodes reachable from ``root``."""
    return set(collect_nodes(root))


def support_levels(root: Node) -> set[int]:
    """Levels of the variables the function depends on."""
    return {node.level for node in collect_nodes(root)}


def function_refs(root: Node) -> dict[Node, int]:
    """Number of arcs into each node from *within* the function.

    This is the paper's *functionRef*: for every node reachable from
    ``root`` (terminals included), the count of parent arcs among the
    reachable internal nodes.  The root itself gets 0 internal arcs.
    """
    refs: dict[Node, int] = {root: 0}
    for node in collect_nodes(root):
        for child in (node.hi, node.lo):
            refs[child] = refs.get(child, 0) + 1
    return refs


def nodes_by_level(root: Node) -> list[Node]:
    """Reachable internal nodes sorted by level (a topological order).

    Arcs always point from a smaller to a strictly larger level, so level
    order is topological for the rooted DAG.
    """
    return sorted(collect_nodes(root), key=lambda n: n.level)


def iter_paths(root: Node,
               manager: "Manager"
               ) -> Iterator[tuple[dict[int, bool], int]]:
    """Iterate (partial level assignment, terminal value) per BDD path.

    Exponential in general; used in tests and on small examples only.
    The walk keeps its own branch stack, so paths of any depth work at
    the default recursion limit.
    """
    if root.is_terminal:
        yield {}, root.value
        return
    path: dict[int, bool] = {}
    # One frame per internal node on the current path; each frame owns
    # the iterator over its (branch value, child) pairs and the path
    # entry at its level.
    stack = [(root, iter(((True, root.hi), (False, root.lo))))]
    while stack:
        node, branches = stack[-1]
        try:
            value, child = next(branches)
        except StopIteration:
            stack.pop()
            del path[node.level]
            continue
        path[node.level] = value
        if child.is_terminal:
            yield dict(path), child.value
        else:
            stack.append((child,
                          iter(((True, child.hi), (False, child.lo)))))
