"""Graph traversal helpers over raw BDD handles.

These are the building blocks of the paper's algorithms: collecting the
node set of a function, counting internal references (the paper's
*functionRef*), and iterating nodes in level order.

Every function takes the node store as its first argument and works on
opaque handles through the store's accessors — the same code serves the
object and array backends.  Result containers are keyed by handle
(``Node`` objects hash by identity, int ids by value).
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .backend import NodeStore


def collect_nodes(store: "NodeStore", root: Any) -> list[Any]:
    """All internal nodes reachable from ``root`` (excludes terminals)."""
    is_term = store.is_terminal
    hi_of, lo_of = store.hi_of, store.lo_of
    seen: set[Any] = set()
    out: list[Any] = []
    stack = [root]
    while stack:
        node = stack.pop()
        if is_term(node) or node in seen:
            continue
        seen.add(node)
        out.append(node)
        stack.append(hi_of(node))
        stack.append(lo_of(node))
    return out


def collect_node_set(store: "NodeStore", root: Any) -> set[Any]:
    """Set of internal nodes reachable from ``root``."""
    return set(collect_nodes(store, root))


def support_levels(store: "NodeStore", root: Any) -> set[int]:
    """Levels of the variables the function depends on."""
    level_of = store.level_of
    return {level_of(node) for node in collect_nodes(store, root)}


def function_refs(store: "NodeStore", root: Any) -> dict[Any, int]:
    """Number of arcs into each node from *within* the function.

    This is the paper's *functionRef*: for every node reachable from
    ``root`` (terminals included), the count of parent arcs among the
    reachable internal nodes.  The root itself gets 0 internal arcs.
    """
    hi_of, lo_of = store.hi_of, store.lo_of
    refs: dict[Any, int] = {root: 0}
    for node in collect_nodes(store, root):
        for child in (hi_of(node), lo_of(node)):
            refs[child] = refs.get(child, 0) + 1
    return refs


def nodes_by_level(store: "NodeStore", root: Any) -> list[Any]:
    """Reachable internal nodes sorted by level (a topological order).

    Arcs always point from a smaller to a strictly larger level, so level
    order is topological for the rooted DAG.
    """
    return sorted(collect_nodes(store, root), key=store.level_of)


def iter_paths(store: "NodeStore", root: Any
               ) -> Iterator[tuple[dict[int, bool], int]]:
    """Iterate (partial level assignment, terminal value) per BDD path.

    Exponential in general; used in tests and on small examples only.
    The walk keeps its own branch stack, so paths of any depth work at
    the default recursion limit.
    """
    is_term = store.is_terminal
    level_of = store.level_of
    hi_of, lo_of = store.hi_of, store.lo_of
    if is_term(root):
        yield {}, store.value_of(root)
        return
    path: dict[int, bool] = {}
    # One frame per internal node on the current path; each frame owns
    # the iterator over its (branch value, child) pairs and the path
    # entry at its level.
    stack = [(root, iter(((True, hi_of(root)), (False, lo_of(root)))))]
    while stack:
        node, branches = stack[-1]
        try:
            value, child = next(branches)
        except StopIteration:
            stack.pop()
            del path[level_of(node)]
            continue
        path[level_of(node)] = value
        if is_term(child):
            yield dict(path), store.value_of(child)
        else:
            stack.append((child, iter(((True, hi_of(child)),
                                       (False, lo_of(child))))))
