"""Counting and profile analysis: minterms, density, path lengths.

Minterm counts are exact Python integers (the paper's experiments report
counts around 1e45, far beyond doubles).  ``density`` is the paper's
ranking measure  delta(g) = ||g|| / |g|  (Section 2).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from .node import Node
from .traversal import collect_nodes, nodes_by_level

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .function import Function

#: Distance value meaning "no path".
INFINITY = math.inf


def bdd_size(root: Node) -> int:
    """Number of internal nodes — the paper's ``|f|``."""
    return len(collect_nodes(root))


def shared_size(roots: list[Node]) -> int:
    """Number of distinct internal nodes among several functions."""
    seen: set[Node] = set()
    for root in roots:
        seen.update(collect_nodes(root))
    return len(seen)


def minterm_count_map(root: Node, nvars: int) -> dict[Node, int]:
    """Exact minterm count of the function rooted at each node.

    The count at node ``v`` is over the variables at levels
    ``v.level .. nvars-1`` (i.e., ``v`` viewed as a function of the
    variables from its own level down), matching the quantity RUA's
    *analyze* pass records.  Terminals count over zero variables:
    ONE -> 1, ZERO -> 0.
    """
    counts: dict[Node, int] = {}

    def eff_level(node: Node) -> int:
        return nvars if node.is_terminal else node.level

    for node in reversed(nodes_by_level(root)):
        hi, lo = node.hi, node.lo
        hi_count = hi.value if hi.is_terminal else counts[hi]
        lo_count = lo.value if lo.is_terminal else counts[lo]
        counts[node] = (hi_count << (eff_level(hi) - node.level - 1)) \
            + (lo_count << (eff_level(lo) - node.level - 1))
    return counts


def sat_count(function: Function, nvars: int | None = None) -> int:
    """Exact ``||f||`` over ``nvars`` variables (default: all declared)."""
    manager = function.manager
    root = function.node
    if nvars is None:
        nvars = manager.num_vars
    if root.is_terminal:
        return root.value << nvars
    support_max = max(n.level for n in collect_nodes(root))
    if nvars <= support_max:
        raise ValueError(
            f"nvars={nvars} smaller than support (level {support_max})")
    counts = minterm_count_map(root, nvars)
    return counts[root] << root.level


def density(function: Function, nvars: int | None = None) -> float:
    """The paper's delta(f) = ||f|| / |f| (0.0 for constant FALSE).

    Computed in log space so that astronomically large minterm counts do
    not overflow the float conversion.
    """
    size = len(function)
    minterms = sat_count(function, nvars)
    if minterms == 0:
        return 0.0
    if size == 0:  # constant TRUE
        size = 1
    return math.exp(log2int(minterms) * math.log(2.0) - math.log(size))


def log2int(n: int) -> float:
    """Accurate ``log2`` of an arbitrarily large positive integer."""
    if n <= 0:
        raise ValueError("log2 of a non-positive integer")
    bits = n.bit_length()
    if bits <= 53:
        return math.log2(n)
    shift = bits - 53
    return math.log2(n >> shift) + shift


def distance_from_root(root: Node) -> dict[Node, int]:
    """Shortest number of arcs from the root to each reachable node.

    Terminals included.  The root has distance 0.
    """
    dist: dict[Node, int] = {root: 0}
    for node in nodes_by_level(root):
        if node not in dist:
            continue
        d = dist[node] + 1
        for child in (node.hi, node.lo):
            if dist.get(child, INFINITY) > d:
                dist[child] = d
    # nodes_by_level excludes terminals but their distances were set by
    # their parents; the root might itself be terminal.
    return dist


def distance_to_one(root: Node, one: Node) -> dict[Node, float]:
    """Shortest number of arcs from each node to the ONE terminal.

    Nodes with no path to ONE map to :data:`INFINITY`.
    """
    dist: dict[Node, float] = {}

    def get(node: Node) -> float:
        if node is one:
            return 0
        if node.is_terminal:
            return INFINITY
        return dist[node]

    for node in reversed(nodes_by_level(root)):
        dist[node] = 1 + min(get(node.hi), get(node.lo))
    dist[root] = get(root)
    return dist


def height_map(root: Node) -> dict[Node, int]:
    """Longest number of arcs from each node down to a terminal.

    The paper's *Band* decomposition-point selector uses the distance of
    a node from the constants; we use the longest distance, which tracks
    how much function remains below the node.
    """
    heights: dict[Node, int] = {}

    def get(node: Node) -> int:
        return 0 if node.is_terminal else heights[node]

    for node in reversed(nodes_by_level(root)):
        heights[node] = 1 + max(get(node.hi), get(node.lo))
    return heights


def path_count(root: Node) -> int:
    """Number of root-to-terminal paths (both terminals)."""
    if root.is_terminal:
        return 1
    counts: dict[Node, int] = {}

    def get(node: Node) -> int:
        return 1 if node.is_terminal else counts[node]

    for node in reversed(nodes_by_level(root)):
        counts[node] = get(node.hi) + get(node.lo)
    return counts[root]
