"""Counting and profile analysis: minterms, density, path lengths.

Minterm counts are exact Python integers (the paper's experiments report
counts around 1e45, far beyond doubles).  ``density`` is the paper's
ranking measure  delta(g) = ||g|| / |g|  (Section 2).

Node-level functions take the node store first and manipulate opaque
handles; the Function-level entry points (:func:`sat_count`,
:func:`density`) keep their original signatures.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

from .traversal import collect_nodes, nodes_by_level

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .backend import NodeStore
    from .function import Function

#: Distance value meaning "no path".
INFINITY = math.inf


def bdd_size(store: "NodeStore", root: Any) -> int:
    """Number of internal nodes — the paper's ``|f|``."""
    return len(collect_nodes(store, root))


def shared_size(store: "NodeStore", roots: list[Any]) -> int:
    """Number of distinct internal nodes among several functions."""
    seen: set[Any] = set()
    for root in roots:
        seen.update(collect_nodes(store, root))
    return len(seen)


def minterm_count_map(store: "NodeStore", root: Any,
                      nvars: int) -> dict[Any, int]:
    """Exact minterm count of the function rooted at each node.

    The count at node ``v`` is over the variables at levels
    ``v.level .. nvars-1`` (i.e., ``v`` viewed as a function of the
    variables from its own level down), matching the quantity RUA's
    *analyze* pass records.  Terminals count over zero variables:
    ONE -> 1, ZERO -> 0.
    """
    is_term = store.is_terminal
    level_of = store.level_of
    hi_of, lo_of = store.hi_of, store.lo_of
    value_of = store.value_of
    counts: dict[Any, int] = {}

    def eff_level(node: Any) -> int:
        return nvars if is_term(node) else level_of(node)

    for node in reversed(nodes_by_level(store, root)):
        hi, lo = hi_of(node), lo_of(node)
        hi_count = value_of(hi) if is_term(hi) else counts[hi]
        lo_count = value_of(lo) if is_term(lo) else counts[lo]
        level = level_of(node)
        counts[node] = (hi_count << (eff_level(hi) - level - 1)) \
            + (lo_count << (eff_level(lo) - level - 1))
    return counts


def sat_count(function: "Function", nvars: int | None = None) -> int:
    """Exact ``||f||`` over ``nvars`` variables (default: all declared).

    On stores exposing ``sat_count_vector`` (the flat array backend),
    functions spanning a sizeable fraction of the store — a
    traversal's reached set, typically — are counted by vectorized
    column sweeps instead of a per-node Python dict pass; the result
    is identical.  Small functions in a big store keep the per-node
    map, which prices by function size.
    """
    manager = function.manager
    store = manager.store
    root = function.node
    if nvars is None:
        nvars = manager.num_vars
    if store.is_terminal(root):
        return store.value_of(root) << nvars
    level_of = store.level_of
    nodes = collect_nodes(store, root)
    support_max = max(level_of(n) for n in nodes)
    if nvars <= support_max:
        raise ValueError(
            f"nvars={nvars} smaller than support (level {support_max})")
    vector = getattr(store, "sat_count_vector", None)
    if vector is not None and 4 * len(nodes) >= store.num_nodes:
        count = vector(root, nvars)
        if count is not None:
            return count
    counts = minterm_count_map(store, root, nvars)
    return counts[root] << level_of(root)


def density(function: "Function", nvars: int | None = None) -> float:
    """The paper's delta(f) = ||f|| / |f| (0.0 for constant FALSE).

    Computed in log space so that astronomically large minterm counts do
    not overflow the float conversion.
    """
    size = len(function)
    minterms = sat_count(function, nvars)
    if minterms == 0:
        return 0.0
    if size == 0:  # constant TRUE
        size = 1
    return math.exp(log2int(minterms) * math.log(2.0) - math.log(size))


def log2int(n: int) -> float:
    """Accurate ``log2`` of an arbitrarily large positive integer."""
    if n <= 0:
        raise ValueError("log2 of a non-positive integer")
    bits = n.bit_length()
    if bits <= 53:
        return math.log2(n)
    shift = bits - 53
    return math.log2(n >> shift) + shift


def distance_from_root(store: "NodeStore", root: Any) -> dict[Any, int]:
    """Shortest number of arcs from the root to each reachable node.

    Terminals included.  The root has distance 0.
    """
    hi_of, lo_of = store.hi_of, store.lo_of
    dist: dict[Any, int] = {root: 0}
    for node in nodes_by_level(store, root):
        if node not in dist:
            continue
        d = dist[node] + 1
        for child in (hi_of(node), lo_of(node)):
            if dist.get(child, INFINITY) > d:
                dist[child] = d
    # nodes_by_level excludes terminals but their distances were set by
    # their parents; the root might itself be terminal.
    return dist


def distance_to_one(store: "NodeStore", root: Any) -> dict[Any, float]:
    """Shortest number of arcs from each node to the ONE terminal.

    Nodes with no path to ONE map to :data:`INFINITY`.
    """
    one = store.one
    is_term = store.is_terminal
    hi_of, lo_of = store.hi_of, store.lo_of
    dist: dict[Any, float] = {}

    def get(node: Any) -> float:
        if node == one:
            return 0
        if is_term(node):
            return INFINITY
        return dist[node]

    for node in reversed(nodes_by_level(store, root)):
        dist[node] = 1 + min(get(hi_of(node)), get(lo_of(node)))
    dist[root] = get(root)
    return dist


def height_map(store: "NodeStore", root: Any) -> dict[Any, int]:
    """Longest number of arcs from each node down to a terminal.

    The paper's *Band* decomposition-point selector uses the distance of
    a node from the constants; we use the longest distance, which tracks
    how much function remains below the node.
    """
    is_term = store.is_terminal
    hi_of, lo_of = store.hi_of, store.lo_of
    heights: dict[Any, int] = {}

    def get(node: Any) -> int:
        return 0 if is_term(node) else heights[node]

    for node in reversed(nodes_by_level(store, root)):
        heights[node] = 1 + max(get(hi_of(node)), get(lo_of(node)))
    return heights


def path_count(store: "NodeStore", root: Any) -> int:
    """Number of root-to-terminal paths (both terminals)."""
    is_term = store.is_terminal
    hi_of, lo_of = store.hi_of, store.lo_of
    if is_term(root):
        return 1
    counts: dict[Any, int] = {}

    def get(node: Any) -> int:
        return 1 if is_term(node) else counts[node]

    for node in reversed(nodes_by_level(store, root)):
        counts[node] = get(hi_of(node)) + get(lo_of(node))
    return counts[root]
