"""Quantification: exists, forall, and the relational product.

``and_exists`` fuses conjunction with existential quantification — the
core step of symbolic image computation (Section 1 of the paper):

    T(y) = exists_x [ R(x, y) & F(x) ]

Fusing avoids building the full conjunction when quantification collapses
it early.

Like the core kernels in :mod:`~repro.bdd.operations`, all three
traversals run on explicit stacks (so quantification over arbitrarily
deep BDDs never hits the interpreter recursion limit) and are generic
over the node-store backend: handles are manipulated through the
store's accessor callables and compared with ``==``.
"""

from __future__ import annotations

from typing import Any

from .governor import CHECK_STRIDE
from .manager import Manager
from .operations import apply_node

# Strided-checkpoint mask (see repro.bdd.operations).
_MASK = CHECK_STRIDE - 1

# Frame tags of the explicit-stack traversals (same scheme as
# repro.bdd.operations; see docs/algorithms.md, "Iterative kernels").
_EXPAND, _REBUILD, _AFTER_HI, _DISJOIN = 0, 1, 2, 3


def exists_node(manager: Manager, f: Any,
                levels: frozenset[int]) -> Any:
    """Existentially quantify the variables at ``levels`` out of ``f``."""
    return _quantify(manager, f, levels, "exists", "or")


def forall_node(manager: Manager, f: Any,
                levels: frozenset[int]) -> Any:
    """Universally quantify the variables at ``levels`` out of ``f``."""
    return _quantify(manager, f, levels, "forall", "and")


def _quantify(manager: Manager, f: Any, levels: frozenset[int],
              tag: str, combine_op: str) -> Any:
    """Shared exists/forall walk: merge children with ``combine_op`` at
    quantified levels, rebuild through the unique table elsewhere."""
    if not levels:
        return f
    max_level = max(levels)
    store = manager.store
    level_of, hi_of, lo_of = store.level_of, store.hi_of, store.lo_of
    is_term = store.is_terminal
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    mk = store.mk
    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f)]
    push = stack.append
    values: list[Any] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check(tag)
        frame = stack.pop()
        if frame[0] == _EXPAND:
            f = frame[1]
            if is_term(f) or level_of(f) > max_level:
                emit(f)
                continue
            key = (tag, f, levels)
            cached = cache_get(tag, key)
            if cached is not None:
                emit(cached)
                continue
            push((_REBUILD, key, level_of(f)))
            push((_EXPAND, lo_of(f)))
            push((_EXPAND, hi_of(f)))
        else:  # _REBUILD
            level = frame[2]
            lo = values.pop()
            hi = values.pop()
            if level in levels:
                result = apply_node(manager, combine_op, hi, lo)
            else:
                result = mk(level, hi, lo)
            cache_put(tag, frame[1], result)
            emit(result)
    return values[0]


def and_exists_node(manager: Manager, f: Any, g: Any,
                    levels: frozenset[int]) -> Any:
    """Relational product ``exists levels . f & g`` in one pass."""
    store = manager.store
    one, zero = store.one, store.zero
    if not levels:
        return apply_node(manager, "and", f, g)
    max_level = max(levels)
    level_of, hi_of, lo_of = store.level_of, store.hi_of, store.lo_of
    key_of = store.key_of
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    mk = store.mk
    check = manager.governor.checkpoint
    ticks = 0

    stack: list[tuple] = [(_EXPAND, f, g)]
    push = stack.append
    values: list[Any] = []
    emit = values.append
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("andex")
        frame = stack.pop()
        tag = frame[0]
        if tag == _EXPAND:
            f, g = frame[1], frame[2]
            if f == zero or g == zero:
                emit(zero)
                continue
            if f == one and g == one:
                emit(one)
                continue
            f_level, g_level = level_of(f), level_of(g)
            if f_level > max_level and g_level > max_level:
                emit(apply_node(manager, "and", f, g))
                continue
            if f == one:
                emit(exists_node(manager, g, levels))
                continue
            if g == one or f == g:
                emit(exists_node(manager, f, levels))
                continue
            if key_of(f) > key_of(g):
                f, g = g, f
                f_level, g_level = g_level, f_level
            key = ("andex", f, g, levels)
            cached = cache_get("andex", key)
            if cached is not None:
                emit(cached)
                continue
            level = f_level if f_level < g_level else g_level
            f_hi, f_lo = (hi_of(f), lo_of(f)) if f_level == level \
                else (f, f)
            g_hi, g_lo = (hi_of(g), lo_of(g)) if g_level == level \
                else (g, g)
            if level in levels:
                # Quantified level: the else pair is only explored when
                # the then result falls short of ONE (short-circuit).
                push((_AFTER_HI, key, f_lo, g_lo))
                push((_EXPAND, f_hi, g_hi))
            else:
                push((_REBUILD, key, level))
                push((_EXPAND, f_lo, g_lo))
                push((_EXPAND, f_hi, g_hi))
        elif tag == _AFTER_HI:
            key = frame[1]
            hi = values.pop()
            if hi == one:
                cache_put("andex", key, one)
                emit(one)
                continue
            push((_DISJOIN, key, hi))
            push((_EXPAND, frame[2], frame[3]))
        elif tag == _DISJOIN:
            lo = values.pop()
            result = apply_node(manager, "or", frame[2], lo)
            cache_put("andex", frame[1], result)
            emit(result)
        else:  # _REBUILD
            lo = values.pop()
            hi = values.pop()
            result = mk(frame[2], hi, lo)
            cache_put("andex", frame[1], result)
            emit(result)
    return values[0]
