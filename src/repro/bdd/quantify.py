"""Quantification: exists, forall, and the relational product.

``and_exists`` fuses conjunction with existential quantification — the
core step of symbolic image computation (Section 1 of the paper):

    T(y) = exists_x [ R(x, y) & F(x) ]

Fusing avoids building the full conjunction when quantification collapses
it early.
"""

from __future__ import annotations

from .manager import Manager
from .node import Node
from .operations import apply_node, cofactors_at, top_level


def exists_node(manager: Manager, f: Node,
                levels: frozenset[int]) -> Node:
    """Existentially quantify the variables at ``levels`` out of ``f``."""
    if not levels:
        return f
    max_level = max(levels)
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert

    def rec(f: Node) -> Node:
        if f.is_terminal or f.level > max_level:
            return f
        key = ("exists", f, levels)
        cached = cache_get("exists", key)
        if cached is not None:
            return cached
        hi = rec(f.hi)
        lo = rec(f.lo)
        if f.level in levels:
            result = apply_node(manager, "or", hi, lo)
        else:
            result = manager.mk(f.level, hi, lo)
        cache_put("exists", key, result)
        return result

    return rec(f)


def forall_node(manager: Manager, f: Node,
                levels: frozenset[int]) -> Node:
    """Universally quantify the variables at ``levels`` out of ``f``."""
    if not levels:
        return f
    max_level = max(levels)
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert

    def rec(f: Node) -> Node:
        if f.is_terminal or f.level > max_level:
            return f
        key = ("forall", f, levels)
        cached = cache_get("forall", key)
        if cached is not None:
            return cached
        hi = rec(f.hi)
        lo = rec(f.lo)
        if f.level in levels:
            result = apply_node(manager, "and", hi, lo)
        else:
            result = manager.mk(f.level, hi, lo)
        cache_put("forall", key, result)
        return result

    return rec(f)


def and_exists_node(manager: Manager, f: Node, g: Node,
                    levels: frozenset[int]) -> Node:
    """Relational product ``exists levels . f & g`` in one pass."""
    one, zero = manager.one_node, manager.zero_node
    if not levels:
        return apply_node(manager, "and", f, g)
    max_level = max(levels)
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert

    def rec(f: Node, g: Node) -> Node:
        if f is zero or g is zero:
            return zero
        if f is one and g is one:
            return one
        if f.level > max_level and g.level > max_level:
            return apply_node(manager, "and", f, g)
        if f is one:
            return exists_node(manager, g, levels)
        if g is one:
            return exists_node(manager, f, levels)
        if f is g:
            return exists_node(manager, f, levels)
        if id(f) > id(g):
            f, g = g, f
        key = ("andex", f, g, levels)
        cached = cache_get("andex", key)
        if cached is not None:
            return cached
        level = top_level(f, g)
        f_hi, f_lo = cofactors_at(f, level)
        g_hi, g_lo = cofactors_at(g, level)
        if level in levels:
            hi = rec(f_hi, g_hi)
            if hi is one:
                result = one
            else:
                result = apply_node(manager, "or", hi, rec(f_lo, g_lo))
        else:
            result = manager.mk(level, rec(f_hi, g_hi), rec(f_lo, g_lo))
        cache_put("andex", key, result)
        return result

    return rec(f, g)
