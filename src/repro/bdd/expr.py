"""A small boolean expression language for building BDDs.

Grammar (precedence low to high)::

    expr   := iff
    iff    := imp ( '<->' imp )*
    imp    := or_ ( '->' or_ )*        (right associative)
    or_    := xor ( '|' xor )*
    xor    := and_ ( '^' and_ )*
    and_   := unary ( '&' unary )*
    unary  := '!' unary | '~' unary | atom
    atom   := '0' | '1' | identifier | '(' expr ')'

Identifiers are ``[A-Za-z_][A-Za-z0-9_.']*`` — variable names with
primes (next-state variables) parse naturally.  Unknown variables are
declared on first use, in order of appearance.

>>> m = Manager()
>>> f = parse(m, "a & (b | !c)")
>>> sorted(f.support())
['a', 'b', 'c']
"""

from __future__ import annotations

# The recursive-descent parser below recurses once per precedence level
# plus once per nesting parenthesis — depth is bounded by the expression
# text, not by BDD size, so the no-recursion rule does not apply here.
# repro-lint: disable-file=RPR001

import re

from .function import Function
from .manager import Manager

_TOKEN = re.compile(r"""
    (?P<ws>\s+)
  | (?P<iff><->)
  | (?P<imp>->)
  | (?P<op>[&|^!~()01])
  | (?P<name>[A-Za-z_][A-Za-z0-9_.']*)
""", re.VERBOSE)


class ExprError(ValueError):
    """Raised on malformed expression text."""


def _tokenize(text: str) -> list[str]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise ExprError(f"bad character {text[pos]!r} at {pos}")
        pos = match.end()
        if match.lastgroup != "ws":
            tokens.append(match.group(match.lastgroup))
    return tokens


class _Parser:
    def __init__(self, manager: Manager, tokens: list[str],
                 declare: bool) -> None:
        self.manager = manager
        self.tokens = tokens
        self.pos = 0
        self.declare = declare

    def peek(self) -> str | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ExprError("unexpected end of expression")
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.take()
        if got != token:
            raise ExprError(f"expected {token!r}, got {got!r}")

    # precedence-climbing levels ---------------------------------------

    def parse(self) -> Function:
        result = self.iff()
        if self.peek() is not None:
            raise ExprError(f"trailing input from {self.peek()!r}")
        return result

    def iff(self) -> Function:
        left = self.imp()
        while self.peek() == "<->":
            self.take()
            left = left.equiv(self.imp())
        return left

    def imp(self) -> Function:
        left = self.or_()
        if self.peek() == "->":
            self.take()
            return left.implies(self.imp())  # right associative
        return left

    def or_(self) -> Function:
        left = self.xor()
        while self.peek() == "|":
            self.take()
            left = left | self.xor()
        return left

    def xor(self) -> Function:
        left = self.and_()
        while self.peek() == "^":
            self.take()
            left = left ^ self.and_()
        return left

    def and_(self) -> Function:
        left = self.unary()
        while self.peek() == "&":
            self.take()
            left = left & self.unary()
        return left

    def unary(self) -> Function:
        if self.peek() in ("!", "~"):
            self.take()
            return ~self.unary()
        return self.atom()

    def atom(self) -> Function:
        token = self.take()
        if token == "(":
            inner = self.iff()
            self.expect(")")
            return inner
        if token == "0":
            return self.manager.false
        if token == "1":
            return self.manager.true
        if re.match(r"[A-Za-z_]", token):
            if token not in self.manager._var_to_level:
                if not self.declare:
                    raise ExprError(f"unknown variable {token!r}")
                self.manager.add_var(token)
            return self.manager.var(token)
        raise ExprError(f"unexpected token {token!r}")


def parse(manager: Manager, text: str,
          declare: bool = True) -> Function:
    """Parse a boolean expression into a BDD on ``manager``.

    ``declare=False`` makes unknown variables an error instead of
    declaring them at the bottom of the order.
    """
    return _Parser(manager, _tokenize(text), declare).parse()
