"""The resource governor: abortable kernels with clean unwind.

The paper's premise is graceful degradation under resource pressure —
when exact images blow up, a dense under-approximation substitutes for
the exact set and the traversal keeps going (Section 4).  That only
works if a blowing-up operation can be *stopped*: this module is the
in-process analogue of CUDD's ``Cudd_SetMaxMemory``/timeout machinery.

A :class:`Governor` hangs off every :class:`~repro.bdd.manager.Manager`
and enforces three budgets, checked at cheap strided points inside the
explicit-stack kernels (:data:`CHECK_STRIDE` loop iterations between
checks):

* a **node budget** — live plus freshly created unique-table nodes
  (``manager._num_nodes``) must not exceed the bound;
* an **operation-step budget** — kernel loop iterations since arming;
* a **wall-clock deadline** — seconds from arming.

On violation the checkpoint raises :class:`BudgetExceeded` or
:class:`DeadlineExceeded` and the kernel *unwinds cleanly*:

* partially built nodes stay in the unique table, but hold no roots —
  the next garbage collection reclaims them;
* the computed table never holds in-progress entries, because kernels
  only memoize **completed** sub-results (an aborted frame's entry was
  simply never inserted);
* :meth:`Manager.debug_check` passes immediately after any abort.

Budgets are armed with :meth:`Manager.with_budget` (exception-safe,
nests) and the aborted operation can simply be re-run — memoized
sub-results from the aborted attempt are valid, so the re-run produces
the exact same canonical result an unbudgeted run would.

Fault injection
---------------
Two knobs abort kernels on purpose so the clean-unwind contract stays
enforced by tests rather than by review:

* :meth:`Governor.inject_abort_after` — deterministic test hook: raise
  :class:`InjectedAbort` at the first checkpoint after ``steps`` kernel
  steps (optionally only in one op), one-shot;
* ``REPRO_INJECT_ABORT=op:steps`` — environment knob giving every fresh
  manager a one-shot injection (e.g. ``apply:500``); the CI smoke job
  sweeps it over the core kernels with ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .manager import Manager

__all__ = [
    "CHECK_STRIDE",
    "ResourceError",
    "BudgetExceeded",
    "DeadlineExceeded",
    "InjectedAbort",
    "Budget",
    "Governor",
    "injection_from_env",
]

#: Kernel loop iterations between governor checkpoints.  Kernels tally
#: iterations in a local counter and call
#: :meth:`Governor.checkpoint` every ``CHECK_STRIDE``-th one — the
#: amortized cost is one integer test per iteration plus one method
#: call per stride, small enough to leave always-on (the no-budget
#: overhead target is <= 5% on bench_table2).
CHECK_STRIDE = 64


class ResourceError(RuntimeError):
    """Base of all governor aborts (budget, deadline, injection)."""


class BudgetExceeded(ResourceError):
    """A node or operation-step budget was exceeded mid-kernel."""


class DeadlineExceeded(ResourceError):
    """The armed wall-clock deadline passed mid-kernel."""


class InjectedAbort(BudgetExceeded):
    """A fault-injection abort (test hook or ``REPRO_INJECT_ABORT``).

    Subclasses :class:`BudgetExceeded` so every recovery path — the
    escalation ladder, the harness engine's typed failure rows — treats
    an injected abort exactly like a real budget violation.
    """


@dataclass(frozen=True)
class Budget:
    """Resource bounds for one armed window (all optional).

    ``deadline`` is *relative* — seconds from the moment of arming;
    the governor converts it to an absolute clock value internally.
    """

    #: bound on live + fresh unique-table nodes (None: unbounded)
    node_budget: int | None = None
    #: bound on kernel steps since arming (None: unbounded)
    step_budget: int | None = None
    #: wall-clock seconds from arming (None: no deadline)
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.node_budget is not None and self.node_budget <= 0:
            raise ValueError("node_budget must be positive or None")
        if self.step_budget is not None and self.step_budget <= 0:
            raise ValueError("step_budget must be positive or None")
        if self.deadline is not None and self.deadline < 0:
            raise ValueError("deadline must be >= 0 or None")

    @property
    def unbounded(self) -> bool:
        return (self.node_budget is None and self.step_budget is None
                and self.deadline is None)


def injection_from_env() -> tuple[str, int] | None:
    """Parse ``REPRO_INJECT_ABORT=op:steps`` (None when unset).

    ``op`` is a kernel checkpoint tag (``apply``, ``ite``, ``andex``,
    ...); ``steps`` is the kernel-step count after which the op's first
    checkpoint aborts, once per manager.
    """
    raw = os.environ.get("REPRO_INJECT_ABORT", "").strip()
    if not raw:
        return None
    op, sep, steps_text = raw.partition(":")
    try:
        steps = int(steps_text) if sep else 0
    except ValueError:
        raise ValueError(
            f"REPRO_INJECT_ABORT must look like 'op:steps', got {raw!r}")
    if not op or steps <= 0:
        raise ValueError(
            f"REPRO_INJECT_ABORT must look like 'op:steps', got {raw!r}")
    return op, steps


# State snapshot restored by Manager.with_budget / Governor.suspended:
# (node_budget, step_budget, deadline_abs, window_start_steps).
_Token = tuple[int | None, int | None, float | None, int]


class Governor:
    """Per-manager resource governor (see the module docstring).

    Kernels bind ``check = manager.governor.checkpoint`` before their
    loop and call ``check(op)`` every :data:`CHECK_STRIDE`-th
    iteration; everything else (arming, injection, statistics) happens
    through the manager-facing API.
    """

    __slots__ = (
        "_manager", "_node_budget", "_step_budget", "_deadline",
        "_window_start", "steps", "checkpoints",
        "_inject_op", "_inject_remaining",
        "budget_peak_nodes", "budget_peak_steps",
    )

    def __init__(self, manager: "Manager") -> None:
        self._manager = manager
        self._node_budget: int | None = None
        self._step_budget: int | None = None
        #: absolute perf_counter deadline (None: no deadline)
        self._deadline: float | None = None
        #: ``steps`` value when the current window was armed
        self._window_start = 0
        #: total kernel steps observed since manager creation
        self.steps = 0
        #: total checkpoint calls since manager creation
        self.checkpoints = 0
        self._inject_op: str | None = None
        self._inject_remaining: int | None = None
        #: highest live-node / window-step counts seen while armed
        self.budget_peak_nodes = 0
        self.budget_peak_steps = 0
        env = injection_from_env()
        if env is not None:
            self._inject_op, self._inject_remaining = env

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------

    @property
    def armed(self) -> bool:
        """True when any budget or deadline is currently enforced."""
        return (self._node_budget is not None
                or self._step_budget is not None
                or self._deadline is not None)

    @property
    def node_budget(self) -> int | None:
        return self._node_budget

    @property
    def step_budget(self) -> int | None:
        return self._step_budget

    def remaining_steps(self) -> int | None:
        """Steps left in the armed window (None: unbounded)."""
        if self._step_budget is None:
            return None
        return max(0, self._step_budget
                   - (self.steps - self._window_start))

    def arm(self, budget: Budget) -> _Token:
        """Enforce ``budget`` from now on; returns a restore token.

        Arming replaces the previous budgets wholesale — nesting
        semantics (inner budget wins, outer restored on exit) live in
        :meth:`Manager.with_budget`, which always restores through the
        returned token, body raising or not.
        """
        token: _Token = (self._node_budget, self._step_budget,
                         self._deadline, self._window_start)
        self._node_budget = budget.node_budget
        self._step_budget = budget.step_budget
        self._deadline = None if budget.deadline is None \
            else time.perf_counter() + budget.deadline
        self._window_start = self.steps
        return token

    def restore(self, token: _Token) -> None:
        """Restore the armed state captured by :meth:`arm`."""
        (self._node_budget, self._step_budget, self._deadline,
         self._window_start) = token

    @contextmanager
    def suspended(self) -> Iterator["Governor"]:
        """Run a block with budgets *and* fault injection paused.

        The escalation ladder's recovery work (subset extraction,
        sifting, the final exact fallback) must be allowed to complete
        even though the budget that triggered it is still formally
        armed; this context manager is how that work opts out.
        Exception-safe and nestable.
        """
        token = self.arm(Budget())
        inject = (self._inject_op, self._inject_remaining)
        self._inject_remaining = None
        try:
            yield self
        finally:
            self.restore(token)
            self._inject_op, self._inject_remaining = inject

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------

    def inject_abort_after(self, steps: int,
                           op: str | None = None) -> None:
        """Arm a one-shot abort after ``steps`` further kernel steps.

        Deterministic test hook: the first checkpoint at which the
        matching op (any op when ``op`` is None) has accumulated
        ``steps`` more kernel steps raises :class:`InjectedAbort`, then
        the injection disarms itself.  Granularity is
        :data:`CHECK_STRIDE` steps — the abort fires at the first
        checkpoint at or past the requested count.
        """
        if steps <= 0:
            raise ValueError("steps must be positive")
        self._inject_op = op
        self._inject_remaining = steps

    def clear_injection(self) -> None:
        """Disarm any pending injected abort."""
        self._inject_op = None
        self._inject_remaining = None

    @property
    def injection_pending(self) -> bool:
        return self._inject_remaining is not None

    # ------------------------------------------------------------------
    # The checkpoint (kernel hot path)
    # ------------------------------------------------------------------

    def checkpoint(self, op: str, steps: int = CHECK_STRIDE) -> None:
        """Account ``steps`` kernel steps and enforce the budgets.

        Called from inside kernel loops between frames — never while a
        frame is half-applied — so raising here leaves the unique table
        and computed cache consistent (see the module docstring).
        """
        self.steps += steps
        self.checkpoints += 1
        remaining = self._inject_remaining
        if remaining is not None and (self._inject_op is None
                                      or self._inject_op == op):
            remaining -= steps
            if remaining <= 0:
                self._inject_remaining = None
                self._record_abort(op)
                raise InjectedAbort(
                    f"injected abort in {op!r} "
                    f"(REPRO_INJECT_ABORT/inject_abort_after)")
            self._inject_remaining = remaining
        if self._node_budget is None and self._step_budget is None \
                and self._deadline is None:
            return
        nodes = self._manager._num_nodes
        if nodes > self.budget_peak_nodes:
            self.budget_peak_nodes = nodes
        window_steps = self.steps - self._window_start
        if window_steps > self.budget_peak_steps:
            self.budget_peak_steps = window_steps
        if self._node_budget is not None and nodes > self._node_budget:
            self._record_abort(op)
            raise BudgetExceeded(
                f"node budget {self._node_budget} exceeded "
                f"({nodes} live nodes) in {op!r}")
        if self._step_budget is not None \
                and window_steps > self._step_budget:
            self._record_abort(op)
            raise BudgetExceeded(
                f"step budget {self._step_budget} exceeded "
                f"({window_steps} steps) in {op!r}")
        if self._deadline is not None \
                and time.perf_counter() > self._deadline:
            self._record_abort(op)
            raise DeadlineExceeded(
                f"deadline exceeded in {op!r}")

    def _record_abort(self, op: str) -> None:
        counts = self._manager._abort_counts
        counts[op] = counts.get(op, 0) + 1

    def reset_stats(self) -> None:
        """Rewind the observability counters (budgets stay armed)."""
        self.steps = 0
        self.checkpoints = 0
        self._window_start = 0
        self.budget_peak_nodes = 0
        self.budget_peak_steps = 0
