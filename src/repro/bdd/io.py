"""BDD serialization and cross-manager transfer.

``dump``/``load`` use a compact, order-independent textual format: one
line per node in a bottom-up order, ``index variable hi lo`` with
``hi``/``lo`` referring to earlier indices (0 and 1 are the constants).
Variables are stored by *name*, so a dump can be loaded into a manager
with a different variable order (the BDD is rebuilt with ITE).

``transfer`` copies a function into another manager directly.  Both
managers may use different node-store backends — everything goes
through store accessors and opaque handles.
"""

from __future__ import annotations

import io
from typing import Any

from .function import Function
from .manager import Manager
from .operations import ite_node
from .traversal import nodes_by_level

FORMAT_HEADER = "repro-bdd 1"


class LoadError(ValueError):
    """A malformed dump, rejected with context instead of blowing up.

    Subclasses :class:`ValueError` so pre-existing callers that caught
    the old ad-hoc errors keep working.  Raised for any structural
    violation — wrong field count, non-integer references, duplicate
    or constant-colliding indices, references to undefined nodes,
    redundant ``hi == lo`` nodes, a missing root — on *both* load
    paths, so the direct-insert fast path can never install a bad node
    or die on a raw ``KeyError``.
    """


def dump(function: Function) -> str:
    """Serialize one function to the textual node-list format."""
    manager = function.manager
    store = manager.store
    level_of, hi_of, lo_of = store.level_of, store.hi_of, store.lo_of
    key_of = store.key_of
    lines = [FORMAT_HEADER]
    index: dict[Any, int] = {key_of(store.zero): 0,
                             key_of(store.one): 1}
    ordered = list(reversed(nodes_by_level(store, function.node)))
    for position, node in enumerate(ordered, start=2):
        index[key_of(node)] = position
        name = manager.var_at_level(level_of(node))
        lines.append(f"{position} {name} {index[key_of(hi_of(node))]} "
                     f"{index[key_of(lo_of(node))]}")
    lines.append(f"root {index[key_of(function.node)]}")
    return "\n".join(lines) + "\n"


def load(manager: Manager, text: str,
         declare: bool = True) -> Function:
    """Rebuild a dumped function inside ``manager``.

    Unknown variables are declared (bottom of the order) unless
    ``declare`` is False.  When the dump's variable order is compatible
    with the target manager — along every edge the child's level stays
    strictly below its parent's — the nodes are inserted straight into
    the unique table (the dump is already a canonical ROBDD in that
    order).  Otherwise the BDD is rebuilt with ITE, which is correct
    for any variable order.

    The direct path is what makes shipping frontiers between the
    sharded-reachability coordinator and its workers cheap: both sides
    encode the same circuit, so their orders always agree.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != FORMAT_HEADER:
        raise LoadError("not a repro-bdd dump")
    root = _load_nodes(manager, lines, declare, direct=True)
    if root is None:
        root = _load_nodes(manager, lines, declare, direct=False)
    return Function(manager, root)


def _load_nodes(manager: Manager, lines: list[str], declare: bool,
                direct: bool) -> Any | None:
    """One pass over a dump's node lines; returns the root handle.

    With ``direct`` True, nodes go through ``store.mk`` and the pass
    gives up (returns None) on the first order-incompatible edge; any
    nodes already inserted are canonical and unreferenced, so the next
    safe-point GC reclaims the unused ones.

    Both passes validate the dump's structure up front — every
    reference must name an already-defined index and ``hi``/``lo``
    must differ — so malformed input raises a structured
    :class:`LoadError` instead of a raw index blowup, and the direct
    path never hands ``store.mk`` a non-canonical node.
    """
    store = manager.store
    level_of = store.level_of
    is_terminal = store.is_terminal
    nodes: dict[int, Any] = {0: store.zero, 1: store.one}
    for number, line in enumerate(lines[1:], start=2):
        parts = line.split()
        if parts[0] == "root":
            if len(parts) != 2:
                raise LoadError(f"line {number}: malformed root line "
                                f"{line!r}")
            root = nodes.get(_int_field(parts[1], number, "root"))
            if root is None:
                raise LoadError(f"line {number}: root references an "
                                f"undefined node {parts[1]}")
            return root
        if len(parts) != 4:
            raise LoadError(f"line {number}: expected 'index variable "
                            f"hi lo', got {line!r}")
        raw_position, name, hi_index, lo_index = parts
        position = _int_field(raw_position, number, "index")
        if position < 2 or position in nodes:
            raise LoadError(f"line {number}: duplicate or reserved "
                            f"node index {position}")
        hi = nodes.get(_int_field(hi_index, number, "hi"))
        lo = nodes.get(_int_field(lo_index, number, "lo"))
        if hi is None or lo is None:
            raise LoadError(f"line {number}: reference to an "
                            f"undefined node in {line!r}")
        if hi is lo or hi == lo:
            raise LoadError(f"line {number}: redundant node "
                            f"(hi == lo == {hi_index})")
        if name not in manager._var_to_level:
            if not declare:
                raise LoadError(f"unknown variable {name!r}")
            manager.add_var(name)
        if direct:
            level = manager.level_of_var(name)
            if (not is_terminal(hi) and level_of(hi) <= level) or \
                    (not is_terminal(lo) and level_of(lo) <= level):
                return None
            nodes[position] = store.mk(level, hi, lo)
        else:
            nodes[position] = ite_node(
                manager, manager.var_handle(name), hi, lo)
    raise LoadError("dump has no root line")


def _int_field(raw: str, number: int, what: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise LoadError(f"line {number}: {what} field {raw!r} is not "
                        f"an integer") from None


def dumps_many(functions: list[Function]) -> str:
    """Serialize several functions (shared nodes are not deduplicated
    across dumps; use a single manager and `transfer` for that)."""
    out = io.StringIO()
    out.write(f"count {len(functions)}\n")
    for function in functions:
        out.write(dump(function))
        out.write("---\n")
    return out.getvalue()


def loads_many(manager: Manager, text: str) -> list[Function]:
    """Inverse of :func:`dumps_many`."""
    header, _, body = text.partition("\n")
    if not header.startswith("count "):
        raise ValueError("missing count header")
    chunks = [chunk for chunk in body.split("---\n") if chunk.strip()]
    expected = int(header.split()[1])
    if len(chunks) != expected:
        raise ValueError(f"expected {expected} dumps, found "
                         f"{len(chunks)}")
    return [load(manager, chunk) for chunk in chunks]


def transfer(function: Function, target: Manager,
             declare: bool = True) -> Function:
    """Copy a function into another manager (orders may differ)."""
    source = function.manager
    if source is target:
        return function
    src = source.store
    level_of, hi_of, lo_of = src.level_of, src.hi_of, src.lo_of
    key_of = src.key_of
    cache: dict[Any, Any] = {}

    # Explicit post-order walk (no recursion): expand frames (flag 0)
    # copy leaves or queue the children; rebuild frames (flag 1) pop the
    # two copied children off the value stack and re-canonicalize via
    # ITE in the target order.
    stack: list[tuple[int, Any]] = [(0, function.node)]
    values: list[Any] = []
    while stack:
        flag, node = stack.pop()
        if flag == 0:
            if node == src.zero:
                values.append(target.zero_node)
                continue
            if node == src.one:
                values.append(target.one_node)
                continue
            if key_of(node) in cache:
                values.append(cache[key_of(node)])
                continue
            name = source.var_at_level(level_of(node))
            if name not in target._var_to_level:
                if not declare:
                    raise ValueError(f"unknown variable {name!r}")
                target.add_var(name)
            stack.append((1, node))
            stack.append((0, lo_of(node)))
            stack.append((0, hi_of(node)))
        else:
            lo = values.pop()
            hi = values.pop()
            var = target.var_handle(source.var_at_level(level_of(node)))
            result = ite_node(target, var, hi, lo)
            cache[key_of(node)] = result
            values.append(result)
    return Function(target, values[0])
