"""Decomposition-point selectors: *Band* and *Disjoint* (Section 3).

*Band* picks nodes whose distance from the constants falls in a middle
band — low enough to shrink the factors substantially, but not so low
that rebuilding the factors destroys all recombination.  One pass.

*Disjoint* looks for nodes whose children share few nodes and are
balanced — splitting there maximizes the individual size reduction while
keeping the shared size small.  Exact per-node measurement is one pass
per node (quadratic overall), so, as the paper notes, "only a fraction
of the nodes are sampled": candidates are drawn from a height band and
capped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ...bdd.counting import height_map
from ...bdd.function import Function
from ...bdd.traversal import collect_node_set, collect_nodes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...bdd.backend import NodeStore


def band_points(f: Function, low: float = 0.35,
                high: float = 0.65) -> set:
    """Nodes whose height lies within ``[low, high]`` of the root's.

    Height is the longest distance to a constant (DESIGN.md).  The
    returned set may contain nodes above other returned nodes; the
    decomposition stops at the first point met on each path, so
    effectively the topmost members act.
    """
    if not 0.0 <= low <= high <= 1.0:
        raise ValueError("need 0 <= low <= high <= 1")
    store = f.manager.store
    root = f.node
    if store.is_terminal(root):
        return set()
    heights = height_map(store, root)
    total = heights[root]
    lo_bound = low * total
    hi_bound = high * total
    return {node for node, height in heights.items()
            if lo_bound <= height <= hi_bound}


@dataclass
class DisjointScore:
    """Sharing/balance measurement of one candidate node."""

    node: Any
    #: fraction of the children's nodes that are shared (Jaccard)
    sharing: float
    #: larger child size over smaller child size
    balance: float


def score_disjointness(store: "NodeStore", node: Any) -> DisjointScore:
    """Measure child sharing and balance of one node (one BDD pass)."""
    hi_nodes = collect_node_set(store, store.hi_of(node))
    lo_nodes = collect_node_set(store, store.lo_of(node))
    union = len(hi_nodes | lo_nodes)
    shared = len(hi_nodes & lo_nodes)
    sharing = shared / union if union else 1.0
    small = max(1, min(len(hi_nodes), len(lo_nodes)))
    large = max(1, max(len(hi_nodes), len(lo_nodes)))
    return DisjointScore(node=node, sharing=sharing,
                         balance=large / small)


def disjoint_points(f: Function, max_candidates: int = 64,
                    sharing_limit: float = 0.25,
                    balance_limit: float = 4.0,
                    band: tuple[float, float] = (0.2, 0.8)) -> set:
    """Nodes with sufficiently disjoint, balanced children.

    Samples at most ``max_candidates`` nodes from a height band
    (highest first) and keeps those within the sharing and balance
    limits; if none qualify, the single best-scoring candidate is
    returned so the decomposition always has a point to split at.
    """
    store = f.manager.store
    is_term = store.is_terminal
    hi_of, lo_of = store.hi_of, store.lo_of
    root = f.node
    if is_term(root):
        return set()
    heights = height_map(store, root)
    total = heights[root]
    candidates = [node for node in collect_nodes(store, root)
                  if band[0] * total <= heights[node] <= band[1] * total
                  and not is_term(hi_of(node))
                  and not is_term(lo_of(node))]
    candidates.sort(key=lambda n: -heights[n])
    candidates = candidates[:max_candidates]
    if not candidates:
        return set()
    scores = [score_disjointness(store, node) for node in candidates]
    chosen = {s.node for s in scores
              if s.sharing <= sharing_limit and s.balance <= balance_limit}
    if not chosen:
        best = min(scores, key=lambda s: (s.sharing, s.balance))
        chosen = {best.node}
    return chosen
