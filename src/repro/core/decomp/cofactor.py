"""Cofactor-based two-way decomposition (Cabodi et al. / Narayan et al.).

Equation 1 of the paper: for any variable ``x``,

    f = g · h,   g = x + f_x',   h = x' + f_x

conjunctively, and dually ``f = (x · f_x) + (x' · f_x')`` disjunctively.
Following the paper's reimplementation ("*Cofactor*"), the splitting
variable is the one minimizing the size of the larger of the two
cofactors; estimating all cofactor sizes costs ``#vars * |f|``.
"""

from __future__ import annotations

from ...bdd.function import Function


def cofactor_sizes(f: Function) -> dict[str, tuple[int, int]]:
    """Exact (|f_x|, |f_x'|) for every variable in the support."""
    sizes: dict[str, tuple[int, int]] = {}
    for name in f.support():
        hi = f.cofactor({name: True})
        lo = f.cofactor({name: False})
        sizes[name] = (len(hi), len(lo))
    return sizes


def best_split_variable(f: Function) -> str:
    """The variable minimizing ``max(|f_x|, |f_x'|)`` (ties: total)."""
    if f.is_constant:
        raise ValueError("constant function has no split variable")
    sizes = cofactor_sizes(f)
    return min(sizes, key=lambda n: (max(sizes[n]), sum(sizes[n]),
                                     f.manager.level_of_var(n)))


def cofactor_decompose(f: Function, variable: str | None = None,
                       conjunctive: bool = True
                       ) -> tuple[Function, Function]:
    """Two-way decomposition of ``f`` by Equation 1.

    Returns ``(g, h)`` with ``f == g & h`` (conjunctive) or
    ``f == g | h`` (disjunctive).  ``variable`` defaults to the best
    split variable.
    """
    if f.is_constant:
        other = f.manager.true if conjunctive else f.manager.false
        return f, other
    if variable is None:
        variable = best_split_variable(f)
    x = f.manager.var(variable)
    hi = f.cofactor({variable: True})
    lo = f.cofactor({variable: False})
    if conjunctive:
        return x | lo, ~x | hi
    return x & hi, ~x & lo


def cofactor_decompose_k(f: Function, k: int,
                         conjunctive: bool = False) -> list[Function]:
    """2^k-way decomposition over the best k variables.

    The generalization used for partitioned-ROBDD reachability
    (Narayan et al., ICCAD 97): cofactor against every assignment of the
    chosen variables.  Disjunctive by default (the reachability use).
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    parts = [f]
    for _ in range(k):
        largest = max(parts, key=len)
        if largest.is_constant:
            break
        variable = best_split_variable(largest)
        next_parts = []
        for part in parts:
            if variable in part.support():
                g, h = cofactor_decompose(part, variable, conjunctive)
                next_parts.extend((g, h))
            else:
                next_parts.append(part)
        parts = next_parts
    return parts
