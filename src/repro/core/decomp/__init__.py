"""BDD decomposition algorithms (Section 3 of the paper).

Two-way decomposition methods compared in Table 4:

* ``cofactor_decompose`` — Equation 1 on the best splitting variable
  (the paper's reimplementation of Cabodi et al. / Narayan et al.).
* ``decompose_at_points`` + ``band_points`` — the paper's *Band*.
* ``decompose_at_points`` + ``disjoint_points`` — the paper's
  *Disjoint*.

Plus McMillan's canonical conjunctive decomposition as described in the
prior-work discussion.
"""

from __future__ import annotations

from ...bdd.function import Function
from .cofactor import (best_split_variable, cofactor_decompose,
                       cofactor_decompose_k, cofactor_sizes)
from .general import decompose_at_points
from .mcmillan import conjoin, mcmillan_decompose
from .points import band_points, disjoint_points, score_disjointness

__all__ = [
    "cofactor_decompose",
    "cofactor_decompose_k",
    "cofactor_sizes",
    "best_split_variable",
    "decompose_at_points",
    "band_points",
    "disjoint_points",
    "score_disjointness",
    "mcmillan_decompose",
    "conjoin",
    "decompose",
    "DECOMPOSERS",
]


def decompose(f: Function, method: str = "cofactor",
              conjunctive: bool = True) -> tuple[Function, Function]:
    """Two-way decomposition by method name: cofactor, band, disjoint."""
    if method == "cofactor":
        return cofactor_decompose(f, conjunctive=conjunctive)
    if method == "band":
        return decompose_at_points(f, band_points(f),
                                   conjunctive=conjunctive)
    if method == "disjoint":
        return decompose_at_points(f, disjoint_points(f),
                                   conjunctive=conjunctive)
    raise ValueError(f"unknown decomposition method {method!r}")


#: Registry used by the experiment harness (Table 4).
DECOMPOSERS = ("cofactor", "disjoint", "band")
