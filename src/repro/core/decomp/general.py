"""Generalized decomposition from decomposition points (Figure 5).

The paper's new method: rather than splitting on *all* nodes labelled by
one variable (Equation 1), pick an arbitrary set of *decomposition
points* in the BDD.  Factors are constructed bottom-up: Equation 1 is
applied locally at each decomposition point, and above the points the
child factor pairs are combined —

    g = x·g_T + x'·g_E ;  h = x·h_T + x'·h_E        (straight)
    g = x·g_T + x'·h_E ;  h = x·h_T + x'·g_E        (crossed)

— choosing at every node the pairing that best balances the factors.
A per-node cache keeps the construction linear and encourages sharing.
"""

from __future__ import annotations

from typing import Any

from ...bdd.function import Function


def decompose_at_points(f: Function, points: set,
                        conjunctive: bool = True
                        ) -> tuple[Function, Function]:
    """Two-way decomposition of ``f`` splitting at ``points``.

    ``points`` are node handles of ``f``'s BDD (obtained from the
    selectors in :mod:`repro.core.decomp.points`).  Returns ``(g, h)``
    with ``f == g & h`` (conjunctive) or ``f == g | h`` (disjunctive).
    """
    manager = f.manager
    store = manager.store
    is_term, level_of = store.is_terminal, store.level_of
    hi_of, lo_of = store.hi_of, store.lo_of
    mk = store.mk
    one, zero = store.one, store.zero
    neutral = one if conjunctive else zero
    cache: dict[Any, tuple[Any, Any]] = {}
    # Pairing decisions use a memoized tree-size surrogate: exact BDD
    # sizes would make every combine step a full traversal (quadratic
    # overall), while tree size is O(1) per new node and ranks the
    # straight/crossed alternatives the same way in the common case.
    tree_size: dict[Any, int] = {}

    def ts(node: Any) -> int:
        if is_term(node):
            return 0
        # Two-phase explicit stack: expand until both child sizes are
        # memoized, then fill the parent's entry.
        stack = [node]
        while stack:
            current = stack.pop()
            if is_term(current) or current in tree_size:
                continue
            hi, lo = hi_of(current), lo_of(current)
            hi_ready = is_term(hi) or hi in tree_size
            lo_ready = is_term(lo) or lo in tree_size
            if hi_ready and lo_ready:
                tree_size[current] = 1 \
                    + (0 if is_term(hi) else tree_size[hi]) \
                    + (0 if is_term(lo) else tree_size[lo])
            else:
                stack.append(current)
                if not hi_ready:
                    stack.append(hi)
                if not lo_ready:
                    stack.append(lo)
        return tree_size[node]

    def at_point(node: Any) -> tuple[Any, Any]:
        """Equation 1 applied locally: (v + f_e, v' + f_t) or the dual."""
        level = level_of(node)
        hi, lo = hi_of(node), lo_of(node)
        if conjunctive:
            g = mk(level, one, lo)        # v + f_e
            h = mk(level, hi, one)        # v' + f_t
        else:
            g = mk(level, hi, zero)       # v · f_t
            h = mk(level, zero, lo)       # v' · f_e
        return g, h

    def combine(level: int, g_t: Any, h_t: Any, g_e: Any,
                h_e: Any) -> tuple[Any, Any]:
        straight = (mk(level, g_t, g_e), mk(level, h_t, h_e))
        crossed = (mk(level, g_t, h_e), mk(level, h_t, g_e))
        return min(
            (straight, crossed),
            key=lambda pair: (max(ts(pair[0]), ts(pair[1])),
                              ts(pair[0]) + ts(pair[1])))

    def resolved(node: Any) -> tuple[Any, Any]:
        if is_term(node):
            return node, neutral
        return cache[node]

    def decomp(root: Any) -> tuple[Any, Any]:
        if is_term(root):
            return root, neutral
        # Two-phase explicit stack: a node is pushed unexpanded, its
        # children are decomposed first, then the expanded visit
        # combines (or applies Equation 1 at a decomposition point).
        stack: list[tuple[Any, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if is_term(node) or node in cache:
                continue
            if node in points:
                cache[node] = at_point(node)
            elif not expanded:
                stack.append((node, True))
                stack.append((hi_of(node), False))
                stack.append((lo_of(node), False))
            else:
                g_t, h_t = resolved(hi_of(node))
                g_e, h_e = resolved(lo_of(node))
                cache[node] = combine(level_of(node), g_t, h_t, g_e, h_e)
        return cache[root]

    g, h = decomp(f.node)
    return Function(manager, g), Function(manager, h)
