"""Generalized decomposition from decomposition points (Figure 5).

The paper's new method: rather than splitting on *all* nodes labelled by
one variable (Equation 1), pick an arbitrary set of *decomposition
points* in the BDD.  Factors are constructed bottom-up: Equation 1 is
applied locally at each decomposition point, and above the points the
child factor pairs are combined —

    g = x·g_T + x'·g_E ;  h = x·h_T + x'·h_E        (straight)
    g = x·g_T + x'·h_E ;  h = x·h_T + x'·g_E        (crossed)

— choosing at every node the pairing that best balances the factors.
A per-node cache keeps the construction linear and encourages sharing.
"""

from __future__ import annotations

from ...bdd.function import Function
from ...bdd.node import Node


def decompose_at_points(f: Function, points: set[Node],
                        conjunctive: bool = True
                        ) -> tuple[Function, Function]:
    """Two-way decomposition of ``f`` splitting at ``points``.

    ``points`` are nodes of ``f``'s BDD (obtained from the selectors in
    :mod:`repro.core.decomp.points`).  Returns ``(g, h)`` with
    ``f == g & h`` (conjunctive) or ``f == g | h`` (disjunctive).
    """
    manager = f.manager
    one, zero = manager.one_node, manager.zero_node
    neutral = one if conjunctive else zero
    cache: dict[Node, tuple[Node, Node]] = {}
    # Pairing decisions use a memoized tree-size surrogate: exact BDD
    # sizes would make every combine step a full traversal (quadratic
    # overall), while tree size is O(1) per new node and ranks the
    # straight/crossed alternatives the same way in the common case.
    tree_size: dict[Node, int] = {}

    def ts(node: Node) -> int:
        if node.is_terminal:
            return 0
        # Two-phase explicit stack: expand until both child sizes are
        # memoized, then fill the parent's entry.
        stack = [node]
        while stack:
            current = stack.pop()
            if current.is_terminal or current in tree_size:
                continue
            hi, lo = current.hi, current.lo
            hi_ready = hi.is_terminal or hi in tree_size
            lo_ready = lo.is_terminal or lo in tree_size
            if hi_ready and lo_ready:
                tree_size[current] = 1 \
                    + (0 if hi.is_terminal else tree_size[hi]) \
                    + (0 if lo.is_terminal else tree_size[lo])
            else:
                stack.append(current)
                if not hi_ready:
                    stack.append(hi)
                if not lo_ready:
                    stack.append(lo)
        return tree_size[node]

    def at_point(node: Node) -> tuple[Node, Node]:
        """Equation 1 applied locally: (v + f_e, v' + f_t) or the dual."""
        level = node.level
        if conjunctive:
            g = manager.mk(level, one, node.lo)       # v + f_e
            h = manager.mk(level, node.hi, one)       # v' + f_t
        else:
            g = manager.mk(level, node.hi, zero)      # v · f_t
            h = manager.mk(level, zero, node.lo)      # v' · f_e
        return g, h

    def combine(level: int, g_t: Node, h_t: Node, g_e: Node,
                h_e: Node) -> tuple[Node, Node]:
        straight = (manager.mk(level, g_t, g_e), manager.mk(level, h_t,
                                                            h_e))
        crossed = (manager.mk(level, g_t, h_e), manager.mk(level, h_t,
                                                           g_e))
        return min(
            (straight, crossed),
            key=lambda pair: (max(ts(pair[0]), ts(pair[1])),
                              ts(pair[0]) + ts(pair[1])))

    def resolved(node: Node) -> tuple[Node, Node]:
        if node.is_terminal:
            return node, neutral
        return cache[node]

    def decomp(root: Node) -> tuple[Node, Node]:
        if root.is_terminal:
            return root, neutral
        # Two-phase explicit stack: a node is pushed unexpanded, its
        # children are decomposed first, then the expanded visit
        # combines (or applies Equation 1 at a decomposition point).
        stack: list[tuple[Node, bool]] = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if node.is_terminal or node in cache:
                continue
            if node in points:
                cache[node] = at_point(node)
            elif not expanded:
                stack.append((node, True))
                stack.append((node.hi, False))
                stack.append((node.lo, False))
            else:
                g_t, h_t = resolved(node.hi)
                g_e, h_e = resolved(node.lo)
                cache[node] = combine(node.level, g_t, h_t, g_e, h_e)
        return cache[root]

    g, h = decomp(f.node)
    return Function(manager, g), Function(manager, h)
