"""Generalized decomposition from decomposition points (Figure 5).

The paper's new method: rather than splitting on *all* nodes labelled by
one variable (Equation 1), pick an arbitrary set of *decomposition
points* in the BDD.  Factors are constructed bottom-up: Equation 1 is
applied locally at each decomposition point, and above the points the
child factor pairs are combined —

    g = x·g_T + x'·g_E ;  h = x·h_T + x'·h_E        (straight)
    g = x·g_T + x'·h_E ;  h = x·h_T + x'·g_E        (crossed)

— choosing at every node the pairing that best balances the factors.
A per-node cache keeps the construction linear and encourages sharing.
"""

from __future__ import annotations

from ...bdd.function import Function
from ...bdd.manager import Manager
from ...bdd.node import Node


def decompose_at_points(f: Function, points: set[Node],
                        conjunctive: bool = True
                        ) -> tuple[Function, Function]:
    """Two-way decomposition of ``f`` splitting at ``points``.

    ``points`` are nodes of ``f``'s BDD (obtained from the selectors in
    :mod:`repro.core.decomp.points`).  Returns ``(g, h)`` with
    ``f == g & h`` (conjunctive) or ``f == g | h`` (disjunctive).
    """
    manager = f.manager
    one, zero = manager.one_node, manager.zero_node
    neutral = one if conjunctive else zero
    cache: dict[Node, tuple[Node, Node]] = {}
    # Pairing decisions use a memoized tree-size surrogate: exact BDD
    # sizes would make every combine step a full traversal (quadratic
    # overall), while tree size is O(1) per new node and ranks the
    # straight/crossed alternatives the same way in the common case.
    tree_size: dict[Node, int] = {}

    def ts(node: Node) -> int:
        if node.is_terminal:
            return 0
        size = tree_size.get(node)
        if size is None:
            size = 1 + ts(node.hi) + ts(node.lo)
            tree_size[node] = size
        return size

    def at_point(node: Node) -> tuple[Node, Node]:
        """Equation 1 applied locally: (v + f_e, v' + f_t) or the dual."""
        level = node.level
        if conjunctive:
            g = manager.mk(level, one, node.lo)       # v + f_e
            h = manager.mk(level, node.hi, one)       # v' + f_t
        else:
            g = manager.mk(level, node.hi, zero)      # v · f_t
            h = manager.mk(level, zero, node.lo)      # v' · f_e
        return g, h

    def combine(level: int, g_t: Node, h_t: Node, g_e: Node,
                h_e: Node) -> tuple[Node, Node]:
        straight = (manager.mk(level, g_t, g_e), manager.mk(level, h_t,
                                                            h_e))
        crossed = (manager.mk(level, g_t, h_e), manager.mk(level, h_t,
                                                           g_e))
        return min(
            (straight, crossed),
            key=lambda pair: (max(ts(pair[0]), ts(pair[1])),
                              ts(pair[0]) + ts(pair[1])))

    def decomp(node: Node) -> tuple[Node, Node]:
        if node.is_terminal:
            return node, neutral
        pair = cache.get(node)
        if pair is not None:
            return pair
        if node in points:
            pair = at_point(node)
        else:
            g_t, h_t = decomp(node.hi)
            g_e, h_e = decomp(node.lo)
            pair = combine(node.level, g_t, h_t, g_e, h_e)
        cache[node] = pair
        return pair

    g, h = decomp(f.node)
    return Function(manager, g), Function(manager, h)
