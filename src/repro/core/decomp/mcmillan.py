"""McMillan's canonical conjunctive decomposition (CAV 96).

Described by the paper as prior work (Section 3): a *canonical*
conjunctive decomposition with one factor per variable, of total size
linear in the original BDD size times the number of factors.

For support variables ``v_1 < ... < v_k`` (order positions), let

    p_i = exists v_{i+1} .. v_k . f          (projection on the prefix)

so ``p_0 = (f != 0)`` and ``p_k = f``, with ``p_i <= p_{i-1}``.  Then

    f = AND_i (p_{i-1} -> p_i)

and each factor can be minimized against the previous projection with a
generalized cofactor, since wherever ``p_{i-1}`` fails an earlier factor
is already false.  With the *restrict* minimizer the factors stay small;
canonicity holds because projections and restrict are canonical given
the variable order.
"""

from __future__ import annotations

from ...bdd.function import Function
from ...bdd.restrict import restrict


def mcmillan_decompose(f: Function,
                       trim: bool = True) -> list[Function]:
    """Canonical conjunctive factors of ``f``, one per support variable.

    Returns factors whose conjunction equals ``f``.  ``trim`` drops
    constant-TRUE factors (the count then drops below the number of
    variables, but the conjunction is unchanged).
    """
    manager = f.manager
    if f.is_false:
        return [f]
    support = sorted(f.support(), key=manager.level_of_var)
    factors: list[Function] = []
    previous = manager.true
    # Projections from the bottom up: strip one variable at a time.
    projections: list[Function] = [f]
    for name in reversed(support):
        projections.append(projections[-1].exists([name]))
    projections.reverse()  # projections[i] = exists v_{i+1}..v_k . f
    for i in range(1, len(projections)):
        factor = restrict(projections[i], projections[i - 1])
        if trim and factor.is_true:
            continue
        factors.append(factor)
    if not factors:
        factors.append(manager.true)
    return factors


def conjoin(factors: list[Function]) -> Function:
    """Conjunction of a factor list (for verification and tests)."""
    if not factors:
        raise ValueError("empty factor list")
    result = factors[0].manager.true
    for factor in factors:
        result = result & factor
    return result
