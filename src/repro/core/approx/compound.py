"""Compound approximation algorithms (Section 2.2).

Two composition rules:

* ``mu(alpha(f), f)`` — approximate, then minimize back toward ``f``
  inside the interval ``[alpha(f), f]``; safe if both parts are safe.
* ``alpha1(alpha2(f))`` — chain approximators; safe if both are safe.

The paper's evaluated instances:

* **C1** = RUA followed by minimization,
* **C2** = SP followed by RUA followed by minimization.

Also provided is the iterated-quality RUA the paper suggests "to
mitigate the greediness of RUA": repeated application with a quality
factor decreasing toward 1.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ...bdd.function import Function
from .minimize import safe_minimize
from .remap import remap_under_approx
from .short_paths import short_paths_subset

Approximator = Callable[[Function], Function]


def minimized(alpha: Approximator) -> Approximator:
    """Compose an approximator with safe minimization: mu(alpha(f), f)."""

    def compound(f: Function) -> Function:
        return safe_minimize(alpha(f), f)

    return compound


def chained(*alphas: Approximator) -> Approximator:
    """Compose approximators right to left: alphas[0](...alphas[-1](f))."""

    def compound(f: Function) -> Function:
        for alpha in reversed(alphas):
            f = alpha(f)
        return f

    return compound


def c1(f: Function, threshold: int = 0, quality: float = 1.0) -> Function:
    """The paper's C1: RUA followed by safe minimization."""
    return safe_minimize(
        remap_under_approx(f, threshold=threshold, quality=quality), f)


def c2(f: Function, sp_threshold: int | None = None, threshold: int = 0,
       quality: float = 1.0) -> Function:
    """The paper's C2: SP, then RUA, then safe minimization.

    ``sp_threshold`` bounds the intermediate SP result; the paper's
    harness uses the RUA result size of the same function, which is what
    the default (None) computes.
    """
    if sp_threshold is None:
        sp_threshold = len(remap_under_approx(f, threshold=threshold,
                                              quality=quality))
    subset = short_paths_subset(f, sp_threshold)
    refined = remap_under_approx(subset, threshold=threshold,
                                 quality=quality)
    return safe_minimize(refined, f)


def iterated_remap(f: Function, qualities: Sequence[float] = (1.5, 1.25,
                                                              1.0),
                   threshold: int = 0) -> Function:
    """Repeated RUA with decreasing quality factors ending at 1.

    Starting conservatively and relaxing toward quality 1 mitigates the
    greediness of single-pass RUA (Section 2.2).
    """
    if not qualities:
        raise ValueError("need at least one quality factor")
    result = f
    for quality in qualities:
        result = remap_under_approx(result, threshold=threshold,
                                    quality=quality)
    return result
