"""Short-path subsetting (SP) — Ravi & Somenzi, ICCAD 95.

Short root-to-ONE paths are large implicants represented by few nodes.
The first pass computes, for every node, the length of the shortest
path from the root through the node to the ONE terminal; the second
pass discards all nodes with no sufficiently short path through them,
choosing the largest length cutoff whose kept-node count fits the
threshold.
"""

from __future__ import annotations

from ...bdd.counting import (bdd_size, distance_from_root,
                             distance_to_one)
from ...bdd.function import Function
from ...bdd.traversal import collect_nodes


def shortest_path_lengths(f: Function) -> dict:
    """Shortest root-to-ONE path length through each internal node."""
    store = f.manager.store
    root = f.node
    d_root = distance_from_root(store, root)
    d_one = distance_to_one(store, root)
    return {node: d_root[node] + d_one[node]
            for node in collect_nodes(store, root)}


def short_paths_subset(f: Function, threshold: int,
                       hard: bool = False) -> Function:
    """Under-approximate ``f`` keeping only nodes on short ONE-paths.

    The length cutoff is the largest one that keeps at most
    ``threshold`` nodes; at least the globally shortest paths are always
    kept so the result is nonzero whenever ``f`` is (their node count
    may then exceed the threshold unless ``hard`` is set, in which case
    FALSE is returned).
    """
    manager, root = f.manager, f.node
    store = manager.store
    is_term, level_of = store.is_terminal, store.level_of
    hi_of, lo_of = store.hi_of, store.lo_of
    if is_term(root) or bdd_size(store, root) <= threshold:
        return f
    lengths = shortest_path_lengths(f)
    by_length = sorted(set(lengths.values()))
    cutoff = by_length[0]
    kept_count = sum(1 for v in lengths.values() if v <= cutoff)
    if kept_count > threshold and hard:
        return manager.false
    for candidate in by_length[1:]:
        count = sum(1 for v in lengths.values() if v <= candidate)
        if count > threshold:
            break
        cutoff = candidate
    keep = {node for node, length in lengths.items() if length <= cutoff}

    # Explicit post-order rebuild (no recursion): kept nodes are
    # re-created bottom-up, discarded nodes collapse to ZERO.
    memo: dict = {}
    zero = store.zero
    stack = [(0, root)]
    values = []
    while stack:
        flag, node = stack.pop()
        if flag == 0:
            if is_term(node):
                values.append(node)
                continue
            if node not in keep:
                values.append(zero)
                continue
            if node in memo:
                values.append(memo[node])
                continue
            stack.append((1, node))
            stack.append((0, lo_of(node)))
            stack.append((0, hi_of(node)))
        else:
            lo = values.pop()
            hi = values.pop()
            result = manager.mk(level_of(node), hi, lo)
            memo[node] = result
            values.append(result)
    return Function(manager, values[0])
