"""Safe interval minimization mu(l, u) (Hong et al., DAC 97 notion).

Given ``l <= u``, return some ``g`` with ``l <= g <= u``; *safe* means
``|g| <= |l|`` and ``|g| <= |u|``.  Used by the compound approximation
algorithms of Section 2.2 with ``u = f`` and ``l = alpha(f)`` — the
minimizer can *recover minterms* thrown away by the approximation while
never growing the BDD.

The minimizer here is restrict-based: ``restrict(l, care)`` with care
set ``l | ~u`` agrees with ``l`` wherever the interval is determined
(where ``u`` holds but ``l`` does not, any value stays inside the
interval), and safety is enforced by falling back to the smaller bound
when restrict fails to shrink.
"""

from __future__ import annotations

from ...bdd.function import Function
from ...bdd.restrict import restrict


def safe_minimize(lower: Function, upper: Function) -> Function:
    """Safe mu(l, u): a function in ``[l, u]`` no larger than either."""
    if lower.manager is not upper.manager:
        raise ValueError("operands belong to different managers")
    if not lower <= upper:
        raise ValueError("safe_minimize requires l <= u")
    care = lower | ~upper
    candidate = restrict(lower, care)
    bound = min(len(lower), len(upper))
    if len(candidate) <= bound and lower <= candidate <= upper:
        return candidate
    return lower if len(lower) <= len(upper) else upper


def minimize_with_dont_cares(f: Function, care: Function) -> Function:
    """Heuristic minimization of ``f`` against a care set.

    Returns a function that agrees with ``f`` on ``care``; unlike
    :func:`safe_minimize` the result is not interval-bounded by ``f``.
    """
    return restrict(f, care)
