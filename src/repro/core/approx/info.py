"""Shared analysis machinery for the approximation algorithms.

This module implements the *analyze* pass of Figure 2 and the
*nodesSaved* dominator sweep of Figure 4 of the paper, plus the
path-flow bookkeeping of Section 2.1.2 used to count minterms lost
exactly.

Everything here manipulates opaque node-store handles through the
store's accessors (see :mod:`repro.bdd.backend`); the store that owns
the handles rides along in :attr:`ApproxInfo.store`.

Quantities
----------
For a BDD ``f`` over ``n`` variables and a node ``v``:

``counts[v]``
    minterms of the function rooted at ``v`` over the variables at
    levels ``v.level .. n-1`` (from *analyze*).
``refs[v]``
    the paper's *functionRef*: arcs into ``v`` from nodes of ``f``
    (the root carries one extra external reference).
``flow[v]``
    the number of assignments to the variables *above* ``v.level`` whose
    evaluation path reaches ``v`` — an exact integer encoding of the
    paper's "fraction of paths from the root that go through the node".
    Minterms of ``f`` passing through ``v`` equal ``flow[v]*counts[v]``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ...bdd.counting import minterm_count_map
from ...bdd.traversal import collect_nodes, function_refs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...bdd.backend import NodeStore


@dataclass
class ApproxInfo:
    """The paper's *info* record threaded through the three passes."""

    #: the node store owning every handle below
    store: "NodeStore"
    nvars: int
    #: minterm counts per node (over the variables below the node level)
    counts: dict[Any, int]
    #: current functionRef per node, updated as replacements are accepted
    refs: dict[Any, int]
    #: current estimate of the result size (|f| minus accepted savings)
    size: int
    #: current exact minterm count of the (virtual) result
    minterms: int
    #: path flow into each node, updated as markNodes descends
    flow: dict[Any, int] = field(default_factory=dict)
    #: replacement per node: see REPLACE_* constants
    status: dict[Any, tuple] = field(default_factory=dict)
    #: nodes structurally removed by accepted replacements
    dead: set[Any] = field(default_factory=set)


#: Replacement markers stored in ``ApproxInfo.status``.
REPLACE_ZERO = "zero"
REPLACE_REMAP = "remap"
REPLACE_GRANDCHILD = "grandchild"


def analyze(store: "NodeStore", root: Any, nvars: int) -> ApproxInfo:
    """First pass of Figure 2: minterm counts and reference counts."""
    counts = minterm_count_map(store, root, nvars)
    refs = function_refs(store, root)
    refs[root] = refs.get(root, 0) + 1  # external reference to the root
    size = len(collect_nodes(store, root))
    if store.is_terminal(root):
        minterms = store.value_of(root) << nvars
    else:
        minterms = counts[root] << store.level_of(root)
    return ApproxInfo(store=store, nvars=nvars, counts=counts,
                      refs=refs, size=size, minterms=minterms)


def full_count(info: ApproxInfo, node: Any) -> int:
    """Minterm count of ``node`` as a function of *all* variables."""
    store = info.store
    if store.is_terminal(node):
        return store.value_of(node) << info.nvars
    return info.counts[node] << store.level_of(node)


def nodes_saved(start: Any, info: ApproxInfo,
                protected: frozenset = frozenset()) -> set[Any]:
    """Figure 4: nodes dominated by ``start`` under the current refs.

    Returns the *set* of nodes that die when every arc into ``start`` is
    removed: ``start`` itself plus every descendant all of whose
    remaining references come from dying nodes.  ``protected`` nodes are
    kept alive regardless (they acquire a reference from the
    replacement) and block propagation through themselves.

    The caller turns the set into the paper's *savings* count and, on
    acceptance, into reference-count updates.
    """
    store = info.store
    is_term, level_of = store.is_terminal, store.level_of
    hi_of, lo_of = store.hi_of, store.lo_of
    # local_ref[v] counts arcs into v from nodes already known dead.
    local_ref: dict[Any, int] = {start: info.refs[start]}
    dead: set[Any] = set()
    counter = itertools.count()
    queue: list[tuple[int, int, Any]] = [(level_of(start),
                                          next(counter), start)]
    enqueued = {start}
    while queue:
        _, _, node = heapq.heappop(queue)
        if is_term(node) or node in protected:
            continue
        if local_ref[node] == info.refs[node]:
            dead.add(node)
            for child in (hi_of(node), lo_of(node)):
                local_ref[child] = local_ref.get(child, 0) + 1
                if child not in enqueued and not is_term(child):
                    enqueued.add(child)
                    heapq.heappush(queue, (level_of(child),
                                           next(counter), child))
    return dead


def apply_death(info: ApproxInfo, dead: set[Any]) -> None:
    """Update functionRef counts for the removal of ``dead`` nodes."""
    hi_of, lo_of = info.store.hi_of, info.store.lo_of
    for node in dead:
        hi, lo = hi_of(node), lo_of(node)
        info.refs[hi] = info.refs.get(hi, 0) - 1
        info.refs[lo] = info.refs.get(lo, 0) - 1
    info.dead.update(dead)


def add_flow(info: ApproxInfo, node: Any, amount: int) -> None:
    """Accumulate path flow into ``node``."""
    if amount and not info.store.is_terminal(node):
        info.flow[node] = info.flow.get(node, 0) + amount


def child_flow(info: ApproxInfo, parent_flow: int, parent_level: int,
               child: Any) -> int:
    """Flow contribution along one arc from a node to one child.

    Variables strictly between the two levels are unconstrained, hence
    the power-of-two factor; the parent's own variable is fixed by the
    branch taken.
    """
    store = info.store
    child_level = info.nvars if store.is_terminal(child) \
        else store.level_of(child)
    return parent_flow << (child_level - parent_level - 1)
