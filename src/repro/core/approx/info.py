"""Shared analysis machinery for the approximation algorithms.

This module implements the *analyze* pass of Figure 2 and the
*nodesSaved* dominator sweep of Figure 4 of the paper, plus the
path-flow bookkeeping of Section 2.1.2 used to count minterms lost
exactly.

Quantities
----------
For a BDD ``f`` over ``n`` variables and a node ``v``:

``counts[v]``
    minterms of the function rooted at ``v`` over the variables at
    levels ``v.level .. n-1`` (from *analyze*).
``refs[v]``
    the paper's *functionRef*: arcs into ``v`` from nodes of ``f``
    (the root carries one extra external reference).
``flow[v]``
    the number of assignments to the variables *above* ``v.level`` whose
    evaluation path reaches ``v`` — an exact integer encoding of the
    paper's "fraction of paths from the root that go through the node".
    Minterms of ``f`` passing through ``v`` equal ``flow[v]*counts[v]``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

from ...bdd.counting import minterm_count_map
from ...bdd.node import Node
from ...bdd.traversal import collect_nodes, function_refs


@dataclass
class ApproxInfo:
    """The paper's *info* record threaded through the three passes."""

    nvars: int
    #: minterm counts per node (over the variables below the node level)
    counts: dict[Node, int]
    #: current functionRef per node, updated as replacements are accepted
    refs: dict[Node, int]
    #: current estimate of the result size (|f| minus accepted savings)
    size: int
    #: current exact minterm count of the (virtual) result
    minterms: int
    #: path flow into each node, updated as markNodes descends
    flow: dict[Node, int] = field(default_factory=dict)
    #: replacement per node: see REPLACE_* constants
    status: dict[Node, tuple] = field(default_factory=dict)
    #: nodes structurally removed by accepted replacements
    dead: set[Node] = field(default_factory=set)


#: Replacement markers stored in ``ApproxInfo.status``.
REPLACE_ZERO = "zero"
REPLACE_REMAP = "remap"
REPLACE_GRANDCHILD = "grandchild"


def analyze(root: Node, nvars: int) -> ApproxInfo:
    """First pass of Figure 2: minterm counts and reference counts."""
    counts = minterm_count_map(root, nvars)
    refs = function_refs(root)
    refs[root] = refs.get(root, 0) + 1  # external reference to the root
    size = len(collect_nodes(root))
    minterms = (counts[root] << root.level) if not root.is_terminal \
        else (root.value << nvars)
    return ApproxInfo(nvars=nvars, counts=counts, refs=refs,
                      size=size, minterms=minterms)


def full_count(info: ApproxInfo, node: Node) -> int:
    """Minterm count of ``node`` as a function of *all* variables."""
    if node.is_terminal:
        return node.value << info.nvars
    return info.counts[node] << node.level


def nodes_saved(start: Node, info: ApproxInfo,
                protected: frozenset[Node] = frozenset()) -> set[Node]:
    """Figure 4: nodes dominated by ``start`` under the current refs.

    Returns the *set* of nodes that die when every arc into ``start`` is
    removed: ``start`` itself plus every descendant all of whose
    remaining references come from dying nodes.  ``protected`` nodes are
    kept alive regardless (they acquire a reference from the
    replacement) and block propagation through themselves.

    The caller turns the set into the paper's *savings* count and, on
    acceptance, into reference-count updates.
    """
    # local_ref[v] counts arcs into v from nodes already known dead.
    local_ref: dict[Node, int] = {start: info.refs[start]}
    dead: set[Node] = set()
    counter = itertools.count()
    queue: list[tuple[int, int, Node]] = [(start.level, next(counter),
                                           start)]
    enqueued = {start}
    while queue:
        _, _, node = heapq.heappop(queue)
        if node.is_terminal or node in protected:
            continue
        if local_ref[node] == info.refs[node]:
            dead.add(node)
            for child in (node.hi, node.lo):
                local_ref[child] = local_ref.get(child, 0) + 1
                if child not in enqueued and not child.is_terminal:
                    enqueued.add(child)
                    heapq.heappush(queue,
                                   (child.level, next(counter), child))
    return dead


def apply_death(info: ApproxInfo, dead: set[Node]) -> None:
    """Update functionRef counts for the removal of ``dead`` nodes."""
    for node in dead:
        info.refs[node.hi] = info.refs.get(node.hi, 0) - 1
        info.refs[node.lo] = info.refs.get(node.lo, 0) - 1
    info.dead.update(dead)


def add_flow(info: ApproxInfo, node: Node, amount: int) -> None:
    """Accumulate path flow into ``node``."""
    if amount and not node.is_terminal:
        info.flow[node] = info.flow.get(node, 0) + amount


def child_flow(parent_flow: int, parent_level: int, child: Node,
               nvars: int) -> int:
    """Flow contribution along one arc from a node to one child.

    Variables strictly between the two levels are unconstrained, hence
    the power-of-two factor; the parent's own variable is fixed by the
    branch taken.
    """
    child_level = nvars if child.is_terminal else child.level
    return parent_flow << (child_level - parent_level - 1)
