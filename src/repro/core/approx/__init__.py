"""BDD approximation algorithms (Section 2 of the paper).

Every under-approximator ``alpha`` guarantees ``alpha(f) <= f``; the
corresponding over-approximators are obtained by duality
(``~alpha(~f)``).  *Safe* algorithms additionally guarantee
``density(alpha(f)) >= density(f)`` (Definition 1).

========================  ===========================================
name                      algorithm
========================  ===========================================
``heavy_branch_subset``   HB — heavy-branch subsetting (ICCAD 95)
``short_paths_subset``    SP — short-path subsetting (ICCAD 95)
``bdd_under_approx``      UA — Shiple's bddUnderApprox (non-safe)
``remap_under_approx``    RUA — the paper's safe remapping algorithm
``safe_minimize``         mu(l, u) — safe interval minimization
``c1`` / ``c2``           the paper's compound methods
========================  ===========================================
"""

from __future__ import annotations

from collections.abc import Callable

from ...bdd.function import Function
from .compound import c1, c2, chained, iterated_remap, minimized
from .heavy_branch import heavy_branch_subset
from .minimize import minimize_with_dont_cares, safe_minimize
from .remap import remap_over_approx, remap_under_approx
from .short_paths import short_paths_subset, shortest_path_lengths
from .under_approx import bdd_under_approx

__all__ = [
    "heavy_branch_subset",
    "short_paths_subset",
    "shortest_path_lengths",
    "bdd_under_approx",
    "remap_under_approx",
    "remap_over_approx",
    "safe_minimize",
    "minimize_with_dont_cares",
    "c1",
    "c2",
    "chained",
    "minimized",
    "iterated_remap",
    "over_approx",
    "UNDER_APPROXIMATORS",
]

#: Registry used by the experiment harness and the reachability engine.
#: Each entry maps a short method name to ``fn(f, threshold) -> Function``.
UNDER_APPROXIMATORS: dict[str, Callable[[Function, int], Function]] = {
    "hb": lambda f, threshold: heavy_branch_subset(f, threshold),
    "sp": lambda f, threshold: short_paths_subset(f, threshold),
    "ua": lambda f, threshold: bdd_under_approx(f, threshold),
    "rua": lambda f, threshold: remap_under_approx(f, threshold),
    "c1": lambda f, threshold: c1(f, threshold),
    "c2": lambda f, threshold: c2(f, threshold=threshold),
}


def over_approx(alpha: Callable[..., Function], f: Function,
                *args, **kwargs) -> Function:
    """Over-approximation by duality: ``~alpha(~f)`` (Section 2)."""
    return ~alpha(~f, *args, **kwargs)
