"""BDD approximation algorithms (Section 2 of the paper).

Every under-approximator ``alpha`` guarantees ``alpha(f) <= f``; the
corresponding over-approximators are obtained by duality
(``~alpha(~f)``).  *Safe* algorithms additionally guarantee
``density(alpha(f)) >= density(f)`` (Definition 1).

========================  ===========================================
name                      algorithm
========================  ===========================================
``heavy_branch_subset``   HB — heavy-branch subsetting (ICCAD 95)
``short_paths_subset``    SP — short-path subsetting (ICCAD 95)
``bdd_under_approx``      UA — Shiple's bddUnderApprox (non-safe)
``remap_under_approx``    RUA — the paper's safe remapping algorithm
``safe_minimize``         mu(l, u) — safe interval minimization
``c1`` / ``c2``           the paper's compound methods
========================  ===========================================
"""

from __future__ import annotations

from collections.abc import Callable

from ...bdd.function import Function
from .compound import c1, c2, chained, iterated_remap, minimized
from .heavy_branch import heavy_branch_subset
from .minimize import minimize_with_dont_cares, safe_minimize
from .remap import remap_over_approx, remap_under_approx
from .short_paths import short_paths_subset, shortest_path_lengths
from .under_approx import bdd_under_approx

__all__ = [
    "heavy_branch_subset",
    "short_paths_subset",
    "shortest_path_lengths",
    "bdd_under_approx",
    "remap_under_approx",
    "remap_over_approx",
    "safe_minimize",
    "minimize_with_dont_cares",
    "c1",
    "c2",
    "chained",
    "minimized",
    "iterated_remap",
    "over_approx",
    "register_approximator",
    "UNDER_APPROXIMATORS",
]

#: An under-approximation entry: ``fn(f, *, threshold=0) -> Function``
#: with ``fn(f) <= f``.  All knobs beyond the function are keyword-only,
#: so every registry entry is called the same way.
Approximator = Callable[..., Function]

#: Registry used by the CLI, the experiment harness, and the
#: reachability engine; populated by :func:`register_approximator`.
UNDER_APPROXIMATORS: dict[str, Approximator] = {}


def register_approximator(name: str) -> Callable[[Approximator],
                                                 Approximator]:
    """Register an under-approximator under a short method name.

    The decorated callable must accept ``(f, *, threshold=0)`` — one
    positional Function and keyword-only knobs — so the CLI, harness,
    and reachability engine can drive every method uniformly::

        @register_approximator("hb")
        def _hb(f, *, threshold=0):
            return heavy_branch_subset(f, threshold)
    """

    def decorator(fn: Approximator) -> Approximator:
        if name in UNDER_APPROXIMATORS:
            raise ValueError(f"approximator {name!r} already registered")
        UNDER_APPROXIMATORS[name] = fn
        return fn

    return decorator


@register_approximator("hb")
def _hb(f: Function, *, threshold: int = 0) -> Function:
    """HB — heavy-branch subsetting."""
    return heavy_branch_subset(f, threshold)


@register_approximator("sp")
def _sp(f: Function, *, threshold: int = 0) -> Function:
    """SP — short-path subsetting."""
    return short_paths_subset(f, threshold)


@register_approximator("ua")
def _ua(f: Function, *, threshold: int = 0) -> Function:
    """UA — Shiple's bddUnderApprox."""
    return bdd_under_approx(f, threshold)


@register_approximator("rua")
def _rua(f: Function, *, threshold: int = 0,
         quality: float = 1.0) -> Function:
    """RUA — the paper's safe remapping algorithm."""
    return remap_under_approx(f, threshold, quality=quality)


@register_approximator("c1")
def _c1(f: Function, *, threshold: int = 0,
        quality: float = 1.0) -> Function:
    """C1 — RUA followed by safe minimization."""
    return c1(f, threshold, quality=quality)


@register_approximator("c2")
def _c2(f: Function, *, threshold: int = 0,
        quality: float = 1.0) -> Function:
    """C2 — SP, then RUA, then safe minimization."""
    return c2(f, threshold=threshold, quality=quality)


def over_approx(alpha: Callable[..., Function], f: Function,
                *args, **kwargs) -> Function:
    """Over-approximation by duality: ``~alpha(~f)`` (Section 2)."""
    return ~alpha(~f, *args, **kwargs)
