"""remapUnderApprox (RUA) — the paper's new safe under-approximation.

Three passes (Figure 2):

1. *analyze* — minterm counts and reference counts per node.
2. *markNodes* (Figure 3) — a top-down, level-ordered traversal that
   tries, for each node, the three replacement types in order — *remap*,
   *replace-by-grandchild*, *replace-by-0* — and accepts the first
   applicable one iff it improves the estimated density by more than the
   *quality* factor.  Minterms lost are counted exactly via path flows;
   node savings are a lower bound from the Figure-4 dominator sweep.
3. *buildResult* — a memoized bottom-up rebuild applying the accepted
   replacements.

With ``quality >= 1`` the algorithm is *safe* (Definition 1):
``density(rua(f)) >= density(f)``.

All passes manipulate opaque node-store handles (compared with ``==``,
never ``is``), so they run unchanged on every backend.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Any

from ...bdd.function import Function
from ...bdd.governor import CHECK_STRIDE
from ...bdd.manager import Manager
from ...bdd.operations import leq_node

# Strided governor-checkpoint mask (see repro.bdd.operations).
_MASK = CHECK_STRIDE - 1
from .info import (REPLACE_GRANDCHILD, REPLACE_REMAP, REPLACE_ZERO,
                   ApproxInfo, add_flow, analyze, apply_death, child_flow,
                   nodes_saved)


@dataclass
class Replacement:
    """A candidate replacement for one node (result of findReplacement)."""

    kind: str
    #: exact number of minterms of f lost if accepted
    lost: int
    #: lower bound on the number of nodes saved (may be <= 0)
    saved: int
    #: nodes that die if accepted
    dead: set[Any]
    #: surviving function root the node is remapped to (remap only)
    kept: Any = None
    #: (child level, use_then_branch, shared grandchild) for grandchild
    grandchild: tuple[int, bool, Any] | None = None


#: All replacement types, in the order findReplacement tries them.
ALL_REPLACEMENTS = (REPLACE_REMAP, REPLACE_GRANDCHILD, REPLACE_ZERO)


def remap_under_approx(f: Function, threshold: int = 0,
                       quality: float = 1.0,
                       replacements: tuple = ALL_REPLACEMENTS
                       ) -> Function:
    """Safe under-approximation of ``f`` (the paper's RUA).

    Parameters
    ----------
    threshold:
        Stop replacing once the estimated result size drops to this many
        nodes.  ``0`` lets the algorithm shrink the BDD as long as each
        step improves density (the setting used for most of the paper's
        experiments).
    quality:
        Minimum density ratio for accepting a replacement.  ``1.0``
        accepts only density-improving replacements (safe); values above
        1 are more conservative, below 1 more aggressive.
    replacements:
        The replacement types findReplacement may use, for ablation
        studies (default: all three of the paper's types).
    """
    manager, root = f.manager, f.node
    store = manager.store
    if store.is_terminal(root):
        return f
    info = analyze(store, root, manager.num_vars)
    mark_nodes(manager, root, info, threshold, quality,
               replacements=replacements)
    return Function(manager, build_result(manager, root, info))


def remap_over_approx(f: Function, threshold: int = 0,
                      quality: float = 1.0) -> Function:
    """Safe over-approximation by duality: ``~RUA(~f)`` (Section 2)."""
    return ~remap_under_approx(~f, threshold=threshold, quality=quality)


# ----------------------------------------------------------------------
# Pass 2: markNodes (Figure 3)
# ----------------------------------------------------------------------

def mark_nodes(manager: Manager, root: Any, info: ApproxInfo,
               threshold: int, quality: float,
               replacements: tuple = (REPLACE_REMAP,
                                      REPLACE_GRANDCHILD,
                                      REPLACE_ZERO)) -> None:
    """Decide a replacement status for every node, top-down by level."""
    store = manager.store
    is_term, level_of = store.is_terminal, store.level_of
    hi_of, lo_of = store.hi_of, store.lo_of
    q = Fraction(quality)
    leq_cache: dict[tuple[Any, Any], bool] = {}
    counter = itertools.count()
    queue: list[tuple[int, int, Any]] = []
    entered: set[Any] = set()

    def enqueue(node: Any) -> None:
        if is_term(node) or node in entered:
            return
        entered.add(node)
        heapq.heappush(queue, (level_of(node), next(counter), node))

    info.flow[root] = 1 << level_of(root)
    enqueue(root)
    done = False
    check = manager.governor.checkpoint
    ticks = 0
    while queue:
        ticks += 1
        if not ticks & _MASK:
            check("remap")
        _, _, node = heapq.heappop(queue)
        if node in info.dead:
            continue
        if not done and info.size <= threshold:
            done = True
        flow = info.flow.get(node, 0)
        replacement = None
        if not done:
            replacement = find_replacement(manager, node, flow, info,
                                           leq_cache, replacements)
            if replacement is not None and \
                    not _accept(replacement, info, q):
                replacement = None
        if replacement is None:
            # Keep the node: flow passes to both children.
            level = level_of(node)
            hi, lo = hi_of(node), lo_of(node)
            add_flow(info, hi, child_flow(info, flow, level, hi))
            add_flow(info, lo, child_flow(info, flow, level, lo))
            enqueue(hi)
            enqueue(lo)
            continue
        _commit(manager, node, flow, replacement, info)
        if replacement.kind == REPLACE_REMAP:
            enqueue(replacement.kept)
        elif replacement.kind == REPLACE_GRANDCHILD:
            enqueue(replacement.grandchild[2])


def _accept(rep: Replacement, info: ApproxInfo, q: Fraction) -> bool:
    """densityRatio(replacement) > quality, in exact arithmetic."""
    new_minterms = info.minterms - rep.lost
    new_size = info.size - rep.saved
    if new_size <= 0:
        # The estimate claims everything is saved; only sensible when no
        # minterms survive either, which can never improve density.
        return False
    return (new_minterms * info.size * q.denominator
            > info.minterms * new_size * q.numerator)


def _commit(manager: Manager, node: Any, flow: int, rep: Replacement,
            info: ApproxInfo) -> None:
    """updateInfo: record the replacement and update all bookkeeping."""
    store = manager.store
    is_term, level_of = store.is_terminal, store.level_of
    apply_death(info, rep.dead)
    info.size -= rep.saved
    info.minterms -= rep.lost
    if rep.kind == REPLACE_ZERO:
        info.status[node] = (REPLACE_ZERO,)
        return
    if rep.kind == REPLACE_REMAP:
        kept = rep.kept
        info.status[node] = (REPLACE_REMAP, kept)
        # Arcs into `node` now point at `kept`.
        if not is_term(kept):
            info.refs[kept] = info.refs.get(kept, 0) + info.refs[node]
            add_flow(info, kept,
                     flow << (level_of(kept) - level_of(node)))
        return
    level, use_then, shared = rep.grandchild
    info.status[node] = (REPLACE_GRANDCHILD, level, use_then, shared)
    if not is_term(shared):
        # The new node at `level` references the shared grandchild.
        info.refs[shared] = info.refs.get(shared, 0) + 1
        add_flow(info, shared,
                 flow << (level_of(shared) - level_of(node) - 1))


# ----------------------------------------------------------------------
# findReplacement (Section 2.1.1)
# ----------------------------------------------------------------------

def _count_from(info: ApproxInfo, node: Any, level: int) -> int:
    """Minterm count of ``node`` over the variables at ``level`` down."""
    store = info.store
    if store.is_terminal(node):
        return store.value_of(node) << (info.nvars - level)
    return info.counts[node] << (store.level_of(node) - level)


def find_replacement(manager: Manager, node: Any, flow: int,
                     info: ApproxInfo, leq_cache: dict,
                     replacements: tuple = (REPLACE_REMAP,
                                            REPLACE_GRANDCHILD,
                                            REPLACE_ZERO)
                     ) -> Replacement | None:
    """Try remap, then replace-by-grandchild, then replace-by-0.

    Returns the first enabled type that *applies* (the acceptance
    decision is the caller's); None when no enabled type applies.
    """
    store = manager.store
    is_term, level_of = store.is_terminal, store.level_of
    hi_of, lo_of = store.hi_of, store.lo_of
    hi, lo = hi_of(node), lo_of(node)
    node_level = level_of(node)
    count_here = info.counts[node]

    # --- remap: requires one child's function contained in the other's.
    kept = None
    if REPLACE_REMAP in replacements:
        if leq_node(manager, lo, hi, leq_cache):
            kept, dropped = lo, hi
        elif leq_node(manager, hi, lo, leq_cache):
            kept, dropped = hi, lo
    if kept is not None:
        protected = frozenset() if is_term(kept) else frozenset({kept})
        dead = nodes_saved(node, info, protected)
        lost = flow * (count_here
                       - _count_from(info, kept, node_level))
        return Replacement(kind=REPLACE_REMAP, lost=lost,
                           saved=len(dead), dead=dead, kept=kept)

    # --- replace-by-grandchild: children at the same level sharing a
    # grandchild on the same side.
    if REPLACE_GRANDCHILD in replacements and not is_term(hi) \
            and not is_term(lo) and level_of(hi) == level_of(lo):
        shared = None
        if hi_of(hi) == hi_of(lo):
            shared, use_then = hi_of(hi), True
        elif lo_of(hi) == lo_of(lo):
            shared, use_then = lo_of(hi), False
        if shared is not None:
            protected = frozenset() if is_term(shared) \
                else frozenset({shared})
            dead = nodes_saved(node, info, protected)
            # Replacement function y·shared (or y'·shared) over the
            # variables from node.level down: the node's own variable is
            # free, y is fixed, everything between is free.
            new_count = _count_from(info, shared, node_level) >> 1
            lost = flow * (count_here - new_count)
            return Replacement(
                kind=REPLACE_GRANDCHILD, lost=lost,
                saved=len(dead) - 1,  # the replacement node may be new
                dead=dead,
                grandchild=(level_of(hi), use_then, shared))

    # --- replace-by-0: always applies (when enabled).
    if REPLACE_ZERO not in replacements:
        return None
    dead = nodes_saved(node, info, frozenset())
    return Replacement(kind=REPLACE_ZERO, lost=flow * count_here,
                       saved=len(dead), dead=dead)


# ----------------------------------------------------------------------
# Pass 3: buildResult
# ----------------------------------------------------------------------

def build_result(manager: Manager, root: Any, info: ApproxInfo) -> Any:
    """Rebuild the BDD bottom-up applying the recorded replacements.

    Explicit post-order walk (no recursion, so replacement chains of any
    depth work at the default recursion limit): expand frames (flag 0)
    resolve terminals/memo hits and queue the nodes a status depends on;
    rebuild frames (flag 1) pop the finished pieces off the value stack.
    """
    store = manager.store
    is_term, level_of = store.is_terminal, store.level_of
    hi_of, lo_of = store.hi_of, store.lo_of
    mk = store.mk
    memo: dict[Any, Any] = {}
    status_of = info.status
    zero = store.zero

    check = manager.governor.checkpoint
    ticks = 0
    stack: list[tuple[int, Any]] = [(0, root)]
    values: list[Any] = []
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("remap")
        flag, node = stack.pop()
        if flag == 0:
            if is_term(node):
                values.append(node)
                continue
            if node in memo:
                values.append(memo[node])
                continue
            status = status_of.get(node)
            if status is not None and status[0] == REPLACE_ZERO:
                memo[node] = zero
                values.append(zero)
                continue
            stack.append((1, node))
            if status is None:
                stack.append((0, lo_of(node)))
                stack.append((0, hi_of(node)))
            elif status[0] == REPLACE_REMAP:
                stack.append((0, status[1]))
            else:
                stack.append((0, status[3]))  # the shared grandchild
        else:
            status = status_of.get(node)
            if status is None:
                lo = values.pop()
                hi = values.pop()
                result = mk(level_of(node), hi, lo)
            elif status[0] == REPLACE_REMAP:
                result = values.pop()
            else:
                _, level, use_then, _ = status
                branch = values.pop()
                if use_then:
                    result = mk(level, branch, zero)
                else:
                    result = mk(level, zero, branch)
            memo[node] = result
            values.append(result)
    return values[0]
