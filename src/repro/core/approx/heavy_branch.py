"""Heavy-branch subsetting (HB) — Ravi & Somenzi, ICCAD 95.

Two passes: the first computes the minterm count of every node; the
second proceeds from the root, discarding the *light branch* (the child
with fewer minterms) of each node until the residual size estimate
crosses the threshold.  The result is the shape the paper describes:
"a BDD with a string of nodes at the top, each with one child as the
constant 0", hanging onto an untouched heavy subgraph.
"""

from __future__ import annotations

from ...bdd.counting import bdd_size, minterm_count_map
from ...bdd.function import Function


def heavy_branch_subset(f: Function, threshold: int) -> Function:
    """Under-approximate ``f`` to roughly ``threshold`` nodes.

    Returns ``f`` unchanged when it is already within the threshold.
    """
    manager, root = f.manager, f.node
    store = manager.store
    is_term, level_of = store.is_terminal, store.level_of
    hi_of, lo_of = store.hi_of, store.lo_of
    if is_term(root) or bdd_size(store, root) <= threshold:
        return f
    nvars = manager.num_vars
    counts = minterm_count_map(store, root, nvars)

    def full(node) -> int:
        if is_term(node):
            return store.value_of(node) << nvars
        return counts[node] << level_of(node)

    # Walk the heavy path, cutting light branches, until the residual
    # estimate (string so far + heavy subgraph) meets the threshold.
    string: list[tuple[int, bool]] = []
    node = root
    while not is_term(node):
        if len(string) + bdd_size(store, node) <= threshold:
            break
        heavy_is_hi = full(hi_of(node)) >= full(lo_of(node))
        string.append((level_of(node), heavy_is_hi))
        node = hi_of(node) if heavy_is_hi else lo_of(node)

    result = node
    zero = store.zero
    for level, heavy_is_hi in reversed(string):
        if heavy_is_hi:
            result = manager.mk(level, result, zero)
        else:
            result = manager.mk(level, zero, result)
    return Function(manager, result)
