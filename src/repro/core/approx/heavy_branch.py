"""Heavy-branch subsetting (HB) — Ravi & Somenzi, ICCAD 95.

Two passes: the first computes the minterm count of every node; the
second proceeds from the root, discarding the *light branch* (the child
with fewer minterms) of each node until the residual size estimate
crosses the threshold.  The result is the shape the paper describes:
"a BDD with a string of nodes at the top, each with one child as the
constant 0", hanging onto an untouched heavy subgraph.
"""

from __future__ import annotations

from ...bdd.counting import bdd_size, minterm_count_map
from ...bdd.function import Function


def heavy_branch_subset(f: Function, threshold: int) -> Function:
    """Under-approximate ``f`` to roughly ``threshold`` nodes.

    Returns ``f`` unchanged when it is already within the threshold.
    """
    manager, root = f.manager, f.node
    if root.is_terminal or bdd_size(root) <= threshold:
        return f
    nvars = manager.num_vars
    counts = minterm_count_map(root, nvars)

    def full(node) -> int:
        if node.is_terminal:
            return node.value << nvars
        return counts[node] << node.level

    # Walk the heavy path, cutting light branches, until the residual
    # estimate (string so far + heavy subgraph) meets the threshold.
    string: list[tuple[int, bool]] = []
    node = root
    while not node.is_terminal:
        if len(string) + bdd_size(node) <= threshold:
            break
        heavy_is_hi = full(node.hi) >= full(node.lo)
        string.append((node.level, heavy_is_hi))
        node = node.hi if heavy_is_hi else node.lo

    result = node
    zero = manager.zero_node
    for level, heavy_is_hi in reversed(string):
        if heavy_is_hi:
            result = manager.mk(level, result, zero)
        else:
            result = manager.mk(level, zero, result)
    return Function(manager, result)
