"""bddUnderApprox (UA) — Shiple's original under-approximation.

The predecessor of RUA (Shiple et al., UCB/ERL M97/73; Shiple's PhD
thesis).  Differences from RUA, as Section 2.1.3 lists them:

* the cost function is a *convex combination* of the fraction of nodes
  saved and the fraction of minterms lost, instead of their ratio;
* only *replace-by-0* is used.

The paper evaluates the *non-safe* variant; without complement arcs the
parity subtlety disappears, and what remains non-safe is the acceptance
rule itself: a replacement that trades many minterms for few nodes can
decrease density.
"""

from __future__ import annotations

import heapq
import itertools
from fractions import Fraction

from ...bdd.function import Function
from ...bdd.manager import Manager
from ...bdd.node import Node
from .info import (REPLACE_ZERO, ApproxInfo, add_flow, analyze,
                   apply_death, child_flow, nodes_saved)
from .remap import build_result


def bdd_under_approx(f: Function, threshold: int = 0,
                     weight: float = 0.5) -> Function:
    """Under-approximate ``f`` with replace-by-0 and a convex cost.

    A node is replaced when

        weight * (nodes saved / |f|)
            > (1 - weight) * (minterms lost / ||f||)

    so ``weight`` close to 1 is aggressive (cares about size only) and
    close to 0 conservative.  ``threshold`` stops the pass early once
    the estimated size is small enough (0 = shrink freely).
    """
    if not 0.0 <= weight <= 1.0:
        raise ValueError("weight must lie in [0, 1]")
    manager, root = f.manager, f.node
    if root.is_terminal:
        return f
    info = analyze(root, manager.num_vars)
    _mark(manager, root, info, threshold, Fraction(weight))
    return Function(manager, build_result(manager, root, info))


def _mark(manager: Manager, root: Node, info: ApproxInfo,
          threshold: int, weight: Fraction) -> None:
    original_size = info.size
    original_minterms = info.minterms
    counter = itertools.count()
    queue: list[tuple[int, int, Node]] = []
    entered: set[Node] = set()

    def enqueue(node: Node) -> None:
        if node.is_terminal or node in entered:
            return
        entered.add(node)
        heapq.heappush(queue, (node.level, next(counter), node))

    info.flow[root] = 1 << root.level
    enqueue(root)
    done = False
    while queue:
        _, _, node = heapq.heappop(queue)
        if node in info.dead:
            continue
        if not done and info.size <= threshold:
            done = True
        flow = info.flow.get(node, 0)
        if not done:
            dead = nodes_saved(node, info, frozenset())
            lost = flow * info.counts[node]
            # weight*saved/|f| > (1-weight)*lost/||f||, cross-multiplied.
            accept = (weight.numerator * len(dead) * original_minterms
                      > (weight.denominator - weight.numerator)
                      * lost * original_size)
            if accept:
                apply_death(info, dead)
                info.size -= len(dead)
                info.minterms -= lost
                info.status[node] = (REPLACE_ZERO,)
                continue
        add_flow(info, node.hi,
                 child_flow(flow, node.level, node.hi, info.nvars))
        add_flow(info, node.lo,
                 child_flow(flow, node.level, node.lo, info.nvars))
        enqueue(node.hi)
        enqueue(node.lo)
