"""bddUnderApprox (UA) — Shiple's original under-approximation.

The predecessor of RUA (Shiple et al., UCB/ERL M97/73; Shiple's PhD
thesis).  Differences from RUA, as Section 2.1.3 lists them:

* the cost function is a *convex combination* of the fraction of nodes
  saved and the fraction of minterms lost, instead of their ratio;
* only *replace-by-0* is used.

The paper evaluates the *non-safe* variant; without complement arcs the
parity subtlety disappears, and what remains non-safe is the acceptance
rule itself: a replacement that trades many minterms for few nodes can
decrease density.
"""

from __future__ import annotations

import heapq
import itertools
from fractions import Fraction
from typing import Any

from ...bdd.function import Function
from ...bdd.manager import Manager
from .info import (REPLACE_ZERO, ApproxInfo, add_flow, analyze,
                   apply_death, child_flow, nodes_saved)
from .remap import build_result


def bdd_under_approx(f: Function, threshold: int = 0,
                     weight: float = 0.5) -> Function:
    """Under-approximate ``f`` with replace-by-0 and a convex cost.

    A node is replaced when

        weight * (nodes saved / |f|)
            > (1 - weight) * (minterms lost / ||f||)

    so ``weight`` close to 1 is aggressive (cares about size only) and
    close to 0 conservative.  ``threshold`` stops the pass early once
    the estimated size is small enough (0 = shrink freely).
    """
    if not 0.0 <= weight <= 1.0:
        raise ValueError("weight must lie in [0, 1]")
    manager, root = f.manager, f.node
    store = manager.store
    if store.is_terminal(root):
        return f
    info = analyze(store, root, manager.num_vars)
    _mark(manager, root, info, threshold, Fraction(weight))
    return Function(manager, build_result(manager, root, info))


def _mark(manager: Manager, root: Any, info: ApproxInfo,
          threshold: int, weight: Fraction) -> None:
    store = manager.store
    is_term, level_of = store.is_terminal, store.level_of
    hi_of, lo_of = store.hi_of, store.lo_of
    original_size = info.size
    original_minterms = info.minterms
    counter = itertools.count()
    queue: list[tuple[int, int, Any]] = []
    entered: set[Any] = set()

    def enqueue(node: Any) -> None:
        if is_term(node) or node in entered:
            return
        entered.add(node)
        heapq.heappush(queue, (level_of(node), next(counter), node))

    info.flow[root] = 1 << level_of(root)
    enqueue(root)
    done = False
    while queue:
        _, _, node = heapq.heappop(queue)
        if node in info.dead:
            continue
        if not done and info.size <= threshold:
            done = True
        flow = info.flow.get(node, 0)
        if not done:
            dead = nodes_saved(node, info, frozenset())
            lost = flow * info.counts[node]
            # weight*saved/|f| > (1-weight)*lost/||f||, cross-multiplied.
            accept = (weight.numerator * len(dead) * original_minterms
                      > (weight.denominator - weight.numerator)
                      * lost * original_size)
            if accept:
                apply_death(info, dead)
                info.size -= len(dead)
                info.minterms -= lost
                info.status[node] = (REPLACE_ZERO,)
                continue
        level = level_of(node)
        hi, lo = hi_of(node), lo_of(node)
        add_flow(info, hi, child_flow(info, flow, level, hi))
        add_flow(info, lo, child_flow(info, flow, level, lo))
        enqueue(hi)
        enqueue(lo)
