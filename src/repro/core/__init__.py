"""The paper's primary contributions.

* :mod:`repro.core.approx` — BDD approximation (Section 2): heavy-branch
  and short-path subsetting, ``bddUnderApprox``, the new
  ``remapUnderApprox`` (RUA), safe minimization, and compound methods.
* :mod:`repro.core.decomp` — BDD decomposition (Section 3): cofactor-
  based two-way decomposition and the generalized decomposition-point
  algorithm with *Band* and *Disjoint* selectors.
"""
