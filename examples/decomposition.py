#!/usr/bin/env python3
"""Decomposing a monolithic BDD into balanced conjunctive factors.

The Section 3 scenario: a BDD too large to manipulate comfortably is
split into two factors g, h with f = g & h, comparing the three
two-way methods of Table 4 (Cofactor, Band, Disjoint) and McMillan's
canonical conjunctive decomposition.  A partitioned representation can
then run image computations factor-by-factor — the reachability use
case that motivated the paper.

Run:  python examples/decomposition.py
"""

from repro.bdd import Manager, shared_size
from repro.core.decomp import (band_points, best_split_variable,
                               cofactor_decompose, conjoin,
                               decompose_at_points, disjoint_points,
                               mcmillan_decompose)
from repro.harness import format_table
from repro.harness.population import multiplier_bit


def main() -> None:
    # A middle bit of a 6x6 multiplier: the classic monolithic blob.
    manager = Manager()
    f = multiplier_bit(manager, 6, 6)
    print(f"f = bit 6 of a 6x6 multiplier: {len(f)} nodes, "
          f"{f.sat_count()} minterms\n")

    rows = []
    # --- Cofactor (Cabodi et al. / Narayan et al., Equation 1)
    variable = best_split_variable(f)
    g, h = cofactor_decompose(f, variable)
    assert (g & h) == f
    rows.append(["Cofactor", f"split on {variable}", len(g), len(h),
                 shared_size([g.node, h.node])])

    # --- Band: decomposition points from the middle height band
    points = band_points(f)
    g, h = decompose_at_points(f, points)
    assert (g & h) == f
    rows.append(["Band", f"{len(points)} points", len(g), len(h),
                 shared_size([g.node, h.node])])

    # --- Disjoint: points with unshared, balanced children
    points = disjoint_points(f)
    g, h = decompose_at_points(f, points)
    assert (g & h) == f
    rows.append(["Disjoint", f"{len(points)} points", len(g), len(h),
                 shared_size([g.node, h.node])])

    print(format_table(
        ["Method", "points", "|G|", "|H|", "shared"], rows,
        title="Two-way conjunctive decompositions (f = G & H)"))

    # --- McMillan's canonical conjunctive decomposition
    factors = mcmillan_decompose(f)
    assert conjoin(factors) == f
    print(f"\nMcMillan canonical decomposition: {len(factors)} factors")
    print(f"  factor sizes: {[len(p) for p in factors]}")
    print(f"  largest factor {max(len(p) for p in factors)} vs "
          f"monolithic {len(f)} nodes")

    # Disjunctive duals for completeness.
    g, h = cofactor_decompose(f, conjunctive=False)
    assert (g | h) == f
    print(f"\nDisjunctive dual (f = G | H): |G|={len(g)} |H|={len(h)}")


if __name__ == "__main__":
    main()
