#!/usr/bin/env python3
"""Invariant checking with approximation-assisted exploration.

The verification workflow the paper's introduction motivates:

1. prove a safety invariant by exact reachability, with a concrete
   counterexample trace when it fails;
2. hunt deep violations with high-density (dense-subset) exploration;
3. prove invariants cheaply with an over-approximate fixpoint (safe
   over-approximation via the RUA dual).

Run:  python examples/invariant_checking.py
"""

from repro.bdd import parse
from repro.core.approx import remap_under_approx
from repro.fsm import encode
from repro.fsm.benchmarks import shift_queue, token_ring
from repro.reach import TransitionRelation
from repro.verify import (check_invariant, hunt_invariant_violation,
                          prove_by_over_approximation)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A real invariant of the token ring: the token stays one-hot.
    # ------------------------------------------------------------------
    encoded = encode(token_ring(4))
    tr = TransitionRelation(encoded)
    one_hot = parse(
        encoded.manager,
        "(t0 & !t1 & !t2 & !t3) | (!t0 & t1 & !t2 & !t3) | "
        "(!t0 & !t1 & t2 & !t3) | (!t0 & !t1 & !t2 & t3)",
        declare=False)
    result = check_invariant(encoded, tr, one_hot)
    print(f"token one-hot invariant: "
          f"{'HOLDS' if result.holds else 'VIOLATED'} "
          f"(explored {result.iterations} rings)")

    # ------------------------------------------------------------------
    # 2. A violated invariant of the queue, with a trace.
    # ------------------------------------------------------------------
    encoded = encode(shift_queue(3, 2))
    tr = TransitionRelation(encoded)
    never_full = ~parse(encoded.manager, "v0 & v1 & v2", declare=False)
    result = check_invariant(encoded, tr, never_full)
    print(f"\n'queue never fills' invariant: "
          f"{'HOLDS' if result.holds else 'VIOLATED'}")
    if not result.holds:
        print(f"counterexample trace ({len(result.trace)} states):")
        for step, state in enumerate(result.trace):
            valid = "".join("1" if state[f"v{i}"] else "0"
                            for i in range(3))
            print(f"  step {step}: valid bits = {valid}")

    # ------------------------------------------------------------------
    # 3. High-density bug hunt finds the same violation.
    # ------------------------------------------------------------------
    encoded = encode(shift_queue(3, 2))
    tr = TransitionRelation(encoded)
    never_full = ~parse(encoded.manager, "v0 & v1 & v2", declare=False)
    hunt = hunt_invariant_violation(
        encoded, tr, never_full,
        lambda f, *, threshold=0: remap_under_approx(f, threshold))
    print(f"\nhigh-density hunt: "
          f"{'no violation' if hunt.holds else 'violation found'} in "
          f"{hunt.iterations} dense iterations")

    # ------------------------------------------------------------------
    # 4. Over-approximate proof (no exact reachability needed).
    # ------------------------------------------------------------------
    encoded = encode(token_ring(4))
    tr = TransitionRelation(encoded)
    served_monotone = parse(encoded.manager, "s0 | !s0",
                            declare=False)  # trivially true
    proof = prove_by_over_approximation(encoded, tr, served_monotone)
    print(f"\nover-approximate proof of a trivial invariant: "
          f"{'PROVED' if proof and proof.holds else 'inconclusive'}")


if __name__ == "__main__":
    main()
