#!/usr/bin/env python3
"""Reachability analysis: exact BFS vs high-density traversal.

The scenario of Section 4 of the paper: a sequential circuit whose
breadth-first frontiers blow up, traversed (a) exactly and (b) with the
high-density strategy using remapUnderApprox to extract dense frontier
subsets.  Both arrive at the *same exact* reachable set; the
high-density run keeps its BDDs small.

Run:  python examples/reachability.py
"""

import time

from repro.core.approx import remap_under_approx, short_paths_subset
from repro.fsm import encode
from repro.fsm.benchmarks import checksum_memory
from repro.reach import (TransitionRelation, bfs_reachability,
                         count_states, high_density_reachability)


def main() -> None:
    circuit = checksum_memory(4, 3)
    print(f"circuit: {circuit.name}, {circuit.num_latches} latches, "
          f"{len(circuit.inputs)} inputs")

    # ------------------------------------------------------------------
    # Exact breadth-first traversal.
    # ------------------------------------------------------------------
    encoded = encode(circuit)
    tr = TransitionRelation(encoded)
    start = time.perf_counter()
    bfs = bfs_reachability(tr, encoded.initial_states())
    bfs_time = time.perf_counter() - start
    states = count_states(bfs.reached, encoded.state_vars)
    print(f"\nBFS:     {bfs_time:6.2f}s  {bfs.iterations} iterations, "
          f"{states} states")
    print(f"         peak frontier {max(bfs.frontier_trace)} nodes, "
          f"final reached set {len(bfs.reached)} nodes")

    # ------------------------------------------------------------------
    # High-density traversal with RUA frontier subsetting.
    # ------------------------------------------------------------------
    for label, subsetter, threshold in [
            ("HD-RUA", lambda f, *, threshold=0: remap_under_approx(f, threshold), 0),
            ("HD-SP ", lambda f, *, threshold=0: short_paths_subset(f, threshold), 50)]:
        encoded_hd = encode(circuit)
        tr_hd = TransitionRelation(encoded_hd)
        start = time.perf_counter()
        hd = high_density_reachability(tr_hd,
                                       encoded_hd.initial_states(),
                                       subsetter, threshold=threshold)
        hd_time = time.perf_counter() - start
        hd_states = count_states(hd.reached, encoded_hd.state_vars)
        assert hd_states == states, "traversals disagree!"
        mean_density = (sum(hd.subset_densities)
                        / max(1, len(hd.subset_densities)))
        print(f"{label}:  {hd_time:6.2f}s  {hd.iterations} iterations, "
              f"{hd_states} states (exact, matches BFS)")
        print(f"         peak frontier {max(hd.frontier_trace)} nodes, "
              f"{hd.recoveries} recovery sweeps, "
              f"mean subset density {mean_density:.1f}")

    print("\nBoth traversals compute the exact reachable set; the "
          "high-density runs bound the frontier BDD size, which is "
          "what rescues the larger circuits in Table 1 of the paper.")


if __name__ == "__main__":
    main()
