#!/usr/bin/env python3
"""Traversing the Am2910 microprogram sequencer.

The paper's hardest benchmark: exact breadth-first traversal of the
am2910 did not finish in two weeks, while high-density traversal with
approximate frontiers completed.  This example runs a scaled-down
instance of this package's from-scratch Am2910 model (the full
``width=12, depth=6`` configuration reproduces the benchmark's 99
flip-flops) and shows the same qualitative gap.

Run:  python examples/am2910_traversal.py
"""

import time

from repro.core.approx import short_paths_subset
from repro.fsm import encode
from repro.fsm.am2910 import am2910
from repro.reach import (TransitionRelation, TraversalLimit,
                         bfs_reachability, count_states,
                         high_density_reachability)

WIDTH, DEPTH = 5, 3
BFS_BUDGET_SECONDS = 20.0


def main() -> None:
    circuit = am2910(WIDTH, DEPTH)
    print(f"Am2910 model: width={WIDTH}, depth={DEPTH} -> "
          f"{circuit.num_latches} flip-flops "
          f"(width=12, depth=6 gives the benchmark's 99)")

    # Exact BFS with a time budget, standing in for the paper's
    # ">2 weeks" entry.
    encoded = encode(circuit)
    tr = TransitionRelation(encoded)
    start = time.perf_counter()
    try:
        bfs = bfs_reachability(tr, encoded.initial_states(),
                               deadline=BFS_BUDGET_SECONDS)
        print(f"BFS:    {time.perf_counter() - start:6.1f}s  "
              f"{count_states(bfs.reached, encoded.state_vars)} states "
              f"in {bfs.iterations} iterations")
    except TraversalLimit as exc:
        print(f"BFS:    gave up ({exc})")

    # High-density traversal with short-path frontier subsetting.
    encoded_hd = encode(circuit)
    tr_hd = TransitionRelation(encoded_hd)
    start = time.perf_counter()
    hd = high_density_reachability(
        tr_hd, encoded_hd.initial_states(),
        lambda f, *, threshold=0: short_paths_subset(f, threshold), threshold=150)
    states = count_states(hd.reached, encoded_hd.state_vars)
    print(f"HD-SP:  {time.perf_counter() - start:6.1f}s  "
          f"{states} states in {hd.iterations} iterations "
          f"({hd.recoveries} recovery sweeps) — exact")
    print(f"        state space coverage: {states} of "
          f"{2 ** circuit.num_latches} latch configurations")


if __name__ == "__main__":
    main()
