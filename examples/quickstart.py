#!/usr/bin/env python3
"""Quickstart: build BDDs, approximate them, decompose them.

Walks through the package's public API in five minutes:

1. build a boolean function as a BDD,
2. under-approximate it with the paper's remapUnderApprox (RUA) and the
   prior methods (HB, SP, UA),
3. compose approximation with safe minimization (the paper's C1),
4. decompose a BDD into two balanced conjunctive factors,
5. inspect sizes, minterm counts, and densities along the way.

Run:  python examples/quickstart.py
"""

from repro.bdd import Manager, restrict, to_dot
from repro.core.approx import (bdd_under_approx, c1, heavy_branch_subset,
                               remap_under_approx, short_paths_subset)
from repro.core.decomp import (band_points, cofactor_decompose,
                               decompose_at_points, mcmillan_decompose,
                               conjoin)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Build a function.
    # ------------------------------------------------------------------
    manager = Manager()
    x = manager.add_vars(*[f"x{i}" for i in range(12)])

    # A messy mixed function: a couple of wide cubes plus arithmetic-ish
    # structure that resists a small BDD.
    f = (x[0] & x[1]) | (x[2] & ~x[3] & x[4]) \
        | ((x[5] ^ x[6]) & (x[7] ^ x[8]) & (x[9] | x[10]) & x[11])
    print(f"f: {len(f)} nodes, {f.sat_count()} minterms, "
          f"density {f.density():.2f}")

    # ------------------------------------------------------------------
    # 2. Under-approximate: RUA and the earlier algorithms.
    # ------------------------------------------------------------------
    rua = remap_under_approx(f, threshold=0, quality=1.0)
    print(f"RUA: {len(rua)} nodes, {rua.sat_count()} minterms, "
          f"density {rua.density():.2f}")
    assert rua <= f                       # always a subset
    assert rua.density() >= f.density()   # RUA is *safe*

    budget = max(1, len(rua))
    for name, subset in [
            ("HB ", heavy_branch_subset(f, budget)),
            ("SP ", short_paths_subset(f, budget)),
            ("UA ", bdd_under_approx(f))]:
        print(f"{name}: {len(subset)} nodes, {subset.sat_count()} "
              f"minterms, density {subset.density():.2f}")
        assert subset <= f

    # ------------------------------------------------------------------
    # 3. Compound: C1 = RUA followed by safe minimization.
    # ------------------------------------------------------------------
    compound = c1(f)
    print(f"C1 : {len(compound)} nodes, {compound.sat_count()} "
          f"minterms, density {compound.density():.2f}")
    assert compound.density() >= rua.density() - 1e-9

    # ------------------------------------------------------------------
    # 4. Decompose f = g & h.
    # ------------------------------------------------------------------
    g, h = cofactor_decompose(f)
    print(f"Cofactor factors: |G|={len(g)} |H|={len(h)} "
          f"(|f|={len(f)})")
    assert (g & h) == f

    g2, h2 = decompose_at_points(f, band_points(f))
    print(f"Band factors:     |G|={len(g2)} |H|={len(h2)}")
    assert (g2 & h2) == f

    factors = mcmillan_decompose(f)
    print(f"McMillan canonical factors: {len(factors)} pieces, sizes "
          f"{[len(p) for p in factors]}")
    assert conjoin(factors) == f

    # ------------------------------------------------------------------
    # 5. Restrict (Figure 1 of the paper) and DOT export.
    # ------------------------------------------------------------------
    care = x[0] | x[5]
    minimized = restrict(f, care)
    print(f"restrict(f, care): {len(minimized)} nodes "
          f"(agrees with f on the care set)")
    assert (care & minimized) == (care & f)

    dot = to_dot(rua, "rua")
    print(f"DOT export of the RUA result: {len(dot.splitlines())} lines "
          "(render with graphviz)")


if __name__ == "__main__":
    main()
