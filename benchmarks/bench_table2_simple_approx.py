"""Table 2: comparison of simple approximation methods.

Reproduces the paper's Table 2: geometric means of nodes, minterms and
density over the function population for F (the original function), HB,
SP, UA, and RUA, plus wins/ties on density.  Protocol follows the paper:
UA/RUA run with threshold 0 and quality 1; the RUA result sizes are used
as the thresholds for HB and SP.

Run:  pytest benchmarks/bench_table2_simple_approx.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.approx import (bdd_under_approx, heavy_branch_subset,
                               remap_under_approx, short_paths_subset)
from repro.harness import (Measurement, format_table, geometric_mean,
                           wins_and_ties)

METHODS = ("F", "HB", "SP", "UA", "RUA")


def cache_summary(population) -> str:
    """Aggregate computed-table statistics over the population managers."""
    managers = {id(e.function.manager): e.function.manager
                for e in population}
    hits = misses = evictions = 0
    for m in managers.values():
        t = m.computed.totals()
        hits += t.hits
        misses += t.misses
        evictions += t.evictions
    lookups = hits + misses
    rate = hits / lookups if lookups else 0.0
    return (f"[computed table: {lookups} lookups, {rate:.0%} hit rate, "
            f"{evictions} evictions over {len(managers)} managers]")


def run_simple_methods(population):
    """Apply all simple methods; returns per-function measurements."""
    rows = []
    for entry in population:
        f = entry.function
        nvars = f.manager.num_vars
        rua = remap_under_approx(f, threshold=0, quality=1.0)
        budget = max(1, len(rua))
        results = {
            "F": f,
            "HB": heavy_branch_subset(f, budget),
            "SP": short_paths_subset(f, budget),
            "UA": bdd_under_approx(f, threshold=0),
            "RUA": rua,
        }
        for name, g in results.items():
            assert g <= f, f"{name} broke the subset contract"
        rows.append({name: Measurement(nodes=len(g),
                                       minterms=g.sat_count(nvars))
                     for name, g in results.items()})
    return rows


def summarize(rows) -> str:
    score = wins_and_ties([{k: v for k, v in row.items() if k != "F"}
                           for row in rows])
    table = []
    for method in METHODS:
        nodes = geometric_mean([max(1, row[method].nodes)
                                for row in rows])
        minterms = geometric_mean([row[method].minterms
                                   for row in rows])
        dens = geometric_mean(
            [row[method].minterms / max(1, row[method].nodes)
             for row in rows])
        wins, ties = score.get(method, (0, 0))
        table.append([method, round(nodes, 1), minterms, dens,
                      wins, ties])
    return format_table(
        ["Method", "nodes", "minterms", "density", "wins", "ties"],
        table,
        title="Table 2: Comparison of approximation methods I: "
              "Simple methods")


@pytest.mark.benchmark(group="table2")
def test_table2_simple_methods(benchmark, population):
    rows = benchmark.pedantic(run_simple_methods, args=(population,),
                              rounds=1, iterations=1)
    print()
    print(f"[population: {len(population)} functions]")
    print(summarize(rows))
    print(cache_summary(population))
    # Shape assertions from the paper: RUA is the densest simple method
    # on geometric mean and takes the most wins.
    score = wins_and_ties([{k: v for k, v in row.items() if k != "F"}
                           for row in rows])
    rua_wins = score["RUA"][0]
    assert rua_wins >= max(w for m, (w, _) in score.items()
                           if m != "RUA"), score
    dens = {m: geometric_mean([r[m].minterms / max(1, r[m].nodes)
                               for r in rows]) for m in METHODS}
    assert dens["RUA"] >= dens["F"], "RUA must be safe on average"
    assert dens["RUA"] >= dens["HB"], \
        "RUA should dominate HB on mean density"
