"""Table 2: comparison of simple approximation methods.

Reproduces the paper's Table 2: geometric means of nodes, minterms and
density over the function population for F (the original function), HB,
SP, UA, and RUA, plus wins/ties on density.  Protocol follows the paper:
UA/RUA run with threshold 0 and quality 1; the RUA result sizes are used
as the thresholds for HB and SP.

The population is fanned over the experiment engine
(:func:`repro.harness.engine.run_tasks`) one spec per task — each
worker rebuilds its slice and runs
:func:`repro.harness.experiments.simple_approx_rows`; ``--jobs 1``
runs the same bodies inline and produces identical rows.  Results are
persisted to ``BENCH_table2.json``.

Run:  pytest benchmarks/bench_table2_simple_approx.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.harness import (Measurement, Task, format_table,
                           geometric_mean, merge_rows,
                           population_specs, resume_tasks, run_tasks,
                           spec_digest, task_rows, wins_and_ties)
from repro.harness.experiments import SIMPLE_METHODS, simple_approx_rows

METHODS = SIMPLE_METHODS


def run_engine(scale, jobs, resume_from=None):
    """Run the population sweep; returns ``(run, specs, previous)``.

    ``resume_from`` names a partial ``BENCH_table2.json``: tasks it
    already recorded (ok status, matching payload digest) are skipped,
    and their rows come back as ``previous`` for merging.
    """
    tasks = [Task(spec.name, (spec, scale.min_nodes))
             for spec in population_specs()]
    specs = {task.key: spec_digest(task.payload) for task in tasks}
    previous = []
    if resume_from is not None:
        tasks, previous = resume_tasks(resume_from, tasks)
    return run_tasks(simple_approx_rows, tasks, jobs=jobs), specs, \
        previous


def as_measurements(func_rows):
    """Flat trajectory rows -> per-method Measurement dicts."""
    return [{m: Measurement(nodes=row[f"{m}_nodes"],
                            minterms=row[f"{m}_minterms"])
             for m in METHODS} for row in func_rows]


def cache_summary(run) -> str:
    """Aggregate computed-table statistics over the worker managers."""
    hits = misses = evictions = managers = 0
    for outcome in run.outcomes:
        stats = outcome.result["manager_stats"]
        managers += stats["managers"]
        hits += stats["cache_hits"]
        misses += stats["cache_misses"]
        evictions += stats["cache_evictions"]
    lookups = hits + misses
    rate = hits / lookups if lookups else 0.0
    return (f"[computed table: {lookups} lookups, {rate:.0%} hit rate, "
            f"{evictions} evictions over {managers} managers]")


def summarize(rows) -> str:
    score = wins_and_ties([{k: v for k, v in row.items() if k != "F"}
                           for row in rows])
    table = []
    for method in METHODS:
        nodes = geometric_mean([max(1, row[method].nodes)
                                for row in rows])
        minterms = geometric_mean([row[method].minterms
                                   for row in rows])
        dens = geometric_mean(
            [row[method].minterms / max(1, row[method].nodes)
             for row in rows])
        wins, ties = score.get(method, (0, 0))
        table.append([method, round(nodes, 1), minterms, dens,
                      wins, ties])
    return format_table(
        ["Method", "nodes", "minterms", "density", "wins", "ties"],
        table,
        title="Table 2: Comparison of approximation methods I: "
              "Simple methods")


@pytest.mark.benchmark(group="table2")
def test_table2_simple_methods(benchmark, scale, jobs, bench_writer,
                               resume_from):
    run, specs, previous = benchmark.pedantic(
        run_engine, args=(scale, jobs, resume_from),
        rounds=1, iterations=1)
    assert not run.failures, [o.error for o in run.failures]
    current = [row for outcome in run.outcomes
               for row in outcome.result["rows"]]
    # Resumed rows (function results and task timings recorded by the
    # interrupted run) merge under the fresh ones; without
    # --resume-from this is just the current rows.
    merged = merge_rows(previous, current + task_rows(run, specs))
    func_rows = [row for row in merged
                 if not str(row.get("key", "")).startswith("task/")]
    rows = as_measurements(func_rows)
    print()
    print(f"[population: {len(rows)} functions, jobs={run.jobs}, "
          f"{len(run.outcomes)} task(s) run this time]")
    print(summarize(rows))
    print(cache_summary(run))
    bench_writer("table2", merged, run)
    # Shape assertions from the paper: RUA is the densest simple method
    # on geometric mean and takes the most wins.
    score = wins_and_ties([{k: v for k, v in row.items() if k != "F"}
                           for row in rows])
    rua_wins = score["RUA"][0]
    assert rua_wins >= max(w for m, (w, _) in score.items()
                           if m != "RUA"), score
    dens = {m: geometric_mean([r[m].minterms / max(1, r[m].nodes)
                               for r in rows]) for m in METHODS}
    assert dens["RUA"] >= dens["F"], "RUA must be safe on average"
    assert dens["RUA"] >= dens["HB"], \
        "RUA should dominate HB on mean density"
