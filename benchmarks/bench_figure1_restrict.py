"""Figure 1: the remapping step of restrict.

Figure 1 of the paper illustrates how *restrict* remaps a node to its
sibling when the care set zeroes one branch, eliminating both the
branch and the parent node.  This bench reproduces the exact scenario
of the figure, measures restrict on the function population, and
reports how often (and how much) remapping shrinks the BDD.

Run:  pytest benchmarks/bench_figure1_restrict.py --benchmark-only -s
"""

from __future__ import annotations

import random

import pytest

from repro.bdd import Manager, restrict
from repro.harness import format_table
from repro.harness.population import random_dnf


def figure1_scenario():
    """The 4-node remapping example of Figure 1."""
    m = Manager(vars=["x", "y", "z"])
    x, y, z = (m.var(n) for n in "xyz")
    f = m.ite(x, y & z, y | ~z)
    c = x
    r = restrict(f, c)
    assert r == (y & z), "remapping must return the then cofactor"
    assert "x" not in r.support()
    return len(f), len(r)


def restrict_population(population):
    """restrict(f, c) with random care sets over the population."""
    rng = random.Random(7)
    shrank = 0
    ratios = []
    for entry in population:
        f = entry.function
        manager = f.manager
        variables = [manager.var(n) for n in sorted(f.support())]
        if len(variables) < 3:
            continue
        care = random_dnf(manager, variables, terms=4,
                          width=min(4, len(variables)), rng=rng)
        r = restrict(f, care)
        assert (care & r) == (care & f)
        ratios.append(len(r) / max(1, len(f)))
        if len(r) < len(f):
            shrank += 1
    return shrank, ratios


@pytest.mark.benchmark(group="figure1")
def test_figure1_remapping_step(benchmark):
    sizes = benchmark(figure1_scenario)
    print()
    print(format_table(
        ["|f|", "|restrict(f, c)|"], [list(sizes)],
        title="Figure 1: remapping in restrict "
              "(the paper's 4-node example)"))
    assert sizes[1] < sizes[0]


@pytest.mark.benchmark(group="figure1")
def test_figure1_restrict_on_population(benchmark, population):
    shrank, ratios = benchmark.pedantic(restrict_population,
                                        args=(population,), rounds=1,
                                        iterations=1)
    mean_ratio = sum(ratios) / max(1, len(ratios))
    print()
    print(f"restrict shrank {shrank}/{len(ratios)} population BDDs; "
          f"mean size ratio {mean_ratio:.2f}")
    assert shrank >= len(ratios) // 2
