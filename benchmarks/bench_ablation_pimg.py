"""Partial-image subsetting ablation (Section 4).

The paper reports: "We conducted some experiments using SP for creating
subsets of new states but RUA for partial image computation, and the
run-times were faster than using SP for both."  This bench reproduces
that comparison on the am2910 model: high-density traversal with SP
frontiers, varying which procedure subsets oversized intermediate image
products (none / SP / RUA).

Run:  pytest benchmarks/bench_ablation_pimg.py --benchmark-only -s
"""

from __future__ import annotations

import os

import pytest

from repro.core.approx import remap_under_approx, short_paths_subset
from repro.fsm import encode
from repro.fsm.am2910 import am2910
from repro.harness import format_table
from repro.reach import (PartialImagePolicy, TransitionRelation,
                         count_states, high_density_reachability)

RESULTS: dict[str, tuple[float, int]] = {}


def circuit():
    if os.environ.get("REPRO_BENCH_SCALE") == "full":
        return am2910(6, 4)
    return am2910(5, 3)


def pimg_trigger():
    return (8000, 4000) if os.environ.get("REPRO_BENCH_SCALE") == \
        "full" else (2000, 1000)


def run(pimg_method: str):
    circ = circuit()
    encoded = encode(circ)
    tr = TransitionRelation(encoded)
    sp = lambda f, *, threshold=0: short_paths_subset(f, threshold)
    policy = None
    trigger, threshold = pimg_trigger()
    if pimg_method == "sp":
        policy = PartialImagePolicy(subset=sp, trigger=trigger,
                                    threshold=threshold)
    elif pimg_method == "rua":
        policy = PartialImagePolicy(
            subset=lambda f, *, threshold=0: remap_under_approx(f, threshold),
            trigger=trigger, threshold=threshold)
    result = high_density_reachability(
        tr, encoded.initial_states(), sp, threshold=150,
        partial=policy, deadline=900)
    states = count_states(result.reached, encoded.state_vars)
    return result.seconds, states, tr.stats.subset_calls


@pytest.mark.benchmark(group="ablation-pimg")
@pytest.mark.parametrize("pimg_method", ["none", "sp", "rua"])
def test_partial_image_method(benchmark, pimg_method):
    seconds, states, calls = benchmark.pedantic(
        run, args=(pimg_method,), rounds=1, iterations=1)
    RESULTS[pimg_method] = (seconds, states, calls)


@pytest.mark.benchmark(group="ablation-pimg-report")
def test_pimg_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not RESULTS:
        pytest.skip("timed benchmarks did not run")
    states = {s for _, s, _ in RESULTS.values()}
    assert len(states) == 1, "partial-image runs disagree on states"
    rows = [[name, f"{seconds:.1f}", calls]
            for name, (seconds, _, calls) in RESULTS.items()]
    print()
    print(format_table(
        ["PImg method", "time (s)", "subset calls"], rows,
        title="Partial-image subsetting ablation "
              "(SP frontiers on the am2910 model)"))
