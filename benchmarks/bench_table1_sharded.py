"""Table 1 addendum: sharded vs sequential BFS reachability.

Measures the speedup of disjunctive frontier sharding
(:mod:`repro.reach.shard`) over monolithic BFS on the Table 1 circuit
stand-ins.  Every (circuit, variant) pair is byte-identical by
construction — the sharded traversal must reproduce the sequential
state count and iteration count exactly, and the benchmark asserts it —
so the only question this table answers is *time*.

Measurement protocol: sequential and sharded runs are interleaved in
one process (seq, shard, seq, shard) and the best time of each variant
is kept.  Interleaving is deliberate — on a busy single-core box,
back-to-back blocks of one variant systematically favor whichever ran
during the quieter window; alternating cancels the drift.  Speedups are
persisted as informational float rows (the trajectory comparator
ignores floats, so cross-machine timing never gates CI); the
deterministic state/iteration/shard-policy fields are compared exactly.

Circuits with many traversal steps (the serial multiplier's 257-deep
frontier sequence, the pipeline controller) amortize the sharder's
one-time warm-up — pool fork, per-cube relation constraining, cold
operation caches — and profit most from the constrained worker
relations; am2910's 7 deep-but-few steps sit near break-even and are
included as the honest lower bound.

Run:  pytest benchmarks/bench_table1_sharded.py --benchmark-only -s
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.harness import format_table
from repro.harness.experiments import reachability_row

#: Interleaved (sequential, sharded) measurement rounds per circuit.
ROUNDS = 3


@dataclass(frozen=True)
class ShardBenchRow:
    """One circuit and its sharding policy."""

    paper_name: str
    factory: str
    args: tuple
    shards: int = 2
    selector: str = "relation"
    min_frontier: int = 1000

    def payload(self, sharded: bool) -> dict:
        base = {"name": self.paper_name, "factory": self.factory,
                "args": self.args, "method": "bfs", "deadline": 600.0}
        if sharded:
            base.update(shards=self.shards,
                        shard_selector=self.selector,
                        shard_min_frontier=self.min_frontier)
        return base


CIRCUITS = (
    ShardBenchRow("s1269", "serial_multiplier", (8,), min_frontier=3000),
    ShardBenchRow("pipeline", "pipeline_controller", (3, 4)),
    ShardBenchRow("am2910", "am2910", (5, 3), min_frontier=2000),
)


def measure() -> list[dict]:
    """Interleaved best-of-``ROUNDS`` rows for every circuit."""
    rows = []
    for cfg in CIRCUITS:
        seq_runs, shard_runs = [], []
        for _ in range(ROUNDS):
            seq_runs.append(reachability_row(cfg.payload(False)))
            shard_runs.append(reachability_row(cfg.payload(True)))
        for runs, label in ((seq_runs, "seq"),
                            (shard_runs, f"shard{cfg.shards}")):
            best = min(runs, key=lambda r: r["traverse_seconds"])
            row = {"key": f"{cfg.paper_name}/{label}",
                   "circuit": best["circuit"],
                   "states": best["states"],
                   "iterations": best["iterations"],
                   "complete": best["complete"],
                   "backend": best["backend"],
                   "seconds": best["traverse_seconds"]}
            for field in ("shards", "resplits", "shard_fallbacks"):
                if field in best:
                    row[field] = best[field]
            rows.append(row)
        seq_best = min(r["traverse_seconds"] for r in seq_runs)
        shard_best = min(r["traverse_seconds"] for r in shard_runs)
        rows.append({"key": f"{cfg.paper_name}/speedup",
                     "speedup": round(seq_best / shard_best, 3)})
        # Byte identity: every run of either variant reaches the same
        # states in the same number of steps.
        for run in seq_runs + shard_runs:
            assert run["states"] == seq_runs[0]["states"]
            assert run["iterations"] == seq_runs[0]["iterations"]
            assert run["complete"]
    return rows


def render(rows: list[dict]) -> str:
    by_key = {row["key"]: row for row in rows}
    table = []
    for cfg in CIRCUITS:
        seq = by_key[f"{cfg.paper_name}/seq"]
        shard = by_key[f"{cfg.paper_name}/shard{cfg.shards}"]
        speedup = by_key[f"{cfg.paper_name}/speedup"]["speedup"]
        table.append([
            cfg.paper_name, seq["states"], seq["iterations"],
            f"{seq['seconds']:.2f}", cfg.shards,
            f"{shard['seconds']:.2f}", f"{speedup:.2f}x",
        ])
    return format_table(
        ["Ckt", "States", "Iters", "Seq time", "Shards",
         "Shard time", "Speedup"],
        table,
        title="Table 1 addendum: sharded vs sequential reachability")


@pytest.mark.benchmark(group="table1_sharded")
def test_table1_sharded(benchmark, bench_writer):
    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render(rows))
    bench_writer("table1_sharded", rows)
    # The sharded traversal must pay somewhere: at least one circuit
    # beats its interleaved sequential twin.  CI runners disable this
    # timing gate (REPRO_BENCH_TIMING_GATE=0) — shared machines are too
    # noisy to gate on wall clock; the deterministic fields still gate
    # through the trajectory comparator.
    speedups = [row["speedup"] for row in rows if "speedup" in row]
    if os.environ.get("REPRO_BENCH_TIMING_GATE", "1") != "0":
        assert max(speedups) > 1.0, speedups
