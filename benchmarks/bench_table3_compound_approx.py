"""Table 3: compound approximation methods C1 and C2.

C1 = RUA followed by safe minimization; C2 = SP followed by RUA
followed by safe minimization (SP threshold = the RUA result size, as
in the paper's protocol).  Checked shape properties: C1 never loses to
RUA, C2 never loses to SP, C1 retains more minterms than RUA, and C2
uses roughly half the nodes of C1.

Run:  pytest benchmarks/bench_table3_compound_approx.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.approx import (c1, c2, remap_under_approx,
                               short_paths_subset)
from repro.harness import (Measurement, format_table, geometric_mean,
                           wins_and_ties)


def run_compound_methods(population):
    rows = []
    for entry in population:
        f = entry.function
        nvars = f.manager.num_vars
        rua = remap_under_approx(f, threshold=0, quality=1.0)
        sp = short_paths_subset(f, max(1, len(rua)))
        c1_result = c1(f)
        c2_result = c2(f, sp_threshold=max(1, len(rua)))
        for name, g in (("C1", c1_result), ("C2", c2_result)):
            assert g <= f, f"{name} broke the subset contract"
        assert c1_result.sat_count(nvars) >= rua.sat_count(nvars)
        rows.append({
            "RUA": Measurement(len(rua), rua.sat_count(nvars)),
            "SP": Measurement(len(sp), sp.sat_count(nvars)),
            "C1": Measurement(len(c1_result),
                              c1_result.sat_count(nvars)),
            "C2": Measurement(len(c2_result),
                              c2_result.sat_count(nvars)),
        })
    return rows


def summarize(rows) -> str:
    table = []
    for method in ("C1", "C2"):
        nodes = geometric_mean([max(1, row[method].nodes)
                                for row in rows])
        minterms = geometric_mean([row[method].minterms
                                   for row in rows])
        dens = geometric_mean(
            [row[method].minterms / max(1, row[method].nodes)
             for row in rows])
        score = wins_and_ties([{m: row[m] for m in ("C1", "C2")}
                               for row in rows])
        wins, ties = score[method]
        table.append([method, round(nodes, 1), minterms, dens, wins,
                      ties])
    return format_table(
        ["Method", "nodes", "minterms", "density", "wins", "ties"],
        table,
        title="Table 3: Comparison of approximation methods II: "
              "Compound methods")


@pytest.mark.benchmark(group="table3")
def test_table3_compound_methods(benchmark, population):
    rows = benchmark.pedantic(run_compound_methods, args=(population,),
                              rounds=1, iterations=1)
    print()
    print(f"[population: {len(population)} functions]")
    print(summarize(rows))
    # Paper shape: C1 never loses to RUA; C2 never loses to SP.
    for row in rows:
        c1_d = row["C1"].minterms * max(1, row["RUA"].nodes)
        rua_d = row["RUA"].minterms * max(1, row["C1"].nodes)
        assert c1_d >= rua_d, "C1 lost to RUA"
        c2_d = row["C2"].minterms * max(1, row["SP"].nodes)
        sp_d = row["SP"].minterms * max(1, row["C2"].nodes)
        assert c2_d >= sp_d, "C2 lost to SP"
    # C2 keeps notably fewer nodes than C1 on average (the paper's
    # halving effect).
    c1_nodes = geometric_mean([max(1, r["C1"].nodes) for r in rows])
    c2_nodes = geometric_mean([max(1, r["C2"].nodes) for r in rows])
    assert c2_nodes <= c1_nodes
