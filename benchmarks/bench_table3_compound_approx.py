"""Table 3: compound approximation methods C1 and C2.

C1 = RUA followed by safe minimization; C2 = SP followed by RUA
followed by safe minimization (SP threshold = the RUA result size, as
in the paper's protocol).  Checked shape properties: C1 never loses to
RUA, C2 never loses to SP, C1 retains more minterms than RUA, and C2
uses roughly half the nodes of C1.

Fanned over the experiment engine one population spec per task (see
:func:`repro.harness.experiments.compound_approx_rows`); results are
persisted to ``BENCH_table3.json``.

Run:  pytest benchmarks/bench_table3_compound_approx.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.harness import (Measurement, Task, format_table,
                           geometric_mean, population_specs, run_tasks,
                           task_rows, wins_and_ties)
from repro.harness.experiments import (COMPOUND_METHODS,
                                       compound_approx_rows)

METHODS = COMPOUND_METHODS


def run_engine(scale, jobs):
    tasks = [Task(spec.name, (spec, scale.min_nodes))
             for spec in population_specs()]
    return run_tasks(compound_approx_rows, tasks, jobs=jobs)


def as_measurements(func_rows):
    return [{m: Measurement(nodes=row[f"{m}_nodes"],
                            minterms=row[f"{m}_minterms"])
             for m in METHODS} for row in func_rows]


def summarize(rows) -> str:
    table = []
    for method in ("C1", "C2"):
        nodes = geometric_mean([max(1, row[method].nodes)
                                for row in rows])
        minterms = geometric_mean([row[method].minterms
                                   for row in rows])
        dens = geometric_mean(
            [row[method].minterms / max(1, row[method].nodes)
             for row in rows])
        score = wins_and_ties([{m: row[m] for m in ("C1", "C2")}
                               for row in rows])
        wins, ties = score[method]
        table.append([method, round(nodes, 1), minterms, dens, wins,
                      ties])
    return format_table(
        ["Method", "nodes", "minterms", "density", "wins", "ties"],
        table,
        title="Table 3: Comparison of approximation methods II: "
              "Compound methods")


@pytest.mark.benchmark(group="table3")
def test_table3_compound_methods(benchmark, scale, jobs, bench_writer):
    run = benchmark.pedantic(run_engine, args=(scale, jobs),
                             rounds=1, iterations=1)
    assert not run.failures, [o.error for o in run.failures]
    func_rows = [row for outcome in run.outcomes
                 for row in outcome.result["rows"]]
    rows = as_measurements(func_rows)
    print()
    print(f"[population: {len(rows)} functions, jobs={run.jobs}]")
    print(summarize(rows))
    bench_writer("table3", func_rows + task_rows(run), run)
    # Paper shape: C1 never loses to RUA; C2 never loses to SP.
    for row in rows:
        c1_d = row["C1"].minterms * max(1, row["RUA"].nodes)
        rua_d = row["RUA"].minterms * max(1, row["C1"].nodes)
        assert c1_d >= rua_d, "C1 lost to RUA"
        c2_d = row["C2"].minterms * max(1, row["SP"].nodes)
        sp_d = row["SP"].minterms * max(1, row["C2"].nodes)
        assert c2_d >= sp_d, "C2 lost to SP"
    # C2 keeps notably fewer nodes than C1 on average (the paper's
    # halving effect).
    c1_nodes = geometric_mean([max(1, r["C1"].nodes) for r in rows])
    c2_nodes = geometric_mean([max(1, r["C2"].nodes) for r in rows])
    assert c2_nodes <= c1_nodes
