"""Ablations of the decomposition-point selectors (Section 3).

* **Band placement** — sweep the height band's position; the paper
  argues for a "middle band" (too low destroys recombination, too high
  leaves factors large).
* **Disjoint sampling budget** — the Disjoint selector is quadratic
  per candidate, so "only a fraction of the nodes are sampled"; this
  measures how the candidate cap affects factor balance.

Run:  pytest benchmarks/bench_ablation_decomp.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.bdd import shared_size
from repro.core.decomp import (band_points, decompose_at_points,
                               disjoint_points)
from repro.harness import format_table

BANDS = ((0.05, 0.25), (0.25, 0.5), (0.35, 0.65), (0.5, 0.75),
         (0.75, 0.95))


def run_band_sweep(entries):
    stats = {band: [] for band in BANDS}
    for entry in entries:
        f = entry.function
        for band in BANDS:
            g, h = decompose_at_points(f, band_points(f, *band))
            assert (g & h) == f
            stats[band].append((max(len(g), len(h)),
                                shared_size([g.node, h.node])))
    return stats


@pytest.mark.benchmark(group="ablation-decomp")
def test_band_placement_sweep(benchmark, population):
    entries = population[: min(12, len(population))]
    stats = benchmark.pedantic(run_band_sweep, args=(entries,),
                               rounds=1, iterations=1)
    table = []
    for band in BANDS:
        pairs = stats[band]
        mean_big = sum(p[0] for p in pairs) / len(pairs)
        mean_shared = sum(p[1] for p in pairs) / len(pairs)
        table.append([f"{band[0]:.2f}-{band[1]:.2f}",
                      round(mean_big, 1), round(mean_shared, 1)])
    print()
    print(format_table(["band", "max(|G|,|H|)", "shared"], table,
                       title="Band selector ablation: band placement"))


def run_sampling_sweep(entries, caps):
    stats = {cap: [] for cap in caps}
    for entry in entries:
        f = entry.function
        for cap in caps:
            points = disjoint_points(f, max_candidates=cap)
            g, h = decompose_at_points(f, points)
            assert (g & h) == f
            stats[cap].append(max(len(g), len(h)))
    return stats


@pytest.mark.benchmark(group="ablation-decomp")
def test_disjoint_sampling_budget(benchmark, population):
    entries = population[: min(12, len(population))]
    caps = (4, 16, 64)
    stats = benchmark.pedantic(run_sampling_sweep,
                               args=(entries, caps), rounds=1,
                               iterations=1)
    table = [[cap, round(sum(v) / len(v), 1)]
             for cap, v in stats.items()]
    print()
    print(format_table(["candidates", "mean max(|G|,|H|)"], table,
                       title="Disjoint selector ablation: "
                             "sampling budget"))
