"""Ablations of remapUnderApprox design choices (DESIGN.md section 6).

Three studies on the Table 2 population:

* **Replacement types** — RUA restricted to subsets of its three
  replacement types, quantifying how much *remap* and
  *replace-by-grandchild* buy over plain replace-by-0 (the paper's
  claim that versatile replacements are what separates RUA from UA).
* **Quality factor** — the size/minterm trade-off as quality sweeps
  through 0.5 .. 2.0 (Section 2.1.2: values below 1 are aggressive,
  above 1 conservative).
* **Iterated quality** — the compound "decreasing quality" schedule of
  Section 2.2 against single-pass RUA.

Run:  pytest benchmarks/bench_ablation_rua.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.core.approx import iterated_remap, remap_under_approx
from repro.core.approx.info import (REPLACE_GRANDCHILD, REPLACE_REMAP,
                                    REPLACE_ZERO)
from repro.harness import format_table, geometric_mean

VARIANTS = {
    "zero-only": (REPLACE_ZERO,),
    "remap-only": (REPLACE_REMAP,),
    "remap+zero": (REPLACE_REMAP, REPLACE_ZERO),
    "grandchild+zero": (REPLACE_GRANDCHILD, REPLACE_ZERO),
    "all (RUA)": (REPLACE_REMAP, REPLACE_GRANDCHILD, REPLACE_ZERO),
}


def run_replacement_ablation(population):
    rows = {name: [] for name in VARIANTS}
    for entry in population:
        f = entry.function
        nvars = f.manager.num_vars
        for name, kinds in VARIANTS.items():
            r = remap_under_approx(f, replacements=kinds)
            assert r <= f
            rows[name].append((len(r), r.sat_count(nvars)))
    return rows


@pytest.mark.benchmark(group="ablation-rua")
def test_replacement_type_ablation(benchmark, population):
    rows = benchmark.pedantic(run_replacement_ablation,
                              args=(population,), rounds=1,
                              iterations=1)
    table = []
    densities = {}
    for name, results in rows.items():
        nodes = geometric_mean([max(1, n) for n, _ in results])
        minterms = geometric_mean([m for _, m in results])
        dens = geometric_mean([m / max(1, n) for n, m in results])
        densities[name] = dens
        table.append([name, round(nodes, 1), minterms, dens])
    print()
    print(format_table(["Variant", "nodes", "minterms", "density"],
                       table,
                       title="RUA ablation: replacement types"))
    # The full replacement repertoire must not lose to zero-only.
    assert densities["all (RUA)"] >= densities["zero-only"] * 0.999


def run_quality_sweep(population, qualities):
    rows = {q: [] for q in qualities}
    for entry in population:
        f = entry.function
        nvars = f.manager.num_vars
        for q in qualities:
            r = remap_under_approx(f, quality=q)
            assert r <= f
            rows[q].append((len(r), r.sat_count(nvars)))
    return rows


@pytest.mark.benchmark(group="ablation-rua")
def test_quality_factor_sweep(benchmark, population):
    qualities = (0.5, 0.8, 1.0, 1.25, 1.5, 2.0)
    rows = benchmark.pedantic(run_quality_sweep,
                              args=(population, qualities), rounds=1,
                              iterations=1)
    table = []
    mean_minterms = {}
    for q in qualities:
        results = rows[q]
        nodes = geometric_mean([max(1, n) for n, _ in results])
        minterms = geometric_mean([m for _, m in results])
        mean_minterms[q] = minterms
        dens = geometric_mean([m / max(1, n) for n, m in results])
        table.append([q, round(nodes, 1), minterms, dens])
    print()
    print(format_table(["quality", "nodes", "minterms", "density"],
                       table, title="RUA ablation: quality factor"))
    # Higher quality keeps more minterms (monotone on the mean).
    ordered = [mean_minterms[q] for q in qualities]
    assert all(a <= b * 1.001 for a, b in zip(ordered, ordered[1:]))


def run_iterated(population):
    results = []
    for entry in population:
        f = entry.function
        nvars = f.manager.num_vars
        single = remap_under_approx(f)
        iterated = iterated_remap(f)
        results.append(((len(single), single.sat_count(nvars)),
                        (len(iterated), iterated.sat_count(nvars))))
    return results


@pytest.mark.benchmark(group="ablation-rua")
def test_iterated_quality_schedule(benchmark, population):
    results = benchmark.pedantic(run_iterated, args=(population,),
                                 rounds=1, iterations=1)
    single_d = geometric_mean([m / max(1, n)
                               for (n, m), _ in results])
    iterated_d = geometric_mean([m / max(1, n)
                                 for _, (n, m) in results])
    print()
    print(format_table(
        ["variant", "density"],
        [["single-pass RUA", single_d],
         ["iterated 1.5 -> 1.25 -> 1.0", iterated_d]],
        title="RUA ablation: iterated quality (Section 2.2)"))
