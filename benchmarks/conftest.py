"""Shared benchmark fixtures.

Scale control: set ``REPRO_BENCH_SCALE=full`` for population thresholds
and circuit sizes closer to the paper's (slower); the default ``quick``
scale finishes the whole benchmark suite in minutes on a laptop.
EXPERIMENTS.md records results at both scales.

Parallelism: ``--jobs N`` (or ``REPRO_BENCH_JOBS``) fans the table
benchmarks over the experiment engine's worker pool; ``--jobs 1`` runs
inline.  Either way the result rows are identical — workers rebuild
their population slice from the same deterministic specs.

Every table benchmark persists a ``BENCH_<name>.json`` trajectory file
(see :mod:`repro.harness.trajectory`) into ``REPRO_BENCH_DIR`` (default:
the current directory) through the ``bench_writer`` fixture.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.harness import (bench_payload, failure_rows,
                           generate_population, resolve_jobs,
                           write_bench)


def pytest_addoption(parser):
    parser.addoption(
        "--jobs", type=int, default=None,
        help="worker processes for the table benchmarks "
             "(default: REPRO_BENCH_JOBS or 1; <=0 means all cores)")
    parser.addoption(
        "--resume-from", default=None, metavar="BENCH_JSON",
        help="partial BENCH_*.json of an interrupted run: tasks whose "
             "ok rows carry a matching payload digest are skipped and "
             "their recorded rows merged into the fresh results "
             "(see repro.harness.trajectory.resume_tasks)")


@dataclass(frozen=True)
class BenchScale:
    name: str
    #: population node threshold (the paper used 5000)
    min_nodes: int
    #: Table 4's second, larger size class (the paper used 20000)
    large_min_nodes: int


SCALES = {
    "quick": BenchScale(name="quick", min_nodes=300, large_min_nodes=2000),
    "full": BenchScale(name="full", min_nodes=1000,
                       large_min_nodes=5000),
}


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of "
                         f"{sorted(SCALES)}, got {name!r}")


@pytest.fixture(scope="session")
def jobs(request) -> int:
    return resolve_jobs(request.config.getoption("--jobs"))


@pytest.fixture(scope="session")
def bench_dir() -> Path:
    return Path(os.environ.get("REPRO_BENCH_DIR", "."))


@pytest.fixture(scope="session")
def resume_from(request) -> str | None:
    """Path of a partial trajectory file to resume, or None."""
    return request.config.getoption("--resume-from")


@pytest.fixture(scope="session")
def bench_writer(scale, jobs, bench_dir):
    """``write(name, rows, run)`` -> path of ``BENCH_<name>.json``."""
    def write(name: str, rows: list[dict], run=None) -> Path:
        payload = bench_payload(
            name, rows, scale=scale.name, jobs=jobs,
            failures=failure_rows(run) if run is not None else None,
            total_seconds=run.total_seconds if run is not None else 0.0)
        return write_bench(bench_dir / f"BENCH_{name}.json", payload)
    return write


@pytest.fixture(scope="session")
def population(scale):
    """The Tables 2-4 function population (generated once per run)."""
    return generate_population(min_nodes=scale.min_nodes)
