"""Shared benchmark fixtures.

Scale control: set ``REPRO_BENCH_SCALE=full`` for population thresholds
and circuit sizes closer to the paper's (slower); the default ``quick``
scale finishes the whole benchmark suite in minutes on a laptop.
EXPERIMENTS.md records results at both scales.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.harness import generate_population


@dataclass(frozen=True)
class BenchScale:
    name: str
    #: population node threshold (the paper used 5000)
    min_nodes: int
    #: Table 4's second, larger size class (the paper used 20000)
    large_min_nodes: int


SCALES = {
    "quick": BenchScale(name="quick", min_nodes=300, large_min_nodes=2000),
    "full": BenchScale(name="full", min_nodes=1000,
                       large_min_nodes=5000),
}


@pytest.fixture(scope="session")
def scale() -> BenchScale:
    name = os.environ.get("REPRO_BENCH_SCALE", "quick")
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(f"REPRO_BENCH_SCALE must be one of "
                         f"{sorted(SCALES)}, got {name!r}")


@pytest.fixture(scope="session")
def population(scale):
    """The Tables 2-4 function population (generated once per run)."""
    return generate_population(min_nodes=scale.min_nodes)
