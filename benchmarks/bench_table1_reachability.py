"""Table 1: reachability analysis using BDD approximations.

Reproduces the protocol of the paper's Table 1: for each circuit, exact
breadth-first traversal is timed against high-density traversal with
RUA and with SP frontier subsetting, each with per-circuit tuned
parameters (threshold "Th", quality "Qual", and the partial-image
policy "PImg" — the paper likewise reports best-time parameter settings
found by trial and error).

The ISCAS-style circuits are replaced by the synthetic analogues of
DESIGN.md's substitution table:

=============  =================  ====================================
paper circuit  stand-in           behaviour reproduced
=============  =================  ====================================
s3330          checksum_memory    wide shallow comm controller; shells
                                  tie channels to a checksum
s1269          serial_multiplier  multiplication-relation frontier
                                  blow-up
s5378opt       shift_queue        control/datapath mix where SP beats
                                  RUA
am2910         am2910 model       exact BFS infeasible; high-density
                                  completes
=============  =================  ====================================

All (circuit, method) pairs fan over one experiment-engine run — each
task rebuilds its circuit from the factory registry and executes
:func:`repro.harness.experiments.reachability_row` — so a crashing or
diverging traversal never takes down the rest of the table.  BFS on
the am2910 row is bounded by a deadline standing in for the paper's
">2 weeks".  Results are persisted to ``BENCH_table1.json``.

Run:  pytest benchmarks/bench_table1_reachability.py --benchmark-only -s
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.harness import Task, format_table, run_tasks, task_rows
from repro.harness.experiments import reachability_row


@dataclass(frozen=True)
class Table1Row:
    """One circuit and its tuned per-method parameters."""

    paper_name: str
    factory: str
    args: tuple
    #: RUA: (threshold, quality, partial-image (trigger, threshold))
    rua: tuple
    #: SP: (threshold, partial-image)
    sp: tuple
    bfs_deadline: float
    hd_deadline: float

    def payloads(self):
        base = {"name": self.paper_name, "factory": self.factory,
                "args": self.args}
        yield dict(base, method="bfs", deadline=self.bfs_deadline)
        threshold, quality, pimg = self.rua
        yield dict(base, method="rua", threshold=threshold,
                   quality=quality, pimg=pimg,
                   deadline=self.hd_deadline)
        threshold, pimg = self.sp
        yield dict(base, method="sp", threshold=threshold, pimg=pimg,
                   deadline=self.hd_deadline)


QUICK_ROWS = (
    Table1Row("s3330", "checksum_memory", (4, 4),
              rua=(0, 1.0, None), sp=(50, None),
              bfs_deadline=120.0, hd_deadline=240.0),
    Table1Row("s1269", "serial_multiplier", (8,),
              rua=(0, 1.0, None), sp=(60, None),
              bfs_deadline=120.0, hd_deadline=240.0),
    Table1Row("s5378opt", "shift_queue", (5, 3),
              rua=(0, 1.0, None), sp=(60, None),
              bfs_deadline=120.0, hd_deadline=240.0),
    Table1Row("am2910", "am2910", (5, 3),
              rua=(0, 1.0, (20000, 8000)), sp=(150, (20000, 8000)),
              bfs_deadline=45.0, hd_deadline=300.0),
)

FULL_ROWS = (
    Table1Row("s3330", "checksum_memory", (8, 4),
              rua=(0, 1.0, (20000, 8000)), sp=(100, (20000, 8000)),
              bfs_deadline=600.0, hd_deadline=1200.0),
    Table1Row("s1269", "serial_multiplier", (8,),
              rua=(0, 1.0, None), sp=(60, None),
              bfs_deadline=600.0, hd_deadline=1200.0),
    Table1Row("s5378opt", "shift_queue", (6, 4),
              rua=(0, 1.0, None), sp=(100, None),
              bfs_deadline=600.0, hd_deadline=1200.0),
    Table1Row("am2910", "am2910", (6, 4),
              rua=(0, 0.5, (20000, 8000)), sp=(150, (20000, 8000)),
              bfs_deadline=150.0, hd_deadline=600.0),
)


def rows_for_scale() -> tuple:
    if os.environ.get("REPRO_BENCH_SCALE", "quick") == "full":
        return FULL_ROWS
    return QUICK_ROWS


def run_engine(jobs):
    tasks = [Task(f"{p['name']}/{p['method']}", p)
             for row in rows_for_scale() for p in row.payloads()]
    return run_tasks(reachability_row, tasks, jobs=jobs)


def render(rows_cfg, results) -> str:
    table = []
    fmt = lambda v: "timeout" if v is None else f"{v:.1f}"
    for cfg in rows_cfg:
        by_method = {m: results[f"{cfg.paper_name}/{m}"]
                     for m in ("bfs", "rua", "sp")}
        threshold, quality, pimg = cfg.rua
        pimg_text = "NA" if pimg is None else f"{pimg[0]}/{pimg[1]}"
        states = next((r["states"] for r in by_method.values()
                       if r.get("states") is not None), "?")
        peak = max(r["peak_nodes"] for r in by_method.values())
        table.append([
            cfg.paper_name, by_method["bfs"]["ff"], states,
            fmt(by_method["bfs"]["traverse_seconds"]),
            threshold, quality, pimg_text,
            fmt(by_method["rua"]["traverse_seconds"]),
            cfg.sp[0],
            fmt(by_method["sp"]["traverse_seconds"]),
            peak,
        ])
    return format_table(
        ["Ckt", "FF", "States", "BFS time", "Th", "Qual", "PImg",
         "RUA time", "SP Th", "SP time", "Peak nodes"],
        table,
        title="Table 1: Reachability analysis results using BDD "
              "approximations")


@pytest.mark.benchmark(group="table1")
def test_table1_reachability(benchmark, jobs, bench_writer):
    run = benchmark.pedantic(run_engine, args=(jobs,),
                             rounds=1, iterations=1)
    assert not run.failures, [o.error for o in run.failures]
    results = run.results()
    rows_cfg = rows_for_scale()
    print()
    print(f"[{len(run.outcomes)} traversals, jobs={run.jobs}]")
    print(render(rows_cfg, results))
    bench_writer("table1", list(results.values()) + task_rows(run),
                 run)
    for cfg in rows_cfg:
        by_method = {m: results[f"{cfg.paper_name}/{m}"]
                     for m in ("bfs", "rua", "sp")}
        # High-density traversal must agree with BFS on the reachable
        # state count whenever BFS finished within its budget.
        expected = by_method["bfs"]["states"]
        for method in ("rua", "sp"):
            states = by_method[method]["states"]
            if expected is not None:
                assert states == expected, \
                    f"{cfg.paper_name}: {method} reached a different " \
                    f"state count than BFS"
        if cfg.paper_name == "am2910" and \
                os.environ.get("REPRO_BENCH_SCALE") == "full":
            assert by_method["bfs"]["traverse_seconds"] is None, \
                "full-scale am2910 BFS should exceed its budget"
