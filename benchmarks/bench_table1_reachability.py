"""Table 1: reachability analysis using BDD approximations.

Reproduces the protocol of the paper's Table 1: for each circuit, exact
breadth-first traversal is timed against high-density traversal with
RUA and with SP frontier subsetting, each with per-circuit tuned
parameters (threshold "Th", quality "Qual", and the partial-image
policy "PImg" — the paper likewise reports best-time parameter settings
found by trial and error).

The ISCAS-style circuits are replaced by the synthetic analogues of
DESIGN.md's substitution table:

=============  =================  ====================================
paper circuit  stand-in           behaviour reproduced
=============  =================  ====================================
s3330          checksum_memory    wide shallow comm controller; shells
                                  tie channels to a checksum
s1269          serial_multiplier  multiplication-relation frontier
                                  blow-up
s5378opt       shift_queue        control/datapath mix where SP beats
                                  RUA
am2910         am2910 model       exact BFS infeasible; high-density
                                  completes
=============  =================  ====================================

BFS on the am2910 row is bounded by a deadline standing in for the
paper's ">2 weeks".  Quick scale keeps every run under a couple of
minutes; ``REPRO_BENCH_SCALE=full`` uses the larger instances recorded
in EXPERIMENTS.md.

Run:  pytest benchmarks/bench_table1_reachability.py --benchmark-only -s
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import pytest

from repro.core.approx import remap_under_approx, short_paths_subset
from repro.fsm import encode
from repro.fsm.am2910 import am2910
from repro.fsm.benchmarks import (checksum_memory, serial_multiplier,
                                  shift_queue)
from repro.harness import format_table
from repro.reach import (PartialImagePolicy, TransitionRelation,
                         TraversalLimit, bfs_reachability, count_states,
                         high_density_reachability)


@dataclass(frozen=True)
class Table1Row:
    """One circuit and its tuned per-method parameters."""

    paper_name: str
    make: object
    #: RUA: (threshold, quality, partial-image (trigger, threshold))
    rua: tuple
    #: SP: (threshold, partial-image)
    sp: tuple
    bfs_deadline: float
    hd_deadline: float


QUICK_ROWS = (
    Table1Row("s3330", lambda: checksum_memory(4, 4),
              rua=(0, 1.0, None), sp=(50, None),
              bfs_deadline=120.0, hd_deadline=240.0),
    Table1Row("s1269", lambda: serial_multiplier(8),
              rua=(0, 1.0, None), sp=(60, None),
              bfs_deadline=120.0, hd_deadline=240.0),
    Table1Row("s5378opt", lambda: shift_queue(5, 3),
              rua=(0, 1.0, None), sp=(60, None),
              bfs_deadline=120.0, hd_deadline=240.0),
    Table1Row("am2910", lambda: am2910(5, 3),
              rua=(0, 1.0, (20000, 8000)), sp=(150, (20000, 8000)),
              bfs_deadline=45.0, hd_deadline=300.0),
)

FULL_ROWS = (
    Table1Row("s3330", lambda: checksum_memory(8, 4),
              rua=(0, 1.0, (20000, 8000)), sp=(100, (20000, 8000)),
              bfs_deadline=600.0, hd_deadline=1200.0),
    Table1Row("s1269", lambda: serial_multiplier(8),
              rua=(0, 1.0, None), sp=(60, None),
              bfs_deadline=600.0, hd_deadline=1200.0),
    Table1Row("s5378opt", lambda: shift_queue(6, 4),
              rua=(0, 1.0, None), sp=(100, None),
              bfs_deadline=600.0, hd_deadline=1200.0),
    Table1Row("am2910", lambda: am2910(6, 4),
              rua=(0, 0.5, (20000, 8000)), sp=(150, (20000, 8000)),
              bfs_deadline=150.0, hd_deadline=600.0),
)


def rows_for_scale() -> tuple:
    if os.environ.get("REPRO_BENCH_SCALE", "quick") == "full":
        return FULL_ROWS
    return QUICK_ROWS


RESULTS: dict[str, dict] = {}


def run_bfs(row: Table1Row):
    circuit = row.make()
    encoded = encode(circuit)
    tr = TransitionRelation(encoded)
    try:
        result = bfs_reachability(tr, encoded.initial_states(),
                                  deadline=row.bfs_deadline)
        states = count_states(result.reached, encoded.state_vars)
        return (result.seconds, states, circuit.num_latches,
                encoded.manager.stats.peak_nodes)
    except TraversalLimit:
        return (None, None, circuit.num_latches,
                encoded.manager.stats.peak_nodes)


def run_hd(row: Table1Row, method: str):
    circuit = row.make()
    encoded = encode(circuit)
    tr = TransitionRelation(encoded)
    if method == "rua":
        threshold, quality, pimg = row.rua
        subset = lambda f, *, threshold=0: remap_under_approx(f, threshold, quality=quality)
    else:
        threshold, pimg = row.sp
        subset = lambda f, *, threshold=0: short_paths_subset(f, threshold)
    policy = None
    if pimg is not None:
        policy = PartialImagePolicy(subset=subset, trigger=pimg[0],
                                    threshold=pimg[1])
    result = high_density_reachability(
        tr, encoded.initial_states(), subset, threshold=threshold,
        partial=policy, deadline=row.hd_deadline)
    states = count_states(result.reached, encoded.state_vars)
    return result.seconds, states, encoded.manager.stats.peak_nodes


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("row", rows_for_scale(),
                         ids=lambda r: r.paper_name)
def test_table1_bfs(benchmark, row):
    seconds, states, latches, peak = benchmark.pedantic(
        run_bfs, args=(row,), rounds=1, iterations=1)
    entry = RESULTS.setdefault(row.paper_name, {})
    entry["ff"] = latches
    entry["bfs"] = seconds
    entry["states"] = states
    entry["peak"] = max(entry.get("peak", 0), peak)
    if row.paper_name == "am2910" and \
            os.environ.get("REPRO_BENCH_SCALE") == "full":
        assert seconds is None, \
            "full-scale am2910 BFS should exceed its budget"


@pytest.mark.benchmark(group="table1")
@pytest.mark.parametrize("method", ["rua", "sp"])
@pytest.mark.parametrize("row", rows_for_scale(),
                         ids=lambda r: r.paper_name)
def test_table1_high_density(benchmark, row, method):
    seconds, states, peak = benchmark.pedantic(
        run_hd, args=(row, method), rounds=1, iterations=1)
    entry = RESULTS.setdefault(row.paper_name, {})
    entry[method] = seconds
    entry["peak"] = max(entry.get("peak", 0), peak)
    expected = entry.get("states")
    if expected is not None:
        assert states == expected, \
            f"{method} reached a different state count than BFS"
    else:
        entry["states"] = states


@pytest.mark.benchmark(group="table1-report")
def test_table1_report(benchmark):
    """Prints the collected Table 1 (runs after the timed tests).

    Declared as a benchmark so it still runs under --benchmark-only;
    the measured body is a no-op.
    """
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not RESULTS:
        pytest.skip("timed Table 1 benchmarks did not run")
    rows = rows_for_scale()
    table = []
    for row in rows:
        entry = RESULTS.get(row.paper_name, {})
        fmt = lambda v: "timeout" if v is None else f"{v:.1f}"
        threshold, quality, pimg = row.rua
        pimg_text = "NA" if pimg is None else f"{pimg[0]}/{pimg[1]}"
        table.append([
            row.paper_name, entry.get("ff", "?"),
            entry.get("states", "?"),
            fmt(entry.get("bfs", None)),
            threshold, quality, pimg_text,
            fmt(entry.get("rua", None)),
            row.sp[0],
            fmt(entry.get("sp", None)),
            entry.get("peak", "?"),
        ])
    print()
    print(format_table(
        ["Ckt", "FF", "States", "BFS time", "Th", "Qual", "PImg",
         "RUA time", "SP Th", "SP time", "Peak nodes"],
        table,
        title="Table 1: Reachability analysis results using BDD "
              "approximations"))
