"""Dynamic reordering quality: sifting on order-sensitive functions.

The paper's experiments run with dynamic reordering "always turned on";
this bench verifies the substrate's sifting implementation does its
job: it must rescue the classic order-sensitive functions (adder carry
with separated operands shrinks exponentially; multiplier bits barely
improve for any order).

Run:  pytest benchmarks/bench_reorder_sifting.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.bdd import Manager
from repro.harness import format_table
from repro.harness.population import adder_carry, multiplier_bit


def sift_adder(n: int):
    manager = Manager()
    carry = adder_carry(manager, n)
    before = len(carry)
    manager.reorder()
    return before, len(carry)


@pytest.mark.benchmark(group="reorder")
@pytest.mark.parametrize("n", [8, 10, 12])
def test_sifting_rescues_separated_adder(benchmark, n):
    before, after = benchmark.pedantic(sift_adder, args=(n,),
                                       rounds=1, iterations=1)
    print()
    print(format_table(["n", "before", "after"], [[n, before, after]],
                       title="Sifting on the separated adder carry"))
    # Separated order is ~2^(n/2); interleaved is linear.  Sifting must
    # recover most of the gap.
    assert after < before / 4
    assert after <= 4 * n


def sift_multiplier():
    manager = Manager()
    f = multiplier_bit(manager, 6, 6)
    before = len(f)
    manager.reorder()
    return before, len(f)


@pytest.mark.benchmark(group="reorder")
def test_sifting_on_multiplier_bit(benchmark):
    before, after = benchmark.pedantic(sift_multiplier, rounds=1,
                                       iterations=1)
    print()
    print(format_table(["before", "after"], [[before, after]],
                       title="Sifting on a middle multiplier bit "
                             "(hard for every order)"))
    assert after <= before  # sifting never ends worse than it started
