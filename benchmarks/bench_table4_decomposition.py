"""Table 4: comparison of decomposition methods.

For two population size classes (the paper used >= 5000 and >= 20000
nodes; the scaled defaults are >= 300 and >= 2000), apply the three
two-way conjunctive decomposition methods — Cofactor, Disjoint, Band —
and report mean shared size, mean |G|, mean |H|, and wins/ties on the
size of the larger factor.

One engine run covers both size classes: the workers return ``f_nodes``
per row (:func:`repro.harness.experiments.decomposition_rows`), so the
large class is a filter over the same rows.  The run is cached at
module level and persisted to ``BENCH_table4.json``.

Run:  pytest benchmarks/bench_table4_decomposition.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.harness import (Task, format_table, population_specs,
                           run_tasks, task_rows)
from repro.harness.experiments import DECOMP_METHODS, decomposition_rows

METHODS = DECOMP_METHODS

_RUNS: dict = {}


def run_engine(scale, jobs):
    key = (scale.name, jobs)
    if key not in _RUNS:
        tasks = [Task(spec.name, (spec, scale.min_nodes))
                 for spec in population_specs()]
        _RUNS[key] = run_tasks(decomposition_rows, tasks, jobs=jobs)
    return _RUNS[key]


def flat_rows(run) -> list[dict]:
    return [row for outcome in run.outcomes
            for row in outcome.result["rows"]]


def score_wins(rows):
    wins = {m: 0 for m in METHODS}
    ties = {m: 0 for m in METHODS}
    for row in rows:
        best = min(row[f"{m}_big"] for m in METHODS)
        top = [m for m in METHODS if row[f"{m}_big"] == best]
        if len(top) == 1:
            wins[top[0]] += 1
        else:
            for m in top:
                ties[m] += 1
    return wins, ties


def summarize(rows, title) -> str:
    wins, ties = score_wins(rows)
    table = []
    n = max(1, len(rows))
    for method in METHODS:
        mean = lambda f: sum(row[f"{method}_{f}"] for row in rows) / n
        table.append([method.capitalize(), round(mean("shared"), 1),
                      round(mean("g"), 1), round(mean("h"), 1),
                      wins[method], ties[method]])
    return format_table(
        ["Method", "Shared", "G", "H", "wins", "ties"], table,
        title=title)


@pytest.mark.benchmark(group="table4")
def test_table4_small_class(benchmark, scale, jobs, bench_writer):
    run = benchmark.pedantic(run_engine, args=(scale, jobs),
                             rounds=1, iterations=1)
    assert not run.failures, [o.error for o in run.failures]
    rows = [r for r in flat_rows(run)
            if r["f_nodes"] >= scale.min_nodes]
    print()
    mean_size = sum(r["f_nodes"] for r in rows) / len(rows)
    print(summarize(
        rows,
        f"Table 4 (class >= {scale.min_nodes} nodes, "
        f"|f| mean = {mean_size:.1f}, {len(rows)} BDDs)"))
    bench_writer("table4", flat_rows(run) + task_rows(run), run)
    wins, _ = score_wins(rows)
    # Paper shape: Cofactor takes the most wins on the full class.
    assert wins["cofactor"] >= wins["disjoint"]
    assert wins["cofactor"] >= wins["band"]


@pytest.mark.benchmark(group="table4")
def test_table4_large_class(benchmark, scale, jobs):
    run = run_engine(scale, jobs)
    assert not run.failures, [o.error for o in run.failures]
    entries = [r for r in flat_rows(run)
               if r["f_nodes"] >= scale.large_min_nodes]
    if len(entries) < 3:
        pytest.skip("population has too few large BDDs at this scale")
    rows = benchmark.pedantic(lambda: entries, rounds=1, iterations=1)
    print()
    mean_size = sum(r["f_nodes"] for r in rows) / len(rows)
    print(summarize(
        rows,
        f"Table 4 (class >= {scale.large_min_nodes} nodes, "
        f"|f| mean = {mean_size:.1f}, {len(rows)} BDDs)"))
