"""Table 4: comparison of decomposition methods.

For two population size classes (the paper used >= 5000 and >= 20000
nodes; the scaled defaults are >= 300 and >= 2000), apply the three
two-way conjunctive decomposition methods — Cofactor, Disjoint, Band —
and report mean shared size, mean |G|, mean |H|, and wins/ties on the
size of the larger factor.

Run:  pytest benchmarks/bench_table4_decomposition.py --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.bdd import shared_size
from repro.core.decomp import decompose
from repro.harness import format_table

METHODS = ("cofactor", "disjoint", "band")


def run_decompositions(entries):
    rows = []
    for entry in entries:
        f = entry.function
        row = {}
        for method in METHODS:
            g, h = decompose(f, method)
            assert (g & h) == f, f"{method} broke f = g*h"
            big = max(len(g), len(h))
            row[method] = (shared_size([g.node, h.node]), len(g),
                           len(h), big)
        rows.append(row)
    return rows


def score_wins(rows):
    wins = {m: 0 for m in METHODS}
    ties = {m: 0 for m in METHODS}
    for row in rows:
        best = min(values[3] for values in row.values())
        top = [m for m in METHODS if row[m][3] == best]
        if len(top) == 1:
            wins[top[0]] += 1
        else:
            for m in top:
                ties[m] += 1
    return wins, ties


def summarize(rows, title) -> str:
    wins, ties = score_wins(rows)
    table = []
    for method in METHODS:
        n = len(rows)
        mean = lambda idx: sum(row[method][idx]
                               for row in rows) / max(1, n)
        table.append([method.capitalize(), round(mean(0), 1),
                      round(mean(1), 1), round(mean(2), 1),
                      wins[method], ties[method]])
    return format_table(
        ["Method", "Shared", "G", "H", "wins", "ties"], table,
        title=title)


@pytest.mark.benchmark(group="table4")
def test_table4_small_class(benchmark, population, scale):
    entries = [e for e in population
               if len(e.function) >= scale.min_nodes]
    rows = benchmark.pedantic(run_decompositions, args=(entries,),
                              rounds=1, iterations=1)
    print()
    mean_size = sum(len(e.function) for e in entries) / len(entries)
    print(summarize(
        rows,
        f"Table 4 (class >= {scale.min_nodes} nodes, "
        f"|f| mean = {mean_size:.1f}, {len(entries)} BDDs)"))
    wins, _ = score_wins(rows)
    # Paper shape: Cofactor takes the most wins on the full class.
    assert wins["cofactor"] >= wins["disjoint"]
    assert wins["cofactor"] >= wins["band"]


@pytest.mark.benchmark(group="table4")
def test_table4_large_class(benchmark, population, scale):
    entries = [e for e in population
               if len(e.function) >= scale.large_min_nodes]
    if len(entries) < 3:
        pytest.skip("population has too few large BDDs at this scale")
    rows = benchmark.pedantic(run_decompositions, args=(entries,),
                              rounds=1, iterations=1)
    print()
    mean_size = sum(len(e.function) for e in entries) / len(entries)
    print(summarize(
        rows,
        f"Table 4 (class >= {scale.large_min_nodes} nodes, "
        f"|f| mean = {mean_size:.1f}, {len(entries)} BDDs)"))
