"""Table 2 companion: ObjectStore vs ArrayStore on store workloads.

Times the same two store-level workloads on both node-store backends
and records the array-over-object speedup:

``chain-10k``
    a 10,000-level single-path chain — the deep, sparse shape from the
    stress suite — built bottom-up and then put through repeated
    whole-graph reclamation cycles against an offset garbage chain.
``dense-dnf``
    a wide 22-variable random structure (~30k nodes) with layered
    garbage regrown over the survivors between collection cycles.

Both workloads drive the public :class:`~repro.bdd.backend.NodeStore`
surface only (``add_level`` / ``mk`` / ``collect``), i.e. exactly the
boundary the pluggable-backend API defines: bulk allocation,
unique-table hits, and mark/sweep reclamation.  The flat store's win
comes from its columnar layout — GC sweeps the ``array('q')`` columns
with zero-copy numpy scans instead of walking per-node Python objects
(see ``docs/backends.md``).

Rows land in ``BENCH_table2_backends.json``; the committed copy under
``benchmarks/`` is the CI baseline.  Node counts are exact-compared
across runs (and asserted equal across backends in-process), wall
clocks are ratio-gated, and the recorded ``speedup`` float is
informational.

Run:  pytest benchmarks/bench_table2_backend_store.py --benchmark-only -s
"""

from __future__ import annotations

import random
import time

import pytest

from repro.bdd.arraystore import VECTOR_SWEEP
from repro.bdd.backend import create_store

CHAIN_LEVELS = 10_000
CHAIN_GC_ROUNDS = 12
DNF_VARS = 22
DNF_WIDTH = 3_000
DNF_GC_ROUNDS = 10
DNF_SEED = 7
#: best-of runs per (workload, backend) pair
REPS = 3
#: acceptance floor for the array-over-object speedup
MIN_SPEEDUP = 1.3


def chain_workload(backend: str) -> int:
    store = create_store(backend)
    for i in range(CHAIN_LEVELS):
        store.add_level(i)
    node = store.one
    for level in reversed(range(CHAIN_LEVELS)):
        node = store.mk(level, node, store.zero)
    roots = [node]
    for round_ in range(CHAIN_GC_ROUNDS):
        # Churn: an offset chain sharing no nodes with the kept one.
        g = store.zero
        for level in reversed(range(round_ % 7, CHAIN_LEVELS, 2)):
            g = store.mk(level, store.one, g)
        store.collect(roots)
    return store.num_nodes


def dnf_workload(backend: str) -> int:
    store = create_store(backend)
    for i in range(DNF_VARS):
        store.add_level(i)
    rng = random.Random(DNF_SEED)
    level_of = store.level_of

    def grow(pool, per_level):
        for level in reversed(range(DNF_VARS)):
            below = [p for p in pool if level_of(p) > level]
            fresh = []
            for _ in range(min(per_level, 3 * len(below))):
                hi = rng.choice(below)
                lo = rng.choice(below)
                if hi != lo:
                    fresh.append(store.mk(level, hi, lo))
            pool = fresh + pool[:200]
        return pool

    roots = grow([store.zero, store.one], DNF_WIDTH)[:100]
    for _ in range(DNF_GC_ROUNDS):
        grow(list(roots), DNF_WIDTH // 4)  # garbage over the survivors
        store.collect(roots)
    return store.num_nodes


WORKLOADS = (("chain-10k", chain_workload), ("dense-dnf", dnf_workload))


def timed(workload, backend: str) -> tuple[float, int]:
    best, nodes = float("inf"), 0
    for _ in range(REPS):
        start = time.perf_counter()
        nodes = workload(backend)
        best = min(best, time.perf_counter() - start)
    return best, nodes


def run_all() -> dict:
    return {name: {backend: timed(fn, backend)
                   for backend in ("object", "array")}
            for name, fn in WORKLOADS}


@pytest.mark.benchmark(group="table2")
def test_table2_backend_store(benchmark, bench_writer):
    if not VECTOR_SWEEP:
        pytest.skip("numpy unavailable: the array store falls back to "
                    "the portable GC sweep and the speedup claim does "
                    "not apply")
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows, speedups = [], {}
    print()
    for name, per_backend in results.items():
        obj_seconds, obj_nodes = per_backend["object"]
        arr_seconds, arr_nodes = per_backend["array"]
        assert obj_nodes == arr_nodes, \
            f"{name}: backends disagree on surviving nodes"
        speedups[name] = obj_seconds / arr_seconds
        rows.append({"key": f"{name}/object", "backend": "object",
                     "nodes": obj_nodes,
                     "seconds": round(obj_seconds, 3)})
        rows.append({"key": f"{name}/array", "backend": "array",
                     "nodes": arr_nodes,
                     "seconds": round(arr_seconds, 3),
                     "speedup": round(speedups[name], 2)})
        print(f"{name}: object={obj_seconds:.3f}s "
              f"array={arr_seconds:.3f}s "
              f"speedup={speedups[name]:.2f}x")
    # Persist before asserting so a dip still leaves a trajectory to
    # diagnose from.
    bench_writer("table2_backends", rows)
    for name, speedup in speedups.items():
        assert speedup >= MIN_SPEEDUP, \
            f"{name}: array store only {speedup:.2f}x faster " \
            f"(need >= {MIN_SPEEDUP}x)"
