"""Suites for the persistent BDD store (:mod:`repro.store`)."""
