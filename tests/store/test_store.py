"""The persistent BDD store: round-trips, dedup, index semantics."""

from __future__ import annotations

import random

import pytest

from repro.bdd import Manager, dump
from repro.store import (BDDStore, StoreCorruptError, StoreError,
                         decode_roots, encode_roots)
from repro.store.format import content_address

from ..helpers import random_function, truth_table

BACKENDS = ["object", "array"]
NAMES = [f"x{i}" for i in range(8)]


def build_function(backend, seed=7, terms=10):
    manager = Manager(backend=backend)
    variables = manager.add_vars(*NAMES)
    rng = random.Random(seed)
    function = random_function(manager, variables, rng, terms=terms,
                               width=4)
    return manager, function


@pytest.mark.parametrize("backend", BACKENDS)
class TestRoundTrip:
    def test_save_load_exact(self, backend, tmp_path):
        manager, f = build_function(backend)
        store = BDDStore(tmp_path / "store")
        digest = store.save("f", f, tags=("unit",))
        assert len(digest) == 64

        target = Manager(backend=backend)
        g = store.load(target, "f")
        assert len(g) == len(f)
        assert g.sat_count() == f.sat_count()
        assert truth_table(g, NAMES) == truth_table(f, NAMES)
        assert dump(g) == dump(f)

    def test_constants_round_trip(self, backend, tmp_path):
        manager = Manager(backend=backend)
        store = BDDStore(tmp_path / "store")
        store.save("t", manager.true)
        store.save("f", manager.false)
        target = Manager(backend=backend)
        assert store.load(target, "t").is_true
        assert store.load(target, "f").is_false

    def test_manager_convenience_surface(self, backend, tmp_path):
        manager, f = build_function(backend)
        store = BDDStore(tmp_path / "store")
        digest = manager.save_function(store, "f", f, tags=("api",))
        target = Manager(backend=backend)
        g = target.load_function(store, "f")
        assert store.entries()[0]["hash"] == digest
        assert g.sat_count() == f.sat_count()

    def test_multi_root_object_with_extra(self, backend, tmp_path):
        manager, f = build_function(backend)
        g = f | manager.var("x0")
        store = BDDStore(tmp_path / "store")
        store.save_roots("pair", manager, {"f": f, "g": g},
                         extra={"note": "checkpoint-ish", "n": 3})
        target = Manager(backend=backend)
        roots, extra = store.load_roots(target, "pair")
        assert set(roots) == {"f", "g"}
        assert extra == {"note": "checkpoint-ish", "n": 3}
        assert roots["f"].sat_count() == f.sat_count()
        assert roots["g"].sat_count() == g.sat_count()

    def test_load_into_reversed_order_uses_ite(self, backend, tmp_path):
        manager, f = build_function(backend)
        store = BDDStore(tmp_path / "store")
        store.save("f", f)
        target = Manager(vars=NAMES[::-1], backend=backend)
        g = store.load(target, "f")
        assert truth_table(g, NAMES) == truth_table(f, NAMES)

    def test_declare_false_rejects_unknown_vars(self, backend,
                                                tmp_path):
        manager, f = build_function(backend)
        store = BDDStore(tmp_path / "store")
        store.save("f", f)
        with pytest.raises(StoreError, match="unknown variable"):
            store.load(Manager(backend=backend), "f", declare=False)


class TestContentAddressing:
    def test_cross_backend_identical_bytes(self):
        _, f_obj = build_function("object")
        _, f_arr = build_function("array")
        blob_obj = encode_roots(f_obj.manager, {"f": f_obj})
        blob_arr = encode_roots(f_arr.manager, {"f": f_arr})
        # The level-ordered canonical encoding must not leak backend
        # or insertion-history details: identical functions address to
        # identical objects on both backends.
        assert blob_obj == blob_arr
        assert content_address(blob_obj) == content_address(blob_arr)

    def test_idempotent_saves_share_one_object(self, tmp_path):
        manager, f = build_function("object")
        store = BDDStore(tmp_path / "store")
        d1 = store.save("a", f)
        d2 = store.save("b", f)
        assert d1 == d2
        objects = [p for p in store.objects.rglob("*") if p.is_file()]
        assert len(objects) == 1
        # Two names, one object; deleting one name keeps the other
        # loadable (objects are shared, never reclaimed by delete).
        assert store.delete("a")
        g = store.load(Manager(), "b")
        assert g.sat_count() == f.sat_count()

    def test_encode_decode_without_a_store(self):
        manager, f = build_function("object")
        blob = encode_roots(manager, {"f": f})
        roots = decode_roots(Manager(), blob)
        assert roots["f"].sat_count() == f.sat_count()


class TestIndex:
    def test_entries_tags_and_prefix(self, tmp_path):
        manager, f = build_function("object")
        store = BDDStore(tmp_path / "store")
        store.save("circ/output/o1", f, tags=("run1", "outputs"))
        store.save("circ/next/n1", f)
        store.save("other", f)
        assert len(store) == 3
        assert "circ/output/o1" in store
        assert "nope" not in store
        names = [e["name"] for e in store.entries(prefix="circ/")]
        assert names == ["circ/next/n1", "circ/output/o1"]
        entry = store.entries(prefix="circ/output/")[0]
        assert entry["tags"] == ["run1", "outputs"]
        assert entry["nodes"] == len(f)
        assert sorted(store) == sorted(e["name"]
                                       for e in store.entries())

    def test_unknown_name_is_structured(self, tmp_path):
        store = BDDStore(tmp_path / "store")
        with pytest.raises(StoreError, match="unknown function"):
            store.load(Manager(), "ghost")

    def test_rootless_object_refuses_single_load(self, tmp_path):
        manager, f = build_function("object")
        store = BDDStore(tmp_path / "store")
        store.save_roots("ck", manager, {"reached": f})
        with pytest.raises(StoreError, match="multi-root"):
            store.load(Manager(), "ck")

    def test_empty_name_rejected(self, tmp_path):
        manager, f = build_function("object")
        store = BDDStore(tmp_path / "store")
        with pytest.raises(StoreError):
            store.save("", f)

    def test_root_must_be_a_root(self, tmp_path):
        manager, f = build_function("object")
        store = BDDStore(tmp_path / "store")
        with pytest.raises(StoreError):
            store.save_roots("x", manager, {"f": f}, root="g")

    def test_repoint_replaces_entry(self, tmp_path):
        manager, f = build_function("object")
        g = f & manager.var("x1")
        store = BDDStore(tmp_path / "store")
        store.save("f", f)
        store.save("f", g)
        assert len(store) == 1
        loaded = store.load(Manager(), "f")
        assert loaded.sat_count() == g.sat_count()

    def test_missing_store_without_create(self, tmp_path):
        with pytest.raises(StoreError, match="no store"):
            BDDStore(tmp_path / "absent", create=False)

    def test_newer_schema_is_refused(self, tmp_path):
        import sqlite3

        store = BDDStore(tmp_path / "store")
        with sqlite3.connect(store.index_path) as conn:
            conn.execute("UPDATE meta SET value = '999' "
                         "WHERE key = 'schema_version'")
        with pytest.raises(StoreError, match="schema"):
            BDDStore(tmp_path / "store")
