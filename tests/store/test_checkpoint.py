"""Checkpoint/resume equivalence: killed runs resume byte-identically.

The crash model: a traversal checkpoints every iteration and dies at an
arbitrary point (here simulated with ``max_iterations=k``, which stops
the loop *after* iteration ``k``'s checkpoint exactly like a kill -9
between iterations would).  A fresh process — new manager, new
checkpointer with ``resume=True`` — must then finish the traversal and
produce a reached set whose :func:`repro.bdd.dump` bytes equal an
uninterrupted oracle's, on both node-store backends, sequential and
sharded.
"""

from __future__ import annotations

import random

import pytest

from repro.bdd import dump
from repro.core.approx import remap_under_approx
from repro.fsm import encode
from repro.fsm.benchmarks import counter, token_ring
from repro.reach import (FrontierSharder, ShardConfig,
                         TransitionRelation, bfs_reachability,
                         high_density_reachability)
from repro.store import BDDStore, ReachCheckpointer, StoreError
from repro.store.checkpoint import reach_spec

BACKENDS = ["object", "array"]
SPEC = reach_spec("counter", 5, "bfs")


def traversal(backend):
    encoded = encode(counter(5), backend=backend)
    return TransitionRelation(encoded), encoded.initial_states()


def run_bfs(backend, store_dir, *, resume, max_iterations=None,
            every=1):
    tr, init = traversal(backend)
    ck = ReachCheckpointer(BDDStore(store_dir), "reach/counter5",
                           every=every, spec=SPEC, resume=resume)
    result = bfs_reachability(tr, init, max_iterations=max_iterations,
                              checkpointer=ck)
    return result, ck


@pytest.mark.parametrize("backend", BACKENDS)
class TestBfsResume:
    def test_every_kill_point_resumes_identically(self, backend,
                                                  tmp_path):
        oracle = bfs_reachability(*traversal(backend))
        expected = dump(oracle.reached)
        # counter(5) has a diameter of 31; probe a spread of kill
        # points including first iteration and one past the fixpoint.
        for kill_at in (1, 3, 7, oracle.iterations, None):
            store_dir = tmp_path / f"kill-{kill_at}"
            partial, _ = run_bfs(backend, store_dir, resume=False,
                                 max_iterations=kill_at)
            resumed, _ = run_bfs(backend, store_dir, resume=True)
            assert dump(resumed.reached) == expected
            assert resumed.iterations == oracle.iterations
            assert resumed.size_trace == oracle.size_trace
            assert resumed.frontier_trace == oracle.frontier_trace
            assert resumed.complete

    def test_randomized_kill_points(self, backend, tmp_path):
        oracle = bfs_reachability(*traversal(backend))
        expected = dump(oracle.reached)
        rng = random.Random(2026)
        for case in range(3):
            kill_at = rng.randrange(1, oracle.iterations)
            store_dir = tmp_path / f"case-{case}"
            run_bfs(backend, store_dir, resume=False,
                    max_iterations=kill_at)
            resumed, _ = run_bfs(backend, store_dir, resume=True)
            assert dump(resumed.reached) == expected, kill_at

    def test_completed_checkpoint_returns_verbatim(self, backend,
                                                   tmp_path):
        full, _ = run_bfs(backend, tmp_path / "s", resume=False)
        again, ck = run_bfs(backend, tmp_path / "s", resume=True)
        assert dump(again.reached) == dump(full.reached)
        assert again.iterations == full.iterations
        # The complete flag short-circuits the loop: nothing re-saved.
        assert ck.saves == 0


def test_resume_across_backends(tmp_path):
    """A checkpoint written by one backend resumes on the other —
    canonical object bytes carry no backend fingerprint."""
    oracle = bfs_reachability(*traversal("object"))
    run_bfs("object", tmp_path / "s", resume=False, max_iterations=9)
    resumed, _ = run_bfs("array", tmp_path / "s", resume=True)
    assert dump(resumed.reached) == dump(oracle.reached)


def test_spec_mismatch_refuses_resume(tmp_path):
    run_bfs("object", tmp_path / "s", resume=False, max_iterations=2)
    tr, init = traversal("object")
    ck = ReachCheckpointer(BDDStore(tmp_path / "s"), "reach/counter5",
                           spec=reach_spec("different", "problem"),
                           resume=True)
    with pytest.raises(StoreError, match="different problem"):
        bfs_reachability(tr, init, checkpointer=ck)


def test_method_mismatch_refuses_resume(tmp_path):
    run_bfs("object", tmp_path / "s", resume=False, max_iterations=2)
    tr, init = traversal("object")
    ck = ReachCheckpointer(BDDStore(tmp_path / "s"), "reach/counter5",
                           spec=SPEC, resume=True)
    with pytest.raises(StoreError, match="method"):
        high_density_reachability(tr, init, remap_under_approx,
                                  checkpointer=ck)


def test_cadence_reduces_saves(tmp_path):
    full, every1 = run_bfs("object", tmp_path / "a", resume=False)
    _, every8 = run_bfs("object", tmp_path / "b", resume=False,
                        every=8)
    assert every8.saves < every1.saves
    # Coarser cadence costs extra re-traversal on resume but still
    # converges to the same set.
    run_bfs("object", tmp_path / "c", resume=False, every=8,
            max_iterations=13)
    resumed, _ = run_bfs("object", tmp_path / "c", resume=True,
                         every=8)
    assert dump(resumed.reached) == dump(full.reached)


def test_every_below_one_rejected(tmp_path):
    with pytest.raises(ValueError, match="every"):
        ReachCheckpointer(BDDStore(tmp_path / "s"), "x", every=0)


@pytest.mark.parametrize("backend", BACKENDS)
def test_high_density_resume(backend, tmp_path):
    encoded = encode(token_ring(4), backend=backend)
    tr = TransitionRelation(encoded)
    init = encoded.initial_states()
    oracle = high_density_reachability(tr, init, remap_under_approx)
    spec = reach_spec("token_ring", 4, "hd")

    def run(resume, max_iterations=None):
        encoded2 = encode(token_ring(4), backend=backend)
        ck = ReachCheckpointer(BDDStore(tmp_path / "s"), "reach/tr4",
                               spec=spec, resume=resume)
        return high_density_reachability(
            TransitionRelation(encoded2), encoded2.initial_states(),
            remap_under_approx, max_iterations=max_iterations,
            checkpointer=ck)

    run(False, max_iterations=2)
    resumed = run(True)
    assert dump(resumed.reached) == dump(oracle.reached)
    assert resumed.iterations == oracle.iterations


@pytest.mark.parametrize("backend", BACKENDS)
def test_sharded_resume_matches_sequential(backend, tmp_path):
    """Kill a sharded traversal, resume it sharded; the reached set
    equals the sequential uninterrupted oracle's bytes."""
    oracle = bfs_reachability(*traversal(backend))
    expected = dump(oracle.reached)

    def run(resume, max_iterations=None):
        tr, init = traversal(backend)
        ck = ReachCheckpointer(BDDStore(tmp_path / "s"),
                               "reach/counter5", spec=SPEC,
                               resume=resume)
        with FrontierSharder(tr, ShardConfig(shards=2,
                                             min_frontier=0)) as sh:
            return bfs_reachability(tr, init,
                                    max_iterations=max_iterations,
                                    sharder=sh, checkpointer=ck)

    run(False, max_iterations=11)
    resumed = run(True)
    assert dump(resumed.reached) == expected
    assert resumed.iterations == oracle.iterations
