"""Fault injection: every corrupted read is detected, never misread.

The durability contract of ``docs/persistence.md``: an interrupted or
corrupted object write is either *invisible* (atomic rename never
exposed it) or *detected* as a structured
:class:`~repro.store.errors.StoreCorruptError` — a store can refuse to
answer, but it must never return a silently wrong BDD.  The sweep here
is exhaustive over one stored object: a bit flip at every byte offset
and a truncation at every length, on both node-store backends.
"""

from __future__ import annotations

import random

import pytest

from repro.bdd import Manager
from repro.store import BDDStore, StoreCorruptError, StoreError

from ..helpers import random_function

BACKENDS = ["object", "array"]
NAMES = [f"x{i}" for i in range(6)]


def fresh(backend="object"):
    """A target manager with the full variable order pre-declared (the
    stored object only carries the support, so sat counts would differ
    in a bare manager)."""
    manager = Manager(backend=backend)
    manager.add_vars(*NAMES)
    return manager


def stored(tmp_path, backend):
    """A store holding one saved function; returns (store, f, path)."""
    manager = fresh(backend)
    f = random_function(manager, [manager.var(n) for n in NAMES],
                        random.Random(11), terms=6, width=3)
    store = BDDStore(tmp_path / "store")
    digest = store.save("f", f, tags=("faults",))
    return store, f, store._object_path(digest)


@pytest.mark.parametrize("backend", BACKENDS)
class TestObjectFaults:
    def test_every_bit_flip_is_detected(self, tmp_path, backend):
        store, f, path = stored(tmp_path, backend)
        pristine = path.read_bytes()
        for offset in range(len(pristine)):
            mutated = bytearray(pristine)
            mutated[offset] ^= 0xFF
            path.write_bytes(bytes(mutated))
            with pytest.raises(StoreCorruptError):
                store.load(fresh(backend), "f")
        # The sweep must not have poisoned anything: restoring the
        # bytes restores the function.
        path.write_bytes(pristine)
        g = store.load(fresh(backend), "f")
        assert g.sat_count() == f.sat_count()

    def test_every_truncation_is_detected(self, tmp_path, backend):
        store, f, path = stored(tmp_path, backend)
        pristine = path.read_bytes()
        for length in range(len(pristine)):
            path.write_bytes(pristine[:length])
            with pytest.raises(StoreCorruptError):
                store.load(fresh(backend), "f")
        path.write_bytes(pristine)
        assert store.load(fresh(backend),
                          "f").sat_count() == f.sat_count()

    def test_trailing_garbage_is_detected(self, tmp_path, backend):
        store, _, path = stored(tmp_path, backend)
        path.write_bytes(path.read_bytes() + b"\x00")
        with pytest.raises(StoreCorruptError):
            store.load(fresh(backend), "f")

    def test_missing_object_is_structured(self, tmp_path, backend):
        store, _, path = stored(tmp_path, backend)
        path.unlink()
        with pytest.raises(StoreError, match="missing object"):
            store.load(fresh(backend), "f")


class TestTornWrites:
    def test_tmp_files_are_invisible_and_swept(self, tmp_path):
        store, f, path = stored(tmp_path, "object")
        # A crash between open and os.replace leaves a .tmp-* file:
        # simulate one and verify no read path ever sees it.
        torn = path.parent / f".tmp-999-{path.name}"
        torn.write_bytes(path.read_bytes()[:7])
        assert store.load(fresh(), "f").sat_count() == f.sat_count()
        assert [e["name"] for e in store.entries()] == ["f"]
        assert store.sweep_tmp() == 1
        assert not torn.exists()
        assert path.exists()

    def test_wrong_content_address_is_detected(self, tmp_path):
        store, _, path = stored(tmp_path, "object")
        # An object renamed to the wrong digest (or a colliding torn
        # write) fails address verification even when its frames are
        # internally consistent.
        impostor = store._object_path("ab" * 32)
        impostor.parent.mkdir(parents=True, exist_ok=True)
        impostor.write_bytes(path.read_bytes())
        with pytest.raises(StoreCorruptError, match="content address"):
            store.get_object(fresh(), "ab" * 32)


class TestIndexFaults:
    def test_garbage_index_is_detected(self, tmp_path):
        store, _, _ = stored(tmp_path, "object")
        store.index_path.write_bytes(b"\x7fELF not a database\n" * 40)
        with pytest.raises(StoreCorruptError):
            BDDStore(tmp_path / "store")

    def test_malformed_extra_is_detected(self, tmp_path):
        import sqlite3

        store, _, _ = stored(tmp_path, "object")
        with sqlite3.connect(store.index_path) as conn:
            conn.execute("UPDATE functions SET extra = '{not json'")
        with pytest.raises(StoreCorruptError, match="extra"):
            store.load_roots(fresh(), "f")

    def test_index_object_disagreement_is_detected(self, tmp_path):
        import sqlite3

        store, _, path = stored(tmp_path, "object")
        with sqlite3.connect(store.index_path) as conn:
            conn.execute("UPDATE functions SET root = 'ghost'")
        with pytest.raises(StoreCorruptError, match="no root"):
            store.load(fresh(), "f")
