"""Shared pytest fixtures."""

from __future__ import annotations

import random

import pytest

from repro.bdd import Manager

from .helpers import fresh_manager, random_function


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20240615)


@pytest.fixture
def m8():
    """Manager with 8 variables and the variable handles."""
    return fresh_manager(8)


@pytest.fixture
def m12():
    """Manager with 12 variables and the variable handles."""
    return fresh_manager(12)


@pytest.fixture
def random_functions(m12, rng):
    """A batch of random functions on a 12-variable manager."""
    manager, variables = m12
    return manager, [random_function(manager, variables, rng,
                                     terms=6 + i, width=4)
                     for i in range(8)]
