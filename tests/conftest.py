"""Shared pytest fixtures, including the auto-armed graph sanitizer.

Every test that builds a small manager (up to ``SANITIZE_NODE_CAP``
live nodes) gets a free :meth:`~repro.bdd.manager.Manager.debug_check`
sweep at teardown: ``Manager.__init__`` is wrapped for the duration of
each test to track the instances it creates, and each surviving tracked
manager is verified after the test body finishes.  Apply the
``no_sanitize`` marker to opt a test out (e.g. tests that corrupt a
manager on purpose).
"""

from __future__ import annotations

import random
import weakref

import pytest

from repro.bdd import Manager

from .helpers import fresh_manager, random_function

#: Managers above this many live nodes are skipped by the teardown
#: sweep — full verification is linear in the graph, and huge stress
#: managers would dominate suite wall-clock.
SANITIZE_NODE_CAP = 5000


@pytest.fixture(autouse=True)
def _sanitize_small_managers(request):
    """Run debug_check over every small manager a test created."""
    if request.node.get_closest_marker("no_sanitize"):
        yield
        return
    tracked: list[weakref.ref[Manager]] = []
    original_init = Manager.__init__

    def tracking_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        tracked.append(weakref.ref(self))

    Manager.__init__ = tracking_init
    try:
        yield
    finally:
        Manager.__init__ = original_init
    for ref in tracked:
        manager = ref()
        if manager is not None and len(manager) <= SANITIZE_NODE_CAP:
            manager.debug_check()


@pytest.fixture
def sanitized_manager():
    """A fresh 8-variable manager, debug_check-ed on teardown.

    Unlike the autouse sweep this fixture verifies unconditionally —
    use it when a test should fail loudly if it corrupts the graph,
    regardless of size.
    """
    manager, variables = fresh_manager(8)
    yield manager, variables
    manager.debug_check()


@pytest.fixture
def rng() -> random.Random:
    return random.Random(20240615)


@pytest.fixture
def m8():
    """Manager with 8 variables and the variable handles."""
    return fresh_manager(8)


@pytest.fixture
def m12():
    """Manager with 12 variables and the variable handles."""
    return fresh_manager(12)


@pytest.fixture
def random_functions(m12, rng):
    """A batch of random functions on a 12-variable manager."""
    manager, variables = m12
    return manager, [random_function(manager, variables, rng,
                                     terms=6 + i, width=4)
                     for i in range(8)]
