"""End-to-end integration: netlist -> BDDs -> traversal -> paper ops.

Each test exercises a full pipeline across subsystems, the way the
paper's reachability engine composes them.
"""

from __future__ import annotations

import pytest

from repro.bdd import conjoin_all, dump, load, transfer, Manager
from repro.core.approx import (c1, remap_under_approx,
                               short_paths_subset)
from repro.core.decomp import (conjoin, decompose, mcmillan_decompose)
from repro.fsm import encode
from repro.fsm.benchmarks import checksum_memory, shift_queue
from repro.fsm.blif import parse_blif, write_blif
from repro.reach import (TransitionRelation, bfs_reachability,
                         count_states, high_density_reachability)


class TestFullPipeline:
    @pytest.fixture(scope="class")
    def traversal(self):
        circuit = checksum_memory(4, 3)
        encoded = encode(circuit)
        tr = TransitionRelation(encoded)
        # Stop mid-way so the reached set is a nontrivial BDD.
        partial = bfs_reachability(tr, encoded.initial_states(),
                                   max_iterations=3)
        return circuit, encoded, tr, partial

    def test_blif_roundtrip_preserves_reachability(self, traversal):
        circuit, encoded, tr, partial = traversal
        text = write_blif(circuit)
        reparsed = parse_blif(text)
        encoded2 = encode(reparsed)
        tr2 = TransitionRelation(encoded2)
        again = bfs_reachability(tr2, encoded2.initial_states(),
                                 max_iterations=3)
        assert count_states(again.reached, encoded2.state_vars) \
            == count_states(partial.reached, encoded.state_vars)

    def test_approximate_then_traverse(self, traversal):
        circuit, encoded, tr, partial = traversal
        # Approximating the reached set yields a valid smaller set of
        # genuinely reachable states.
        subset = remap_under_approx(partial.reached)
        assert subset <= partial.reached
        # Its image stays within the true reachable set.
        full = bfs_reachability(tr, encoded.initial_states())
        assert tr.image(subset) <= full.reached

    def test_decompose_reached_set(self, traversal):
        circuit, encoded, tr, partial = traversal
        for method in ("cofactor", "band", "disjoint"):
            g, h = decompose(partial.reached, method)
            assert (g & h) == partial.reached

    def test_mcmillan_reached_set(self, traversal):
        circuit, encoded, tr, partial = traversal
        factors = mcmillan_decompose(partial.reached)
        assert conjoin(factors) == partial.reached
        manager = partial.reached.manager
        assert conjoin_all(manager, factors) == partial.reached

    def test_serialize_reached_set_across_managers(self, traversal):
        circuit, encoded, tr, partial = traversal
        target = Manager()
        copy = transfer(partial.reached, target)
        assert copy.sat_count(encoded.manager.num_vars) \
            == partial.reached.sat_count()
        reloaded = load(target, dump(partial.reached))
        assert reloaded == copy

    def test_compound_approx_of_frontier(self, traversal):
        circuit, encoded, tr, partial = traversal
        frontier = partial.reached
        compact = c1(frontier)
        assert compact <= frontier
        assert compact.density() >= frontier.density() - 1e-9


class TestHighDensityMatrix:
    @pytest.mark.parametrize("threshold", [0, 16, 256])
    def test_queue_thresholds_all_exact(self, threshold):
        circuit = shift_queue(4, 2)
        encoded = encode(circuit)
        tr = TransitionRelation(encoded)
        exact = bfs_reachability(tr, encoded.initial_states())
        expected = count_states(exact.reached, encoded.state_vars)
        for subset in (lambda f, *, threshold=0: remap_under_approx(f, threshold),
                       lambda f, *, threshold=0: short_paths_subset(f, max(1, threshold))):
            encoded2 = encode(circuit)
            tr2 = TransitionRelation(encoded2)
            result = high_density_reachability(
                tr2, encoded2.initial_states(), subset,
                threshold=threshold)
            assert count_states(result.reached,
                                encoded2.state_vars) == expected

    @pytest.mark.parametrize("cluster_limit", [1, 100, 10 ** 9])
    def test_cluster_limits_do_not_change_reachability(self,
                                                       cluster_limit):
        circuit = shift_queue(3, 2)
        encoded = encode(circuit)
        tr = TransitionRelation(encoded, cluster_limit=cluster_limit)
        result = bfs_reachability(tr, encoded.initial_states())
        # 216 reachable states, independent of the clustering.
        assert count_states(result.reached, encoded.state_vars) == 216
