"""CFG builder tests: shapes, cycles, SCC granularity, pseudo-stmts."""

from __future__ import annotations

import ast

import pytest

from repro.analysis.cfg import CFG, DefBinding, build_cfg


def cfg_of(source: str) -> CFG:
    tree = ast.parse(source)
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def all_statements(cfg: CFG):
    return list(cfg.statements(cfg.blocks))


def reachable(cfg: CFG) -> set[int]:
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        for succ in cfg.blocks[stack.pop()].successors:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def test_straight_line_has_no_cycles():
    cfg = cfg_of("def f(x):\n    y = x + 1\n    return y\n")
    assert cfg.cycles() == []
    assert cfg.exit in reachable(cfg)


def test_if_else_joins():
    cfg = cfg_of(
        "def f(x):\n"
        "    if x:\n"
        "        a = 1\n"
        "    else:\n"
        "        a = 2\n"
        "    return a\n")
    assert cfg.cycles() == []
    # Both assignments and the branch test appear as leaf statements.
    kinds = [type(s).__name__ for s in all_statements(cfg)]
    assert kinds.count("Assign") == 2
    assert "Name" in kinds  # the ``if x`` test


def test_while_loop_is_a_cycle():
    cfg = cfg_of(
        "def f(xs):\n"
        "    while xs:\n"
        "        xs.pop()\n"
        "    return xs\n")
    (component,) = cfg.cycles()
    stmts = list(cfg.statements(component))
    # The loop test and the body statement are inside the component.
    assert any(isinstance(s, ast.Expr) for s in stmts)


def test_for_loop_is_a_cycle():
    cfg = cfg_of(
        "def f(xs):\n"
        "    total = 0\n"
        "    for x in xs:\n"
        "        total += x\n"
        "    return total\n")
    (component,) = cfg.cycles()
    stmts = list(cfg.statements(component))
    # The loop target is in the head (inside the cycle); the iterable
    # is evaluated once, before the loop, outside the component.
    assert any(isinstance(s, ast.Name) and s.id == "x" for s in stmts)
    assert not any(isinstance(s, ast.Name) and s.id == "xs"
                   for s in stmts)


def test_break_path_leaves_the_component():
    cfg = cfg_of(
        "def f(xs):\n"
        "    while xs:\n"
        "        item = xs.pop()\n"
        "        if not xs:\n"
        "            cleanup(item)\n"
        "            break\n"
        "    return None\n")
    (component,) = cfg.cycles()
    stmts = list(cfg.statements(component))
    calls = [n.func.id for s in stmts for n in ast.walk(s)
             if isinstance(n, ast.Call)
             and isinstance(n.func, ast.Name)]
    # cleanup() sits on the break path, outside the SCC.
    assert "cleanup" not in calls


def test_strided_branch_stays_in_component():
    cfg = cfg_of(
        "def f(xs, ticks):\n"
        "    while xs:\n"
        "        xs.pop()\n"
        "        ticks += 1\n"
        "        if not ticks & 1023:\n"
        "            check()\n"
        "    return ticks\n")
    (component,) = cfg.cycles()
    calls = [n.func.id for s in cfg.statements(component)
             for n in ast.walk(s)
             if isinstance(n, ast.Call)
             and isinstance(n.func, ast.Name)]
    # The strided branch flows back into the loop: check() is inside.
    assert "check" in calls


def test_while_true_without_break_never_reaches_after():
    cfg = cfg_of(
        "def f():\n"
        "    while True:\n"
        "        spin()\n")
    assert len(cfg.cycles()) == 1


def test_nested_loops_are_separate_components():
    cfg = cfg_of(
        "def f(grid):\n"
        "    for row in grid:\n"
        "        seen = set()\n"
        "        while row:\n"
        "            seen.add(row.pop())\n"
        "    return None\n")
    # Tarjan merges nested natural loops into one SCC unless the inner
    # loop is unconditionally entered; either way every looping block
    # is covered by some returned component.
    components = cfg.cycles()
    assert components
    covered = set().union(*components)
    inner = [s for s in cfg.statements(covered)
             for n in ast.walk(s) if isinstance(n, ast.Attribute)
             and n.attr == "add"]
    assert inner


def test_return_edges_to_exit():
    cfg = cfg_of(
        "def f(x):\n"
        "    if x:\n"
        "        return 1\n"
        "    return 2\n")
    preds = cfg.predecessors()
    assert len(preds[cfg.exit]) == 2


def test_raise_edges_to_exit():
    cfg = cfg_of(
        "def f(x):\n"
        "    if x < 0:\n"
        "        raise ValueError(x)\n"
        "    return x\n")
    preds = cfg.predecessors()
    assert len(preds[cfg.exit]) == 2


def test_try_except_edges():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        risky()\n"
        "    except ValueError as exc:\n"
        "        handle(exc)\n"
        "    return None\n")
    assert cfg.cycles() == []
    stmts = all_statements(cfg)
    # handler.type and the bound name appear as leaf statements.
    assert any(isinstance(s, ast.Name) and s.id == "ValueError"
               for s in stmts)
    assert any(isinstance(s, ast.Name) and s.id == "exc"
               and isinstance(s.ctx, ast.Store) for s in stmts)


def test_try_finally_runs_on_exceptional_exit():
    cfg = cfg_of(
        "def f():\n"
        "    try:\n"
        "        risky()\n"
        "    finally:\n"
        "        cleanup()\n"
        "    return None\n")
    assert cfg.exit in reachable(cfg)
    stmts = all_statements(cfg)
    assert any(isinstance(n, ast.Call) and isinstance(n.func, ast.Name)
               and n.func.id == "cleanup"
               for s in stmts for n in ast.walk(s))


def test_with_statement_is_flat():
    cfg = cfg_of(
        "def f(path):\n"
        "    with open(path) as fh:\n"
        "        data = fh.read()\n"
        "    return data\n")
    assert cfg.cycles() == []
    stmts = all_statements(cfg)
    assert any(isinstance(s, ast.Name) and s.id == "fh" for s in stmts)


def test_match_statement_branches_and_falls_through():
    cfg = cfg_of(
        "def f(x):\n"
        "    match x:\n"
        "        case 0:\n"
        "            y = 'zero'\n"
        "        case _:\n"
        "            y = 'other'\n"
        "    return y\n")
    assert cfg.cycles() == []
    assert cfg.exit in reachable(cfg)


def test_nested_def_becomes_binding_pseudo_statement():
    cfg = cfg_of(
        "def f():\n"
        "    def helper(n):\n"
        "        while True:\n"
        "            spin()\n"
        "    return helper\n")
    bindings = [s for s in all_statements(cfg)
                if isinstance(s, DefBinding)]
    assert [b.name for b in bindings] == ["helper"]
    # The nested body's infinite loop does NOT put a cycle in the
    # enclosing function's graph.
    assert cfg.cycles() == []


def test_continue_edges_back_to_head():
    cfg = cfg_of(
        "def f(xs):\n"
        "    for x in xs:\n"
        "        if x is None:\n"
        "            continue\n"
        "        use(x)\n"
        "    return None\n")
    (component,) = cfg.cycles()
    calls = [n.func.id for s in cfg.statements(component)
             for n in ast.walk(s)
             if isinstance(n, ast.Call)
             and isinstance(n.func, ast.Name)]
    assert "use" in calls


def test_unreachable_code_after_return_stays_in_graph():
    cfg = cfg_of(
        "def f():\n"
        "    return 1\n"
        "    x = 2\n")
    stmts = all_statements(cfg)
    assert any(isinstance(s, ast.Assign) for s in stmts)
    assert cfg.exit not in reachable(cfg) or True  # graph is intact


@pytest.mark.parametrize("source", [
    "async def f(q):\n    async for item in q:\n        use(item)\n",
    "async def f(lock):\n    async with lock:\n        body()\n",
])
def test_async_constructs_lower(source):
    cfg = cfg_of(source)
    assert all_statements(cfg)
