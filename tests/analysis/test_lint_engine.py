"""Engine-level tests: suppressions, walking, rendering, exit codes."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import (RULES, Violation, exit_code, lint_paths,
                            lint_source, render_json, render_text)
from repro.analysis.lint import iter_python_files

CORPUS = Path(__file__).parent / "lint_corpus"


def rule_ids(violations) -> set[str]:
    return {v.rule for v in violations}


def test_all_rules_registered():
    assert set(RULES) == {"RPR001", "RPR002", "RPR003", "RPR004",
                          "RPR005", "RPR006", "RPR007", "RPR008",
                          "RPR009", "RPR010", "RPR011"}
    for rule in RULES.values():
        assert rule.severity in ("warning", "error")
        assert rule.description


def test_syntax_error_reported_as_rpr000():
    violations = lint_source("def broken(:\n", path="bad.py")
    assert [v.rule for v in violations] == ["RPR000"]
    assert violations[0].severity == "error"
    assert exit_code(violations) == 1


def test_line_suppression_single_rule():
    source = (
        "def f(n):  # repro-lint: disable=RPR001\n"
        "    return f(n - 1)\n"
    )
    assert lint_source(source) == []
    # The same source without the comment does trigger.
    assert "RPR001" in rule_ids(lint_source(source.replace(
        "  # repro-lint: disable=RPR001", "")))


def test_line_suppression_multiple_rules():
    source = (
        "def f(n):  # repro-lint: disable=RPR001, RPR005\n"
        "    return f(n - 1)\n"
    )
    assert lint_source(source) == []


def test_bare_disable_suppresses_everything():
    source = (
        "def f(n):  # repro-lint: disable\n"
        "    return f(n - 1)\n"
    )
    assert lint_source(source) == []


def test_file_level_suppression():
    source = (
        "# repro-lint: disable-file=RPR001\n"
        "def f(n):\n"
        "    return f(n - 1)\n"
        "def g(n):\n"
        "    return g(n - 1)\n"
    )
    assert lint_source(source) == []


def test_unrelated_suppression_does_not_hide():
    source = (
        "def f(n):  # repro-lint: disable=RPR002\n"
        "    return f(n - 1)\n"
    )
    assert "RPR001" in rule_ids(lint_source(source))


def test_rule_selection():
    source = (
        "def f(n):\n"
        "    return f(n - 1)\n"
    )
    assert lint_source(source, rules=["RPR002"]) == []
    assert rule_ids(lint_source(source, rules=["RPR001"])) == {"RPR001"}


def test_directory_walk_skips_corpus():
    files = list(iter_python_files([str(Path(__file__).parent)]))
    assert not any("lint_corpus" in str(f) for f in files)
    assert any(f.name == "test_lint_engine.py" for f in files)


def test_explicit_file_bypasses_excludes():
    fixture = CORPUS / "rpr001_trigger.py"
    files = list(iter_python_files([str(fixture)]))
    assert files == [fixture]
    assert "RPR001" in rule_ids(lint_paths([str(fixture)]))


def test_render_text_format():
    violations = [Violation(rule="RPR001", severity="error",
                            path="x.py", line=3, col=4, message="boom")]
    text = render_text(violations)
    assert "x.py:3:4: error RPR001 boom" in text
    assert "1 error(s), 0 warning(s)" in text


def test_render_json_format():
    violations = [Violation(rule="RPR002", severity="warning",
                            path="y.py", line=1, col=0, message="m")]
    payload = json.loads(render_json(violations))
    assert payload["errors"] == 0
    assert payload["warnings"] == 1
    assert payload["violations"][0]["rule"] == "RPR002"
    assert payload["violations"][0]["line"] == 1


def test_exit_code_strict_promotes_warnings():
    warning = [Violation(rule="RPR001", severity="warning", path="z.py",
                         line=1, col=0, message="m")]
    assert exit_code(warning) == 0
    assert exit_code(warning, strict=True) == 1
    assert exit_code([]) == 0
    assert exit_code([], strict=True) == 0


def test_violations_sorted_and_located():
    source = (
        "def b(n):\n"
        "    return b(n - 1)\n"
        "\n"
        "def a(n):\n"
        "    return a(n - 1)\n"
    )
    violations = lint_source(source, path="mod.py")
    lines = [v.line for v in violations]
    assert lines == sorted(lines)
    assert all(v.path == "mod.py" for v in violations)


# -- suppression edge cases --------------------------------------------

def test_file_disable_and_line_disable_interplay():
    # File-level disable of one rule composes with line-level disables
    # of another: each suppression is scoped independently.
    source = (
        "# repro-lint: disable-file=RPR001\n"
        "def f(n):\n"
        "    return f(n - 1)\n"
        "def g(n):  # repro-lint: disable=RPR002\n"
        "    return g(n - 1)\n"
    )
    # RPR001 is file-disabled everywhere — including on the line whose
    # own pragma only names RPR002.
    assert lint_source(source) == []


def test_unknown_rule_id_in_line_suppression_is_diagnosed():
    source = "x = 1  # repro-lint: disable=RPR999\n"
    violations = lint_source(source, path="m.py")
    assert [v.rule for v in violations] == ["RPR000"]
    assert violations[0].severity == "warning"
    assert "RPR999" in violations[0].message
    assert violations[0].line == 1


def test_unknown_rule_id_in_file_suppression_is_diagnosed():
    source = "# repro-lint: disable-file=RPR404\nx = 1\n"
    violations = lint_source(source, path="m.py")
    assert [v.rule for v in violations] == ["RPR000"]
    assert "RPR404" in violations[0].message


def test_unknown_suppression_diagnostic_is_itself_suppressible():
    source = "x = 1  # repro-lint: disable=RPR999, RPR000\n"
    assert lint_source(source) == []


def test_pragma_on_decorated_def_line():
    # The pragma must sit on the def line (where the finding lands),
    # not on the decorator line above it.
    source = (
        "import functools\n"
        "@functools.cache\n"
        "def f(n):  # repro-lint: disable=RPR001\n"
        "    return f(n - 1)\n"
    )
    assert lint_source(source) == []
    on_decorator = source.replace(
        "def f(n):  # repro-lint: disable=RPR001", "def f(n):").replace(
        "@functools.cache",
        "@functools.cache  # repro-lint: disable=RPR001")
    assert "RPR001" in rule_ids(lint_source(on_decorator))


def test_pragma_on_nested_def():
    source = (
        "def outer():\n"
        "    def inner(n):  # repro-lint: disable=RPR001\n"
        "        return inner(n - 1)\n"
        "    return inner\n"
    )
    assert lint_source(source) == []


# -- --ignore ----------------------------------------------------------

def test_ignore_removes_rule_from_selection():
    source = (
        "def f(n):\n"
        "    return f(n - 1)\n"
    )
    assert "RPR001" in rule_ids(lint_source(source))
    assert lint_source(source, ignore=["RPR001"]) == []
    # ignore composes with select: select minus ignore.
    assert lint_source(source, rules=["RPR001"],
                       ignore=["RPR001"]) == []


# -- fingerprints and the baseline workflow ----------------------------

def test_fingerprints_stable_under_line_drift():
    source = (
        "def f(n):\n"
        "    return f(n - 1)\n"
    )
    shifted = "import os\n\n\n" + source
    original = lint_source(source, path="pkg/mod.py")
    drifted = lint_source(shifted, path="pkg/mod.py")
    assert original and drifted
    assert original[0].line != drifted[0].line
    assert original[0].fingerprint == drifted[0].fingerprint


def test_fingerprints_distinguish_duplicate_lines():
    # Two findings on textually identical lines: the occurrence index
    # keeps their fingerprints distinct.
    source = (
        "def submit(pool, manager):\n"
        "    pool.put(Task('k', manager))\n"
        "    pool.put(Task('k', manager))\n"
    )
    violations = lint_source(source, path="m.py")
    prints = [v.fingerprint for v in violations]
    assert len(prints) == len(set(prints)) == 2


def test_baseline_round_trip(tmp_path):
    from repro.analysis import (apply_baseline, load_baseline,
                                write_baseline)
    source = (
        "def f(n):\n"
        "    return f(n - 1)\n"
    )
    violations = lint_source(source, path="m.py")
    baseline = tmp_path / "baseline.json"
    assert write_baseline(baseline, violations) == len(violations)
    entries = load_baseline(baseline)
    fresh, baselined = apply_baseline(violations, entries)
    assert fresh == [] and baselined == len(violations)
    # A new finding (different line text) is not filtered.
    other = lint_source(
        "def g(n):\n    return g(n - 1)\n", path="m.py")
    fresh, baselined = apply_baseline(other, entries)
    assert fresh == other and baselined == 0


def test_baseline_missing_file_is_empty(tmp_path):
    from repro.analysis import load_baseline
    assert load_baseline(tmp_path / "nope.json") == {}


def test_baseline_malformed_raises(tmp_path):
    import pytest

    from repro.analysis import load_baseline
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(bad)
    bad.write_text(json.dumps({"schema": 99, "entries": {}}),
                   encoding="utf-8")
    with pytest.raises(ValueError):
        load_baseline(bad)


# -- SARIF -------------------------------------------------------------

def test_render_sarif_schema_and_results():
    from repro.analysis import render_sarif
    violations = lint_source(
        "def f(n):\n    return f(n - 1)\n", path="pkg/mod.py")
    document = json.loads(render_sarif(violations))
    assert document["version"] == "2.1.0"
    (run,) = document["runs"]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    catalogued = {r["id"] for r in run["tool"]["driver"]["rules"]}
    assert catalogued == set(RULES)
    (result,) = [r for r in run["results"] if r["ruleId"] == "RPR001"]
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "pkg/mod.py"
    assert location["region"]["startLine"] == 1
    assert result["partialFingerprints"]["reproLint/v1"]


def test_render_sarif_empty_still_carries_catalogue():
    from repro.analysis import render_sarif
    document = json.loads(render_sarif([]))
    (run,) = document["runs"]
    assert run["results"] == []
    assert len(run["tool"]["driver"]["rules"]) == len(RULES)


# -- JSON per-rule counts ----------------------------------------------

def test_render_json_per_rule_counts_and_baselined():
    violations = lint_source(
        "def f(n):\n    return f(n - 1)\n"
        "def g(n):\n    return g(n - 1)\n", path="m.py")
    payload = json.loads(render_json(violations, baselined=3))
    assert payload["per_rule"] == {"RPR001": 2}
    assert payload["baselined"] == 3
