"""Engine-level tests: suppressions, walking, rendering, exit codes."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import (RULES, Violation, exit_code, lint_paths,
                            lint_source, render_json, render_text)
from repro.analysis.lint import iter_python_files

CORPUS = Path(__file__).parent / "lint_corpus"


def rule_ids(violations) -> set[str]:
    return {v.rule for v in violations}


def test_all_rules_registered():
    assert set(RULES) == {"RPR001", "RPR002", "RPR003", "RPR004",
                          "RPR005", "RPR006"}
    for rule in RULES.values():
        assert rule.severity in ("warning", "error")
        assert rule.description


def test_syntax_error_reported_as_rpr000():
    violations = lint_source("def broken(:\n", path="bad.py")
    assert [v.rule for v in violations] == ["RPR000"]
    assert violations[0].severity == "error"
    assert exit_code(violations) == 1


def test_line_suppression_single_rule():
    source = (
        "def f(n):  # repro-lint: disable=RPR001\n"
        "    return f(n - 1)\n"
    )
    assert lint_source(source) == []
    # The same source without the comment does trigger.
    assert "RPR001" in rule_ids(lint_source(source.replace(
        "  # repro-lint: disable=RPR001", "")))


def test_line_suppression_multiple_rules():
    source = (
        "def f(n):  # repro-lint: disable=RPR001, RPR005\n"
        "    return f(n - 1)\n"
    )
    assert lint_source(source) == []


def test_bare_disable_suppresses_everything():
    source = (
        "def f(n):  # repro-lint: disable\n"
        "    return f(n - 1)\n"
    )
    assert lint_source(source) == []


def test_file_level_suppression():
    source = (
        "# repro-lint: disable-file=RPR001\n"
        "def f(n):\n"
        "    return f(n - 1)\n"
        "def g(n):\n"
        "    return g(n - 1)\n"
    )
    assert lint_source(source) == []


def test_unrelated_suppression_does_not_hide():
    source = (
        "def f(n):  # repro-lint: disable=RPR002\n"
        "    return f(n - 1)\n"
    )
    assert "RPR001" in rule_ids(lint_source(source))


def test_rule_selection():
    source = (
        "def f(n):\n"
        "    return f(n - 1)\n"
    )
    assert lint_source(source, rules=["RPR002"]) == []
    assert rule_ids(lint_source(source, rules=["RPR001"])) == {"RPR001"}


def test_directory_walk_skips_corpus():
    files = list(iter_python_files([str(Path(__file__).parent)]))
    assert not any("lint_corpus" in str(f) for f in files)
    assert any(f.name == "test_lint_engine.py" for f in files)


def test_explicit_file_bypasses_excludes():
    fixture = CORPUS / "rpr001_trigger.py"
    files = list(iter_python_files([str(fixture)]))
    assert files == [fixture]
    assert "RPR001" in rule_ids(lint_paths([str(fixture)]))


def test_render_text_format():
    violations = [Violation(rule="RPR001", severity="error",
                            path="x.py", line=3, col=4, message="boom")]
    text = render_text(violations)
    assert "x.py:3:4: error RPR001 boom" in text
    assert "1 error(s), 0 warning(s)" in text


def test_render_json_format():
    violations = [Violation(rule="RPR002", severity="warning",
                            path="y.py", line=1, col=0, message="m")]
    payload = json.loads(render_json(violations))
    assert payload["errors"] == 0
    assert payload["warnings"] == 1
    assert payload["violations"][0]["rule"] == "RPR002"
    assert payload["violations"][0]["line"] == 1


def test_exit_code_strict_promotes_warnings():
    warning = [Violation(rule="RPR001", severity="warning", path="z.py",
                         line=1, col=0, message="m")]
    assert exit_code(warning) == 0
    assert exit_code(warning, strict=True) == 1
    assert exit_code([]) == 0
    assert exit_code([], strict=True) == 0


def test_violations_sorted_and_located():
    source = (
        "def b(n):\n"
        "    return b(n - 1)\n"
        "\n"
        "def a(n):\n"
        "    return a(n - 1)\n"
    )
    violations = lint_source(source, path="mod.py")
    lines = [v.line for v in violations]
    assert lines == sorted(lines)
    assert all(v.path == "mod.py" for v in violations)
