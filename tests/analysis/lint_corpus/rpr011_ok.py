"""RPR011 ok: every path roots, derefs, or returns the handle."""
# repro-lint: refs


def make_node(store, level, low, high, table):
    if low == high:
        return low
    node = store.mk(level, low, high)
    table[(level, low, high)] = node
    return node


def retain(store, ref, keep):
    handle = store.incref(ref)
    if keep:
        return handle
    store.decref(handle)
    return None


def probe(store, level):
    # Exception unwinding is not a leak path: the node is unrooted
    # garbage the next GC sweep reclaims.
    node = store.mk(level, 0, 1)
    if level < 0:
        raise ValueError("bad level")
    return node
