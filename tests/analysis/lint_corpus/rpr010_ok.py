"""RPR010 ok: checkpoints inside the component; provably cheap loops."""
# repro-lint: governed

MASK = 1023


def strided(manager, work):
    check = manager.governor.checkpoint
    ticks = 0
    out = []
    while work:
        item = work.pop()
        out.append(compute(manager, item))
        ticks += 1
        if not ticks & MASK:
            # The strided branch flows back into the loop, so the
            # checkpoint is inside the SCC — the proof accepts it.
            check("strided")
    return out


def trivial_drain(work):
    total = 0
    # RPR006's syntactic scan flags any uncheckpointed while; RPR010's
    # cost proof shows every call here is O(1) container work, so the
    # loop needs no checkpoint — the layering documented in
    # docs/analysis.md.
    while work:  # repro-lint: disable=RPR006
        total += work.pop()
    return total


def each_step(manager, frontiers):
    total = manager.false()
    for frontier in frontiers:
        manager.governor.checkpoint("sweep")
        total = manager.apply("or", total, frontier)
    return total
