"""RPR006 trigger: governed kernel loops without a checkpoint."""
# repro-lint: governed


def mark(manager, root):
    stack = [root]
    seen = set()
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
    return seen


def drain(manager, work):
    total = 0
    while work:
        total += work.pop()
    return total
