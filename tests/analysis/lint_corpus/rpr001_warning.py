"""RPR001 no-trigger-as-error: recursion outside a kernel module is
only a warning."""


def factorial(n):
    return 1 if n <= 1 else n * factorial(n - 1)
