"""RPR009 suppressed: payload pickled by a custom reducer."""


def submit_pinned(pool, manager):
    # The pool registers a copyreg reducer for Manager specs.
    task = Task("job", manager)  # repro-lint: disable=RPR009
    return pool.submit(task)
