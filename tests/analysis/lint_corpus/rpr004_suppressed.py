"""RPR004 suppressed: deliberate cross-manager probe."""
from repro.bdd import Manager


def probe():
    m1 = Manager()
    m2 = Manager()
    a = m1.add_var("a")
    return m2.apply("and", a, a)  # repro-lint: disable=RPR004
