"""RPR001 trigger: direct and mutual recursion in a kernel module."""
# repro-lint: kernel


def walk(node):
    if node is None:
        return 0
    return 1 + walk(node.hi) + walk(node.lo)


def even(n):
    return n == 0 or odd(n - 1)


def odd(n):
    return n != 0 and even(n - 1)
