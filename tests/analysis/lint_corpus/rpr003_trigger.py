"""RPR003 trigger: unregistered computed-table op tags."""


def kernel(manager, key):
    cached = manager.computed.lookup("frobnicate", key)
    if cached is None:
        cached = 42
        manager.computed.insert("frobnicate", key, cached)
    return cached


def aliased(manager, key):
    cache_get = manager.computed.lookup
    cache_put = manager.computed.insert
    value = cache_get("mystery-op", key)
    cache_put("mystery-op", key, value)
    return value
