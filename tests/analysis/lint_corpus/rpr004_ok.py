"""RPR004 no-trigger: same-manager operands, transfer, scope isolation."""
from repro.bdd import Manager
from repro.bdd.io import transfer


def same_manager():
    m1 = Manager()
    a = m1.add_var("a")
    b = m1.add_var("b")
    return m1.apply("and", a, b)


def through_transfer():
    m1 = Manager()
    m2 = Manager()
    a = m1.add_var("a")
    b = m2.add_var("b")
    return m2.apply("and", transfer(a, m2), b)


def producer():
    m1 = Manager()
    name = m1.add_var("v")
    return name


def consumer():
    # Reuses the name `name` with a different manager; provenance must
    # not leak across function scopes.
    m2 = Manager()
    name = m2.add_var("v")
    return m2.apply("and", name, name)
