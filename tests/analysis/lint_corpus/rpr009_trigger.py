"""RPR009 trigger: unpicklable fork payloads, post-freeze mutation."""
import gc

PREWARMED = {}


def submit_bad(pool, manager):
    task = Task("job", manager)
    other = Task("job2", payload=lambda spec: spec)
    return pool.submit(task), other


def bad_worker(tasks):
    def handler(task):
        return task
    return run_tasks(handler, tasks)


def prewarm():
    PREWARMED["a"] = 1
    gc.freeze()
    PREWARMED["b"] = 2
