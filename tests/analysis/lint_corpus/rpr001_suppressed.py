"""RPR001 suppressed: bounded recursion with an explicit waiver."""
# repro-lint: kernel


def parse(depth):  # repro-lint: disable=RPR001
    return 0 if depth == 0 else parse(depth - 1)
