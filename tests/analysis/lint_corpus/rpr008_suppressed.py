"""RPR008 suppressed: single-threaded harness touches the manager."""
# repro-lint: serve


def debug_snapshot(session):
    # Test-only helper; the server is fully stopped when this runs.
    return session.manager.stats  # repro-lint: disable=RPR008
