"""RPR005 trigger: malformed approximator signatures."""
from repro.core.approx import register_approximator


@register_approximator("two-positional")
def two_positional(f, threshold):
    return f


@register_approximator("star-args")
def star_args(f, *args, threshold=0):
    return f


@register_approximator("kw-without-default")
def kw_without_default(f, *, threshold):
    return f


@register_approximator("defaulted-positional")
def defaulted_positional(f=None, *, threshold=0):
    return f
