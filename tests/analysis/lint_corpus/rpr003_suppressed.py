"""RPR003 suppressed: a deliberately exotic tag, waived."""


def kernel(manager, key):
    manager.computed.insert("experimental-op", key, 42)  # repro-lint: disable=RPR003
