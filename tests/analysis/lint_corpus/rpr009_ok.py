"""RPR009 ok: spec payloads, module-level workers, pre-freeze setup."""
import gc

PREWARMED = {}


def spec_of(manager):
    return {"vars": manager.num_vars}


def submit_spec(pool, manager):
    # Spec conversion: the payload is the *result* of a call, pickled
    # fine; the manager itself stays on this side of the pipe.
    task = Task("job", payload=spec_of(manager))
    return pool.submit(task)


def worker(task):
    return task


def run(tasks):
    return run_tasks(worker, tasks)


def prewarm():
    PREWARMED["a"] = 1
    gc.freeze()
    return len(PREWARMED)
