"""RPR002 no-trigger: nodes go through the unique table."""


def build(manager, level, hi, lo):
    return manager.mk(level, hi, lo)


class NodeFactory:
    # A class merely *named* like the constructor is not a call.
    pass


def pick_store(backend):
    from repro.bdd.backend import create_store

    return create_store(backend)


def pick_manager(manager_cls):
    return manager_cls(backend="array")
