"""RPR008 ok: session work serialized through the fair executor."""
# repro-lint: serve


def dispatch(executor, session, verb, params):
    return executor.submit(session.id, session.execute, verb, params)


def server_stats(sessions):
    aborts = 0
    for session in sessions:
        # Published plain-int counters, not the worker-owned manager.
        aborts += session.published_aborts
    return aborts


def close_session(session):
    aborts, degradations = session.close()
    return aborts + degradations
