"""RPR010 suppressed: measured hot loop, checkpoint hoisted by design."""
# repro-lint: governed


def hot_loop(manager, work):
    out = []
    # Caller checkpoints around the whole drain; measured -40% if the
    # governor ticks inside (see the kernel-tuning notes).
    while work:  # repro-lint: disable=RPR006, RPR010
        out.append(compute(manager, work.pop()))
    return out
