"""RPR011 trigger: mk()/incref() handles dropped on some path."""
# repro-lint: refs


def make_node(store, level, low, high, table):
    node = store.mk(level, low, high)
    if low == high:
        return low
    table[(level, low, high)] = node
    return node


def retain(store, ref, keep):
    handle = store.incref(ref)
    if keep:
        return handle
    return None
