"""RPR011 suppressed: handle intentionally abandoned (GC test aid)."""
# repro-lint: refs


def orphan(store):
    # Deliberate: the GC-sweep test needs an unrooted node to collect.
    node = store.mk(1, 0, 1)  # repro-lint: disable=RPR011
    return None
