"""RPR006 suppressed: a deliberately unabortable bounded loop."""
# repro-lint: governed


def pop_all(manager, work):
    while work:  # repro-lint: disable=RPR006
        work.pop()
    return work
