"""RPR005 suppressed: a legacy entry point, waived file-wide."""
# repro-lint: disable-file=RPR005
from repro.core.approx import register_approximator


@register_approximator("legacy")
def legacy(f, threshold):
    return f
