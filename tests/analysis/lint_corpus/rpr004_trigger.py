"""RPR004 trigger: nodes of one manager fed to another manager."""
from repro.bdd import Manager


def mix():
    m1 = Manager()
    m2 = Manager()
    a = m1.add_var("a")
    b = m2.add_var("b")
    # `a` belongs to m1 but is passed into an m2 operation:
    return m2.apply("and", a, b)


def mix_via_free_function(apply_node, m1: Manager, m2: Manager):
    f = m1.add_var("x")
    return apply_node(m2, "and", f, f)
