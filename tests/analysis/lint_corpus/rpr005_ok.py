"""RPR005 no-trigger: the registry's uniform shape, and free helpers."""
from repro.core.approx import register_approximator


@register_approximator("conforming")
def conforming(f, *, threshold=0, quality=1.0):
    return f


def unregistered_helper(f, threshold):
    # Not an approximator entry point; no constraints.
    return f
