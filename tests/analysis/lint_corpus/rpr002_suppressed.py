"""RPR002 suppressed: test scaffolding may forge nodes knowingly."""
from repro.bdd.node import Node


def forge(level, hi, lo):
    return Node(level, hi, lo)  # repro-lint: disable=RPR002


def forge_store():
    from repro.bdd.backend import ObjectStore

    return ObjectStore()  # repro-lint: disable=RPR002
