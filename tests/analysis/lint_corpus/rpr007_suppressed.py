"""RPR007 suppressed: deliberate blocking call with justification."""
# repro-lint: serve
import time


async def slow_probe():
    # Startup-only probe; the loop is not serving anything yet.
    time.sleep(0.01)  # repro-lint: disable=RPR007
