"""RPR010 trigger: governed cycles that dodge RPR006's syntactic scan.

Both loops are RPR006 false negatives — the regression class the
CFG/SCC proof exists for: a ``for`` loop (RPR006 only scans ``while``),
and a ``while`` whose only checkpoint sits on a ``break`` path, which
leaves the strongly connected component and so cannot bound the spin.
"""
# repro-lint: governed


def image_sweep(manager, frontiers):
    total = manager.false()
    for frontier in frontiers:
        total = manager.apply("or", total, frontier)
    return total


def drain(manager, work):
    out = []
    while work:
        item = work.pop()
        out.append(compute(manager, item))
        if not work:
            manager.governor.checkpoint("drain")
            break
    return out
