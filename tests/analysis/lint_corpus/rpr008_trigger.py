"""RPR008 trigger: session state escapes its executor serialization."""
# repro-lint: serve
import threading

REGISTRY = None


def server_stats(sessions):
    total = 0
    for session in sessions:
        total += session.manager.stats.total_aborts
    return total


def inline_execute(session, verb, params):
    return session.execute(verb, params)


def spawn(session):
    worker = threading.Thread(target=run, args=(session,))
    worker.start()
    return worker


def publish(session):
    global REGISTRY
    REGISTRY = session


def run(session):
    return session._functions
