"""RPR003 no-trigger: registered tags, dynamic tags, other lookups."""


def kernel(manager, key, op):
    cached = manager.computed.lookup("and", key)
    if cached is None:
        manager.computed.insert("ite", key, 42)
    # A dynamic (non-literal) tag is out of static reach; the runtime
    # sanitizer covers it.
    manager.computed.insert(op, key, 42)
    # lookup on something that is not a computed table is not checked.
    return registry.lookup("frobnicate", key)
