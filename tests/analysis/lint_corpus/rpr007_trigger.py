"""RPR007 trigger: blocking calls on the serve event-loop path."""
# repro-lint: serve
import time


async def handle(reader, writer):
    time.sleep(0.1)
    return frame(reader)


def frame(reader):
    # Sync helper reachable from async handle: runs on the loop too.
    payload = open("dump.bin")
    return payload


async def teardown(executor):
    executor.shutdown()


async def snapshot(manager):
    return manager.reorder()
