"""RPR006 no-trigger: checkpointed loops, aliased and direct."""
# repro-lint: governed

_MASK = 63


def mark(manager, root):
    check = manager.governor.checkpoint
    ticks = 0
    stack = [root]
    seen = set()
    while stack:
        ticks += 1
        if not ticks & _MASK:
            check("mark")
        seen.add(stack.pop())
    return seen


def drain(manager, work):
    ticks = 0
    total = 0
    while work:
        ticks += 1
        if not ticks & _MASK:
            manager.governor.checkpoint("drain")
        total += work.pop()
    return total
