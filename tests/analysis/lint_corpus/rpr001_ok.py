"""RPR001 no-trigger: explicit-stack traversal, helper calls, methods."""
# repro-lint: kernel


def walk(root):
    count = 0
    stack = [root]
    while stack:
        node = stack.pop()
        if node is None:
            continue
        count += 1
        stack.append(node.hi)
        stack.append(node.lo)
    return count


def outer(root):
    return helper(root)


def helper(root):
    return walk(root)


class Table:
    def clear(self):
        # Attribute call on another object, same method name: no edge.
        self.entries.clear()

    def size(self):
        return len(self.entries)

    def stats(self):
        # Name call shadowing a method name resolves to the import,
        # not to this class's method.
        return size(self)


def size(table):
    return table.size()
