"""RPR007 ok: blocking work stays off the event loop."""
# repro-lint: serve
import asyncio


async def handle(executor, session, verb, params):
    future = executor.submit(session.id, session.execute, verb, params)
    return await asyncio.wrap_future(future)


async def teardown(executor):
    await asyncio.to_thread(executor.shutdown)


def offline_helper(path):
    # Blocking, but never reachable from an async def in this module.
    return open(path).read()
