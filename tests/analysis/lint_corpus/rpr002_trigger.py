"""RPR002 trigger: direct Node construction outside the factory."""
from repro.bdd.node import Node


def smuggle(level, hi, lo):
    return Node(level, hi, lo)


def smuggle_qualified(node_module, level, hi, lo):
    return node_module.Node(level, hi, lo)


def smuggle_store():
    from repro.bdd.backend import ObjectStore

    return ObjectStore()


def smuggle_flat_store(arraystore_module):
    return arraystore_module.ArrayStore()
