"""Rule corpus tests: every fixture triggers (or stays silent) exactly
as designed, and the CLI exit codes agree."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.cli import main

CORPUS = Path(__file__).parent / "lint_corpus"


def lint_fixture(name: str):
    return lint_paths([str(CORPUS / name)])


def rule_ids(violations) -> set[str]:
    return {v.rule for v in violations}


# -- trigger fixtures --------------------------------------------------

@pytest.mark.parametrize("fixture,rule,count", [
    ("rpr001_trigger.py", "RPR001", 3),   # walk, even, odd
    ("rpr002_trigger.py", "RPR002", 4),   # Node: Name + Attribute call;
                                          # store classes: one each
    ("rpr003_trigger.py", "RPR003", 4),   # direct + aliased, get + put
    ("rpr004_trigger.py", "RPR004", 3),   # method call + both foreign
                                          # operands of the free call
    ("rpr005_trigger.py", "RPR005", 4),   # one per malformed signature
    ("rpr006_trigger.py", "RPR006", 2),   # both uncheckpointed loops
    ("rpr007_trigger.py", "RPR007", 4),   # sleep, reachable open,
                                          # shutdown, manager kernel call
    ("rpr008_trigger.py", "RPR008", 5),   # manager attr, inline execute,
                                          # Thread, global, handle table
    ("rpr009_trigger.py", "RPR009", 4),   # manager payload, lambda
                                          # payload, closure worker,
                                          # post-freeze mutation
    ("rpr010_trigger.py", "RPR010", 2),   # for-loop + checkpoint-on-
                                          # break (RPR006 misses both)
    ("rpr011_trigger.py", "RPR011", 2),   # dropped mk + dropped incref
])
def test_trigger_fixture(fixture, rule, count):
    violations = [v for v in lint_fixture(fixture) if v.rule == rule]
    assert len(violations) == count, \
        f"{fixture}: expected {count} {rule} findings, got " \
        f"{[(v.line, v.message) for v in violations]}"
    for violation in violations:
        assert violation.line > 0
        assert rule in violation.message or violation.message


def test_kernel_pragma_escalates_to_error():
    violations = lint_fixture("rpr001_trigger.py")
    assert violations and all(v.severity == "error" for v in violations)


def test_non_kernel_recursion_is_warning():
    violations = lint_fixture("rpr001_warning.py")
    assert rule_ids(violations) == {"RPR001"}
    assert all(v.severity == "warning" for v in violations)


def test_mutual_recursion_message_names_cycle():
    violations = lint_fixture("rpr001_trigger.py")
    mutual = [v for v in violations if "even" in v.message]
    assert mutual
    assert any("even -> odd" in v.message for v in mutual)


# -- no-trigger fixtures -----------------------------------------------

@pytest.mark.parametrize("fixture", [
    "rpr001_ok.py",
    "rpr002_ok.py",
    "rpr003_ok.py",
    "rpr004_ok.py",
    "rpr005_ok.py",
    "rpr006_ok.py",
    "rpr007_ok.py",
    "rpr008_ok.py",
    "rpr009_ok.py",
    "rpr010_ok.py",
    "rpr011_ok.py",
])
def test_ok_fixture_is_clean(fixture):
    violations = lint_fixture(fixture)
    assert violations == [], \
        f"{fixture}: unexpected {[(v.rule, v.line, v.message) for v in violations]}"


# -- suppression fixtures ----------------------------------------------

@pytest.mark.parametrize("fixture", [
    "rpr001_suppressed.py",
    "rpr002_suppressed.py",
    "rpr003_suppressed.py",
    "rpr004_suppressed.py",
    "rpr005_suppressed.py",
    "rpr006_suppressed.py",
    "rpr007_suppressed.py",
    "rpr008_suppressed.py",
    "rpr009_suppressed.py",
    "rpr010_suppressed.py",
    "rpr011_suppressed.py",
])
def test_suppressed_fixture_is_clean(fixture):
    assert lint_fixture(fixture) == []


# -- RPR010 upgrades RPR006 (the regression the CFG proof exists for) --

def test_rpr010_catches_what_rpr006_misses():
    # Both cycles in the fixture pass RPR006's syntactic scan: the for
    # loop because RPR006 only looks at while statements, the drain
    # loop because its only checkpoint sits on the break path.  The
    # SCC proof flags both.
    violations = lint_fixture("rpr010_trigger.py")
    assert rule_ids(violations) == {"RPR010"}
    assert not [v for v in violations if v.rule == "RPR006"]


def test_new_rule_severities():
    violations = lint_fixture("rpr007_trigger.py") \
        + lint_fixture("rpr008_trigger.py") \
        + lint_fixture("rpr010_trigger.py")
    assert violations
    assert all(v.severity == "error" for v in violations)
    warnings = lint_fixture("rpr009_trigger.py") \
        + lint_fixture("rpr011_trigger.py")
    assert warnings
    assert all(v.severity == "warning" for v in warnings)


# -- the repository itself is clean ------------------------------------

def test_repository_lints_clean():
    root = Path(__file__).resolve().parents[2]
    violations = lint_paths([str(root / "src"), str(root / "tests")])
    assert violations == [], \
        [(v.path, v.line, v.rule) for v in violations]


# -- CLI integration ---------------------------------------------------

def test_cli_lint_clean_tree_exits_zero(capsys):
    root = Path(__file__).resolve().parents[2]
    code = main(["lint", str(root / "src" / "repro" / "analysis")])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 error(s)" in out


def test_cli_lint_trigger_fixture_exits_nonzero(capsys):
    code = main(["lint", str(CORPUS / "rpr002_trigger.py")])
    out = capsys.readouterr().out
    assert code == 1
    assert "RPR002" in out
    assert "rpr002_trigger.py:6" in out


def test_cli_lint_strict_promotes_warnings(capsys):
    fixture = str(CORPUS / "rpr001_warning.py")
    assert main(["lint", fixture]) == 0
    capsys.readouterr()
    assert main(["lint", "--strict", fixture]) == 1


def test_cli_lint_json_output(capsys):
    import json
    code = main(["lint", "--format", "json",
                 str(CORPUS / "rpr005_trigger.py")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["errors"] == 4
    assert {v["rule"] for v in payload["violations"]} == {"RPR005"}


def test_cli_lint_rule_selection(capsys):
    fixture = str(CORPUS / "rpr001_trigger.py")
    assert main(["lint", "--rules", "RPR002", fixture]) == 0
    capsys.readouterr()
    assert main(["lint", "--rules", "RPR001", fixture]) == 1


def test_cli_lint_select_and_ignore(capsys):
    fixture = str(CORPUS / "rpr001_trigger.py")
    # --select is the canonical spelling; --rules stays as an alias.
    assert main(["lint", "--select", "RPR001", fixture]) == 1
    capsys.readouterr()
    assert main(["lint", "--ignore", "RPR001", fixture]) == 0


def test_cli_lint_unknown_rule_is_usage_error():
    import pytest
    with pytest.raises(SystemExit):
        main(["lint", "--select", "RPR999", "src"])
    with pytest.raises(SystemExit):
        main(["lint", "--ignore", "bogus", "src"])


def test_cli_lint_sarif_output(capsys):
    import json
    fixture = str(CORPUS / "rpr002_trigger.py")
    code = main(["lint", "--format", "sarif", fixture])
    document = json.loads(capsys.readouterr().out)
    assert code == 1
    results = document["runs"][0]["results"]
    assert results and all(r["ruleId"] == "RPR002" for r in results)


def test_cli_lint_output_file(tmp_path, capsys):
    import json
    fixture = str(CORPUS / "rpr002_trigger.py")
    out_file = tmp_path / "lint.sarif"
    code = main(["lint", "--format", "sarif",
                 "--output", str(out_file), fixture])
    assert code == 1
    assert capsys.readouterr().out == ""
    document = json.loads(out_file.read_text(encoding="utf-8"))
    assert document["version"] == "2.1.0"


def test_cli_lint_baseline_workflow(tmp_path, capsys):
    import json
    fixture = str(CORPUS / "rpr001_warning.py")
    baseline = tmp_path / "baseline.json"
    # Without a baseline the warning fails --strict.
    assert main(["lint", "--strict", fixture]) == 1
    capsys.readouterr()
    # Accept it into a baseline, then the strict gate passes.
    assert main(["lint", "--baseline", str(baseline),
                 "--write-baseline", fixture]) == 0
    capsys.readouterr()
    assert main(["lint", "--strict", "--baseline", str(baseline),
                 fixture]) == 0
    capsys.readouterr()
    code = main(["lint", "--format", "json", "--baseline",
                 str(baseline), fixture])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["violations"] == []
    assert payload["baselined"] >= 1
