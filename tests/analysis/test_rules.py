"""Rule corpus tests: every fixture triggers (or stays silent) exactly
as designed, and the CLI exit codes agree."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.cli import main

CORPUS = Path(__file__).parent / "lint_corpus"


def lint_fixture(name: str):
    return lint_paths([str(CORPUS / name)])


def rule_ids(violations) -> set[str]:
    return {v.rule for v in violations}


# -- trigger fixtures --------------------------------------------------

@pytest.mark.parametrize("fixture,rule,count", [
    ("rpr001_trigger.py", "RPR001", 3),   # walk, even, odd
    ("rpr002_trigger.py", "RPR002", 4),   # Node: Name + Attribute call;
                                          # store classes: one each
    ("rpr003_trigger.py", "RPR003", 4),   # direct + aliased, get + put
    ("rpr004_trigger.py", "RPR004", 3),   # method call + both foreign
                                          # operands of the free call
    ("rpr005_trigger.py", "RPR005", 4),   # one per malformed signature
    ("rpr006_trigger.py", "RPR006", 2),   # both uncheckpointed loops
])
def test_trigger_fixture(fixture, rule, count):
    violations = [v for v in lint_fixture(fixture) if v.rule == rule]
    assert len(violations) == count, \
        f"{fixture}: expected {count} {rule} findings, got " \
        f"{[(v.line, v.message) for v in violations]}"
    for violation in violations:
        assert violation.line > 0
        assert rule in violation.message or violation.message


def test_kernel_pragma_escalates_to_error():
    violations = lint_fixture("rpr001_trigger.py")
    assert violations and all(v.severity == "error" for v in violations)


def test_non_kernel_recursion_is_warning():
    violations = lint_fixture("rpr001_warning.py")
    assert rule_ids(violations) == {"RPR001"}
    assert all(v.severity == "warning" for v in violations)


def test_mutual_recursion_message_names_cycle():
    violations = lint_fixture("rpr001_trigger.py")
    mutual = [v for v in violations if "even" in v.message]
    assert mutual
    assert any("even -> odd" in v.message for v in mutual)


# -- no-trigger fixtures -----------------------------------------------

@pytest.mark.parametrize("fixture", [
    "rpr001_ok.py",
    "rpr002_ok.py",
    "rpr003_ok.py",
    "rpr004_ok.py",
    "rpr005_ok.py",
    "rpr006_ok.py",
])
def test_ok_fixture_is_clean(fixture):
    violations = lint_fixture(fixture)
    assert violations == [], \
        f"{fixture}: unexpected {[(v.rule, v.line, v.message) for v in violations]}"


# -- suppression fixtures ----------------------------------------------

@pytest.mark.parametrize("fixture", [
    "rpr001_suppressed.py",
    "rpr002_suppressed.py",
    "rpr003_suppressed.py",
    "rpr004_suppressed.py",
    "rpr005_suppressed.py",
    "rpr006_suppressed.py",
])
def test_suppressed_fixture_is_clean(fixture):
    assert lint_fixture(fixture) == []


# -- the repository itself is clean ------------------------------------

def test_repository_lints_clean():
    root = Path(__file__).resolve().parents[2]
    violations = lint_paths([str(root / "src"), str(root / "tests")])
    assert violations == [], \
        [(v.path, v.line, v.rule) for v in violations]


# -- CLI integration ---------------------------------------------------

def test_cli_lint_clean_tree_exits_zero(capsys):
    root = Path(__file__).resolve().parents[2]
    code = main(["lint", str(root / "src" / "repro" / "analysis")])
    out = capsys.readouterr().out
    assert code == 0
    assert "0 error(s)" in out


def test_cli_lint_trigger_fixture_exits_nonzero(capsys):
    code = main(["lint", str(CORPUS / "rpr002_trigger.py")])
    out = capsys.readouterr().out
    assert code == 1
    assert "RPR002" in out
    assert "rpr002_trigger.py:6" in out


def test_cli_lint_strict_promotes_warnings(capsys):
    fixture = str(CORPUS / "rpr001_warning.py")
    assert main(["lint", fixture]) == 0
    capsys.readouterr()
    assert main(["lint", "--strict", fixture]) == 1


def test_cli_lint_json_output(capsys):
    import json
    code = main(["lint", "--format", "json",
                 str(CORPUS / "rpr005_trigger.py")])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["errors"] == 4
    assert {v["rule"] for v in payload["violations"]} == {"RPR005"}


def test_cli_lint_rule_selection(capsys):
    fixture = str(CORPUS / "rpr001_trigger.py")
    assert main(["lint", "--rules", "RPR002", fixture]) == 0
    capsys.readouterr()
    assert main(["lint", "--rules", "RPR001", fixture]) == 1
