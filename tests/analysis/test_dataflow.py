"""Dataflow framework tests: joins, fixpoints, per-statement replay."""

from __future__ import annotations

import ast

import pytest

from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import Fact, ForwardAnalysis, gen_kill


def cfg_of(source: str):
    func = ast.parse(source).body[0]
    return build_cfg(func)


def assigned_name(stmt: ast.AST) -> str | None:
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
            and isinstance(stmt.targets[0], ast.Name):
        return stmt.targets[0].id
    return None


def defined_vars_transfer(stmt: ast.AST, fact: Fact) -> Fact:
    name = assigned_name(stmt)
    return fact | {name} if name else fact


def test_straight_line_accumulates_facts():
    cfg = cfg_of("def f():\n    a = 1\n    b = 2\n    return a + b\n")
    analysis = ForwardAnalysis(cfg, defined_vars_transfer).run()
    assert analysis.exit_fact() == {"a", "b"}


def test_union_join_is_may_analysis():
    cfg = cfg_of(
        "def f(x):\n"
        "    if x:\n"
        "        a = 1\n"
        "    else:\n"
        "        b = 2\n"
        "    return x\n")
    analysis = ForwardAnalysis(cfg, defined_vars_transfer).run()
    # May-defined: either branch's name survives the merge.
    assert analysis.exit_fact() == {"a", "b"}


def test_intersection_join_is_must_analysis():
    cfg = cfg_of(
        "def f(x):\n"
        "    if x:\n"
        "        a = 1\n"
        "        c = 3\n"
        "    else:\n"
        "        b = 2\n"
        "        c = 4\n"
        "    return x\n")
    analysis = ForwardAnalysis(cfg, defined_vars_transfer,
                               join="intersection").run()
    # Must-defined: only ``c`` is assigned on every path.
    assert analysis.exit_fact() == {"c"}


def test_loop_reaches_fixpoint():
    cfg = cfg_of(
        "def f(xs):\n"
        "    total = 0\n"
        "    for x in xs:\n"
        "        total = total + x\n"
        "        seen = True\n"
        "    return total\n")
    analysis = ForwardAnalysis(cfg, defined_vars_transfer).run()
    # ``seen`` may be defined (loop ran >= once) — union keeps it.
    assert {"total", "seen"} <= analysis.exit_fact()


def test_gen_kill_helper():
    cfg = cfg_of("def f():\n    a = 1\n    return a\n")
    transfer = gen_kill(frozenset({"g"}), frozenset({"k"}))
    analysis = ForwardAnalysis(
        cfg, transfer, entry_fact=frozenset({"k", "keep"})).run()
    assert analysis.exit_fact() == {"g", "keep"}


def test_entry_fact_flows_forward():
    cfg = cfg_of("def f():\n    return 1\n")
    analysis = ForwardAnalysis(cfg, defined_vars_transfer,
                               entry_fact=frozenset({"seed"})).run()
    assert "seed" in analysis.exit_fact()


def test_statement_facts_replay():
    cfg = cfg_of("def f():\n    a = 1\n    b = 2\n    return b\n")
    analysis = ForwardAnalysis(cfg, defined_vars_transfer).run()
    by_stmt = {assigned_name(stmt): (before, after)
               for stmt, before, after in analysis.statement_facts()
               if assigned_name(stmt)}
    assert by_stmt["a"] == (frozenset(), frozenset({"a"}))
    assert by_stmt["b"] == (frozenset({"a"}), frozenset({"a", "b"}))


def test_unreachable_block_has_empty_fact():
    cfg = cfg_of(
        "def f():\n"
        "    return 1\n"
        "    a = 2\n")
    analysis = ForwardAnalysis(cfg, defined_vars_transfer).run()
    # The post-return block never runs; its fact defaults to empty
    # rather than poisoning the analysis.
    for block_id, block in cfg.blocks.items():
        if any(assigned_name(s) == "a" for s in block.statements):
            assert analysis.fact_in(block_id) == frozenset()


def test_unknown_join_rejected():
    cfg = cfg_of("def f():\n    return 1\n")
    with pytest.raises(ValueError):
        ForwardAnalysis(cfg, defined_vars_transfer, join="widen")


def test_break_path_facts_flow_to_after_loop():
    cfg = cfg_of(
        "def f(xs):\n"
        "    while xs:\n"
        "        done = True\n"
        "        break\n"
        "    return None\n")
    analysis = ForwardAnalysis(cfg, defined_vars_transfer).run()
    assert "done" in analysis.exit_fact()
