"""Targeted tests for the flow-aware rules (RPR007..RPR011)."""

from __future__ import annotations

from repro.analysis import lint_source

SERVE = "# repro-lint: serve\n"
GOVERNED = "# repro-lint: governed\n"
REFS = "# repro-lint: refs\n"


def findings(source: str, rule: str, path: str = "mod.py"):
    return [v for v in lint_source(source, path=path)
            if v.rule == rule]


# -- RPR007 ------------------------------------------------------------

def test_rpr007_ignores_non_serve_modules():
    source = (
        "import time\n"
        "async def handler():\n"
        "    time.sleep(1)\n"
    )
    assert findings(source, "RPR007") == []


def test_rpr007_serve_path_activates_without_pragma():
    source = (
        "import time\n"
        "async def handler():\n"
        "    time.sleep(1)\n"
    )
    assert findings(source, "RPR007",
                    path="src/repro/serve/thing.py")


def test_rpr007_awaited_calls_are_exempt():
    source = SERVE + (
        "import asyncio\n"
        "async def handler(executor):\n"
        "    await asyncio.to_thread(executor.shutdown)\n"
    )
    assert findings(source, "RPR007") == []


def test_rpr007_from_import_sleep_alias():
    source = SERVE + (
        "from time import sleep as snooze\n"
        "async def handler():\n"
        "    snooze(1)\n"
    )
    (violation,) = findings(source, "RPR007")
    assert "time.sleep" in violation.message


def test_rpr007_traversal_stops_at_async_callees():
    # handler -> other_async: calling an async def only builds a
    # coroutine, so other_async's body is not an event-loop path *via
    # this edge* — it is async itself and scanned independently; the
    # sync helper below it is only reachable from nothing.
    source = SERVE + (
        "import time\n"
        "async def handler():\n"
        "    return other_async()\n"
        "def helper():\n"
        "    time.sleep(1)\n"
        "async def other_async():\n"
        "    return 1\n"
    )
    assert findings(source, "RPR007") == []


def test_rpr007_transitive_sync_helper_is_flagged():
    source = SERVE + (
        "import time\n"
        "async def handler():\n"
        "    return helper()\n"
        "def helper():\n"
        "    return deeper()\n"
        "def deeper():\n"
        "    time.sleep(1)\n"
    )
    (violation,) = findings(source, "RPR007")
    assert "deeper" in violation.message
    assert "handler" in violation.message


def test_rpr007_annotated_manager_param():
    source = SERVE + (
        "async def snapshot(m: Manager):\n"
        "    return m.apply('and', 1, 2)\n"
    )
    (violation,) = findings(source, "RPR007")
    assert "kernel call" in violation.message


# -- RPR008 ------------------------------------------------------------

def test_rpr008_session_methods_are_exempt():
    source = SERVE + (
        "class Session:\n"
        "    def execute(self, verb):\n"
        "        session = self\n"
        "        return session.manager\n"
    )
    assert findings(source, "RPR008") == []


def test_rpr008_submit_arguments_are_exempt():
    source = SERVE + (
        "def dispatch(executor, session, verb):\n"
        "    return executor.submit(session.id, session.execute, verb)\n"
    )
    assert findings(source, "RPR008") == []


def test_rpr008_direct_execute_is_flagged():
    source = SERVE + (
        "def dispatch(session, verb):\n"
        "    return session.execute(verb)\n"
    )
    assert findings(source, "RPR008")


def test_rpr008_iteration_over_sessions_classifies():
    source = SERVE + (
        "def stats(sessions):\n"
        "    return [s.manager for s in sessions]\n"
    )
    # ``for s in <...sessions...>`` provenance applies to comprehension
    # targets as well via the scan's For handling — list comprehensions
    # use comprehension nodes, so this stays conservative: only real
    # for statements classify.
    source2 = SERVE + (
        "def stats(sessions):\n"
        "    out = []\n"
        "    for session in sessions:\n"
        "        out.append(session.manager)\n"
        "    return out\n"
    )
    assert findings(source2, "RPR008")


# -- RPR009 ------------------------------------------------------------

def test_rpr009_spec_conversion_is_exempt():
    source = (
        "def submit(pool, manager):\n"
        "    return pool.put(Task('k', payload=spec_of(manager)))\n"
    )
    assert findings(source, "RPR009") == []


def test_rpr009_positional_payload_flagged():
    source = (
        "def submit(pool, manager):\n"
        "    return pool.put(Task('k', manager))\n"
    )
    (violation,) = findings(source, "RPR009")
    assert "manager" in violation.message


def test_rpr009_function_provenance_from_manager_method():
    source = (
        "def submit(pool, manager):\n"
        "    f = manager.apply('and', 1, 2)\n"
        "    return pool.put(Task('k', f))\n"
    )
    (violation,) = findings(source, "RPR009")
    assert "function" in violation.message


def test_rpr009_mutation_before_freeze_is_fine():
    source = (
        "import gc\n"
        "CACHE = {}\n"
        "def prewarm():\n"
        "    CACHE['a'] = 1\n"
        "    CACHE.update(b=2)\n"
        "    gc.freeze()\n"
        "    return len(CACHE)\n"
    )
    assert findings(source, "RPR009") == []


def test_rpr009_branchy_post_freeze_mutation():
    # The mutation only happens on one path — the may-analysis still
    # catches it, because "frozen" flows through the union join.
    source = (
        "import gc\n"
        "CACHE = {}\n"
        "def prewarm(flag):\n"
        "    if flag:\n"
        "        gc.freeze()\n"
        "    CACHE['late'] = 1\n"
        "    return None\n"
    )
    (violation,) = findings(source, "RPR009")
    assert "gc.freeze" in violation.message


def test_rpr009_mutator_method_after_freeze():
    source = (
        "import gc\n"
        "CACHE = {}\n"
        "def prewarm():\n"
        "    gc.freeze()\n"
        "    CACHE.setdefault('a', 1)\n"
    )
    assert findings(source, "RPR009")


# -- RPR010 ------------------------------------------------------------

def test_rpr010_inactive_without_governed_marker():
    source = (
        "def sweep(manager, xs):\n"
        "    for x in xs:\n"
        "        manager.apply('or', x, x)\n"
    )
    assert findings(source, "RPR010") == []


def test_rpr010_for_loop_without_checkpoint():
    source = GOVERNED + (
        "def sweep(manager, xs):\n"
        "    for x in xs:\n"
        "        manager.apply('or', x, x)\n"
    )
    assert findings(source, "RPR010")


def test_rpr010_checkpoint_in_component_passes():
    source = GOVERNED + (
        "def sweep(manager, xs):\n"
        "    for x in xs:\n"
        "        manager.governor.checkpoint('sweep')\n"
        "        manager.apply('or', x, x)\n"
    )
    assert findings(source, "RPR010") == []


def test_rpr010_checkpoint_alias_recognized():
    source = GOVERNED + (
        "def sweep(manager, xs):\n"
        "    check = manager.governor.checkpoint\n"
        "    for x in xs:\n"
        "        check('sweep')\n"
        "        manager.apply('or', x, x)\n"
    )
    assert findings(source, "RPR010") == []


def test_rpr010_trivial_cycle_needs_no_checkpoint():
    source = GOVERNED + (
        "def drain(work):\n"
        "    total = 0\n"
        "    while work:\n"
        "        total += work.pop()\n"
        "    return total\n"
    )
    assert findings(source, "RPR010") == []


def test_rpr010_checkpoint_on_return_path_does_not_count():
    source = GOVERNED + (
        "def drain(manager, work):\n"
        "    while True:\n"
        "        if not work:\n"
        "            manager.governor.checkpoint('drain')\n"
        "            return None\n"
        "        compute(manager, work.pop())\n"
    )
    assert findings(source, "RPR010")


# -- RPR011 ------------------------------------------------------------

def test_rpr011_inactive_without_refs_marker():
    source = (
        "def make(store):\n"
        "    node = store.mk(1, 0, 1)\n"
        "    return None\n"
    )
    assert findings(source, "RPR011") == []


def test_rpr011_all_paths_consume():
    source = REFS + (
        "def make(store, table, key):\n"
        "    node = store.mk(1, 0, 1)\n"
        "    table[key] = node\n"
        "    return node\n"
    )
    assert findings(source, "RPR011") == []


def test_rpr011_mk_alias_recognized():
    source = REFS + (
        "def make(store, flag):\n"
        "    mk = store.mk\n"
        "    node = mk(1, 0, 1)\n"
        "    if flag:\n"
        "        return node\n"
        "    return None\n"
    )
    (violation,) = findings(source, "RPR011")
    assert "node" in violation.message


def test_rpr011_raise_path_is_not_a_leak():
    source = REFS + (
        "def make(store, level):\n"
        "    node = store.mk(level, 0, 1)\n"
        "    if level < 0:\n"
        "        raise ValueError(level)\n"
        "    return node\n"
    )
    assert findings(source, "RPR011") == []


def test_rpr011_reassignment_clears_pending():
    # Overwriting the name loses the handle — but the dataflow models
    # the *name*, and the overwrite is itself a Load-free assign, so
    # the original handle escapes tracking; the rule stays a may-leak
    # warning, not a proof.
    source = REFS + (
        "def make(store, table):\n"
        "    node = store.mk(1, 0, 1)\n"
        "    table['k'] = node\n"
        "    node = None\n"
        "    return node\n"
    )
    assert findings(source, "RPR011") == []
