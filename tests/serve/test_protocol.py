"""Unit tests for the NDJSON framing layer."""

from __future__ import annotations

import json

import pytest

from repro.serve.protocol import (E_BAD_REQUEST, E_BUDGET, MAX_LINE,
                                  PROTOCOL_VERSION, ProtocolError,
                                  decode_line, encode_line,
                                  error_response, result_response)


def test_encode_line_is_one_terminated_line():
    line = encode_line({"b": 1, "a": [True, None, "x"]})
    assert line.endswith(b"\n")
    assert line.count(b"\n") == 1
    assert json.loads(line) == {"a": [True, None, "x"], "b": 1}


def test_encode_line_is_deterministic():
    a = encode_line({"x": 1, "y": 2})
    b = encode_line({"y": 2, "x": 1})
    assert a == b  # sorted keys -> stable wire bytes


def test_decode_roundtrip():
    message = {"id": 7, "verb": "apply",
               "params": {"op": "and", "f": "h1", "g": "h2"}}
    assert decode_line(encode_line(message)) == message


def test_decode_rejects_malformed_json():
    with pytest.raises(ProtocolError) as excinfo:
        decode_line(b"{nope\n")
    assert excinfo.value.code == E_BAD_REQUEST


def test_decode_rejects_non_object():
    with pytest.raises(ProtocolError) as excinfo:
        decode_line(b"[1, 2, 3]\n")
    assert excinfo.value.code == E_BAD_REQUEST


def test_decode_rejects_bad_utf8():
    with pytest.raises(ProtocolError) as excinfo:
        decode_line(b"\xff\xfe{}\n")
    assert excinfo.value.code == E_BAD_REQUEST


def test_result_response_shape():
    response = result_response(42, {"handle": "h1"})
    assert response == {"id": 42, "ok": True,
                        "result": {"handle": "h1"}}


def test_error_response_shape():
    response = error_response("abc", E_BUDGET, "too big",
                              kind="BudgetExceeded")
    assert response == {"id": "abc", "ok": False,
                        "error": {"code": E_BUDGET,
                                  "message": "too big",
                                  "kind": "BudgetExceeded"}}


def test_error_response_without_kind_omits_key():
    response = error_response(None, E_BAD_REQUEST, "nope")
    assert response["id"] is None
    assert "kind" not in response["error"]


def test_protocol_constants():
    assert PROTOCOL_VERSION == 1
    assert MAX_LINE >= 1 << 20  # big enough for BLIF payloads
