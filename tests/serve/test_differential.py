"""Differential concurrency suite: daemon vs inline-manager oracle.

N concurrent client sessions replay randomized op scripts against the
server while the same scripts run on inline same-seed ``Manager``
oracles.  Agreement must be *exact* — node counts, satisfying-set
counts, and full minterm enumerations — per session, at concurrency
1, 2, and 8, on both node-store backends.  Any cross-session
interference (shared state, mis-scheduled kernel calls, handle-table
leaks between sessions) breaks exactness immediately.
"""

from __future__ import annotations

import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.bdd import Manager
from repro.core.approx import UNDER_APPROXIMATORS
from repro.core.decomp import decompose
from repro.serve import Client

BACKENDS = ("object", "array")

NVARS = 8
NAMES = [f"v{i}" for i in range(NVARS)]
SCRIPT_STEPS = 24
APPLY_OPS = ("and", "or", "xor", "nand", "imp", "diff")
APPROX_METHODS = ("hb", "sp", "ua")
DECOMP_METHODS = ("cofactor", "disjoint")


def make_script(seed):
    """A randomized op script: list of (op, args...) tuples.

    Arguments index a growing pool of functions; the pool starts as
    the ``NVARS`` variables, and every step appends one function, so
    index validity is script-intrinsic (engine-independent).
    """
    rng = random.Random(seed)
    script = []
    pool_size = NVARS
    for _ in range(SCRIPT_STEPS):
        pick = rng.random()
        i = rng.randrange(pool_size)
        j = rng.randrange(pool_size)
        if pick < 0.45:
            script.append(("apply", rng.choice(APPLY_OPS), i, j))
        elif pick < 0.60:
            script.append(("not", i))
        elif pick < 0.75:
            script.append(("ite", i, j, rng.randrange(pool_size)))
        elif pick < 0.90:
            script.append(("approx", rng.choice(APPROX_METHODS), i,
                           rng.randrange(2, 9)))
        else:
            script.append(("decomp", rng.choice(DECOMP_METHODS), i))
        pool_size += 1
    return script


class RemoteEngine:
    """Replays a script through one daemon session."""

    def __init__(self, port):
        self.client = Client(port=port)
        self.pool = [self.client.var(name) for name in NAMES]

    def step(self, op, *args):
        c = self.client
        if op == "apply":
            tag, i, j = args
            result = c.call("apply", {"op": tag, "f": self.pool[i],
                                      "g": self.pool[j]})
        elif op == "not":
            result = c.call("apply", {"op": "not",
                                      "f": self.pool[args[0]]})
        elif op == "ite":
            i, j, k = args
            result = c.call("ite", {"f": self.pool[i],
                                    "g": self.pool[j],
                                    "h": self.pool[k]})
        elif op == "approx":
            method, i, threshold = args
            result = c.approx(method, self.pool[i],
                              threshold=threshold)
        else:
            method, i = args
            result = c.decomp(method, self.pool[i])["g"]
        self.pool.append(result["handle"])
        counts = c.count(result["handle"], nvars=NVARS)
        return (counts["nodes"], str(counts["sat_count"]))

    def minterms(self, index):
        return self.client.minterms(self.pool[index], names=NAMES)

    def close(self):
        self.client.close()


class OracleEngine:
    """Replays a script on a dedicated inline manager."""

    def __init__(self, backend):
        self.manager = Manager(backend=backend)
        self.pool = [self.manager.add_var(name) for name in NAMES]

    def step(self, op, *args):
        if op == "apply":
            tag, i, j = args
            f = self.manager.apply(tag, self.pool[i], self.pool[j])
        elif op == "not":
            f = ~self.pool[args[0]]
        elif op == "ite":
            i, j, k = args
            f = self.pool[i].ite(self.pool[j], self.pool[k])
        elif op == "approx":
            method, i, threshold = args
            f = UNDER_APPROXIMATORS[method](self.pool[i],
                                            threshold=threshold)
        else:
            method, i = args
            f, _ = decompose(self.pool[i], method)
        self.pool.append(f)
        return (len(f), str(f.sat_count(NVARS)))

    def minterms(self, index):
        return [dict(m)
                for m in self.pool[index].iter_minterms(NAMES)]

    def close(self):
        pass


def replay(engine, script):
    """Run a script and return its full observation trace."""
    try:
        observations = [engine.step(*entry) for entry in script]
        # Exact semantics witness: full minterm enumerations of the
        # last few pool entries (node/sat counts alone could collide).
        tails = [engine.minterms(index) for index in (-1, -2, -3)]
        return observations, tails
    finally:
        engine.close()


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("concurrency", (1, 2, 8))
def test_differential_replay(server_factory, backend, concurrency):
    server = server_factory(backend=backend, workers=2,
                            max_sessions=concurrency + 2)
    seeds = [9000 + 17 * s for s in range(concurrency)]
    scripts = {seed: make_script(seed) for seed in seeds}

    # Oracle traces, inline, sequential.
    expected = {seed: replay(OracleEngine(backend), scripts[seed])
                for seed in seeds}

    # Remote traces, one thread per session, concurrently.
    def remote(seed):
        return replay(RemoteEngine(server.port), scripts[seed])

    with ThreadPoolExecutor(max_workers=concurrency) as pool:
        futures = {seed: pool.submit(remote, seed) for seed in seeds}
        actual = {seed: future.result(timeout=300)
                  for seed, future in futures.items()}

    for seed in seeds:
        exp_obs, exp_tails = expected[seed]
        act_obs, act_tails = actual[seed]
        for step, (exp, act) in enumerate(zip(exp_obs, act_obs)):
            assert exp == act, (
                f"seed {seed} diverged at step {step} "
                f"({scripts[seed][step]}): oracle {exp}, daemon {act}")
        assert act_tails == exp_tails, f"seed {seed} minterms diverged"

    # Every session was really served and independently GC-ed.
    stats = server.server.stats
    assert stats.sessions_opened == concurrency
